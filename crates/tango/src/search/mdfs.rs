//! Multi-threaded depth-first search (§3.1) for on-line trace analysis.
//!
//! Standard DFS deadlocks on dynamic traces: a branch may be blocked only
//! because an input queue is temporarily empty, while the real solution is
//! elsewhere — or right here once more data arrives. MDFS therefore keeps
//! every node whose transition list was *incomplete* (an input queue was
//! exhausted but may still grow) as a saved **PG-node** "thread" and
//! re-generates it when new input arrives.
//!
//! Implementation notes mapping to the paper:
//! * each search node carries its own state snapshot plus the set of
//!   transitions already explored from it, so a re-generate only explores
//!   what the new input enabled (§3.1.1's "additional transitions");
//! * *dynamic node reordering* (§3.1.3): whenever new input arrives the
//!   PG-nodes are pushed on **top** of the work stack, putting the rest of
//!   the tree "on hold";
//! * termination (§3.1.2): `Invalid` only when the tree is exhausted and
//!   no PG-nodes remain; a PG-node that has consumed and verified
//!   everything received so far is a **PGAV-node** and yields the interim
//!   verdict `ValidSoFar`; cycling through non-AV PG-nodes yields
//!   `LikelyInvalid`; the `eof` marker freezes the trace, turns PG-nodes
//!   into fully generated ones, and forces a conclusive verdict;
//! * an output that cannot be matched *yet* (its stream may still grow)
//!   does not count as explored, so the branch is retried later — the
//!   output-side dual of an incomplete transition list.
//!
//! # Multi-core search (DESIGN §6.13)
//!
//! With `workers = 1` (the default) the search runs the classic
//! single-consumer loop below, byte-for-byte identical in telemetry to
//! earlier releases. With `workers = N ≥ 2` the search runs in
//! **burst-barrier** mode: only the coordinator polls the source; each
//! DFS burst (the work between two polls) fans the work stack out over N
//! scoped threads pulling from per-worker work-stealing deques (owner
//! pops LIFO, thieves steal FIFO from the top, round-robin scan, short
//! parks when every deque is empty). Node snapshots live in the sharded
//! [`ShardedStore`] so eviction/interning stay lock-light.
//!
//! Determinism: within a burst the trace is frozen, so each node's
//! expansion is a pure function of (state, cursors, trace) and the search
//! *tree* is schedule-independent; per-worker counter deltas merged at
//! the barrier therefore equal the sequential totals exactly. Pre-eof
//! bursts can never conclude `Valid` (an all-done node pre-eof parks as a
//! PGAV), and parked nodes are re-ordered by their deterministic park
//! labels, so interim verdicts match too. A post-eof burst that finds
//! *any* witness aborts, discards its deltas, and **replays that burst
//! sequentially** from clones of the burst's input nodes — recovering the
//! exact witness (and counters) the single-worker search would report.
//! Exhaustive (`Invalid`/limit) verdicts keep the parallel deltas, which
//! are exact by the tiling argument: every popped node-step either runs
//! to completion (counters recorded, children pushed) or the node is
//! returned to a deque untouched.
//!
//! Resource governance: the wall-clock deadline is checked both in the
//! search burst and in the idle polling loop, so a monitor fed by a
//! stalled or dead source stops with `Inconclusive(TimeLimit)` instead of
//! wedging silently; the snapshot-memory budget covers work + PG nodes.
//! Limit stops additionally freeze the surviving search front into an
//! [`MdfsCheckpoint`] (worker deques + parked nodes + prior PG-list) so
//! eof-reached runs can resume — at any worker count. Whatever the
//! verdict, [`TraceSource::diagnostics`] is folded into
//! [`AnalysisReport::source_faults`] so feed-level faults (parse errors,
//! truncation, a dead feeder) survive into the report.

use crate::checkpoint::{Checkpoint, CheckpointBody, MdfsCheckpoint, MdfsNodeCkpt, MdfsWorkerCkpt};
use crate::env::{Cursors, RejectReason, TraceEnv};
use crate::error::TangoError;
use crate::fault::{Backoff, RetryPolicy};
use crate::options::AnalysisOptions;
use crate::stats::SearchStats;
use crate::telemetry::{PruneKind, Telemetry};
use crate::trace::source::{Poll, TraceSource};
use crate::trace::ResolvedTrace;
use crate::verdict::{AnalysisReport, InconclusiveReason, Verdict};
use estelle_frontend::sema::model::AnalyzedModule;
use estelle_runtime::{FireOutcome, Machine, MachineState, RuntimeError, RuntimeErrorKind};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use super::snapshot::state_key;
use super::spill::{SpillCounters, SpillError, SpillTicket, SpillTier};
use super::store::{ShardedStore, StoreHandle};
use super::{guard, is_fatal, record_error, MAX_RECORDED_ERRORS};

/// How long an idle thief sleeps before re-scanning the deques.
const IDLE_PARK: Duration = Duration::from_micros(100);
/// Buffered worker telemetry events per flush.
const EVENT_FLUSH: usize = 64;

/// One saved search-tree node ("thread").
struct Node {
    /// The node's snapshot: resident in RAM, or (under memory pressure,
    /// with a spill tier attached) parked in a segment file with the
    /// claim check in `ticket`.
    state: Option<MachineState>,
    /// Segment record holding this node's snapshot, once written.
    /// Snapshots are immutable, so re-evicting a ticketed node is
    /// write-free.
    ticket: Option<SpillTicket>,
    cursors: Cursors,
    /// Compiled-transition indices already explored from this node.
    tried: HashSet<usize>,
    /// Transitions whose firing failed only because an output stream was
    /// exhausted-but-growing: retried once new data arrives. Without this
    /// the node would spin on the same transition without ever polling.
    blocked: HashSet<usize>,
    /// Consecutive barren steps on the path to this node.
    barren: usize,
    path: Vec<String>,
    /// Snapshot bytes proper — the part that moves between RAM and disk.
    state_bytes: usize,
    /// Cursor/bookkeeping bytes — always RAM-resident.
    meta_bytes: usize,
}

impl Node {
    fn new(
        state: MachineState,
        cursors: Cursors,
        barren: usize,
        path: Vec<String>,
    ) -> Self {
        let state_bytes = state.approx_bytes();
        let meta_bytes =
            (cursors.input.len() + cursors.output.len()) * std::mem::size_of::<usize>();
        Node {
            state: Some(state),
            ticket: None,
            cursors,
            tried: HashSet::new(),
            blocked: HashSet::new(),
            barren,
            path,
            state_bytes,
            meta_bytes,
        }
    }

    /// Rebuild a node frozen into a checkpoint (or cloned for replay).
    fn from_parts(
        state: MachineState,
        cursors: Cursors,
        tried: HashSet<usize>,
        blocked: HashSet<usize>,
        barren: usize,
        path: Vec<String>,
    ) -> Self {
        let mut n = Node::new(state, cursors, barren, path);
        n.tried = tried;
        n.blocked = blocked;
        n
    }

    /// Bytes currently charged against the RAM gauge for this node.
    fn charged(&self) -> usize {
        self.meta_bytes + if self.state.is_some() { self.state_bytes } else { 0 }
    }

    /// Bytes the node charges once resident — what the budget check uses
    /// for the node about to be expanded.
    fn resident_footprint(&self) -> usize {
        self.meta_bytes + self.state_bytes
    }

    /// The resident snapshot. The search faults a popped node in before
    /// expanding it, so this never observes a spilled node.
    fn resident_state(&self) -> &MachineState {
        self.state
            .as_ref()
            .expect("node is faulted in before expansion")
    }
}

/// Evict one node's snapshot to the spill tier. `Ok(bytes)` is what
/// moved from the RAM gauge to the disk gauge (0 when already spilled).
/// A write failure keeps the node resident, so the search can still
/// finish or report from it.
fn spill_node(tier: &mut SpillTier, node: &mut Node) -> Result<usize, SpillError> {
    let Some(state) = node.state.take() else {
        return Ok(0);
    };
    if node.ticket.is_none() {
        match tier.write_state(state_key(&state), &state) {
            Ok(t) => node.ticket = Some(t),
            Err(e) => {
                node.state = Some(state);
                return Err(e);
            }
        }
    }
    tier.counters_mut().evictions += 1;
    Ok(node.state_bytes)
}

/// Fault a spilled node's snapshot back in (checksum-verified on read).
/// `Ok(bytes)` is what moved from the disk gauge back to RAM.
fn fault_in(tier: &mut SpillTier, node: &mut Node) -> Result<usize, SpillError> {
    if node.state.is_some() {
        return Ok(0);
    }
    let ticket = node.ticket.expect("a spilled node holds a ticket");
    node.state = Some(tier.read_state(&ticket)?);
    Ok(node.state_bytes)
}

/// Spill/intern counter values carried in from a resumed run's stats;
/// the fresh tier/store counters are added on top so cross-resume totals
/// stay cumulative. Zero for a fresh run.
#[derive(Clone, Copy, Default)]
struct CarryBase {
    spill_writes: u64,
    spill_reads: u64,
    spill_retries: u64,
    spill_evictions: u64,
    spill_giveups: u64,
    intern_hits: u64,
    peak_snapshot_bytes: usize,
    peak_spilled_bytes: usize,
}

impl CarryBase {
    fn of(stats: &SearchStats) -> Self {
        CarryBase {
            spill_writes: stats.spill_writes,
            spill_reads: stats.spill_reads,
            spill_retries: stats.spill_retries,
            spill_evictions: stats.spill_evictions,
            spill_giveups: stats.spill_giveups,
            intern_hits: stats.intern_hits,
            peak_snapshot_bytes: stats.peak_snapshot_bytes,
            peak_spilled_bytes: stats.peak_spilled_bytes,
        }
    }
}

/// Mirror the spill tier's counters and the disk-residency gauge into
/// the run's stats (on top of any resumed-in base).
fn stamp_spill(stats: &mut SearchStats, base: &CarryBase, c: SpillCounters, disk_bytes: usize) {
    stats.spill_writes = base.spill_writes + c.writes;
    stats.spill_reads = base.spill_reads + c.reads;
    stats.spill_retries = base.spill_retries + c.retries;
    stats.spill_evictions = base.spill_evictions + c.evictions;
    stats.spill_giveups = base.spill_giveups + c.giveups;
    stats.spilled_bytes = disk_bytes;
    stats.peak_spilled_bytes = stats.peak_spilled_bytes.max(disk_bytes);
}

/// Mirror the sharded store's counters and gauges into the run's stats
/// (multi-worker runs; the store is rebuilt per run, so resumed-in base
/// values are added back).
fn stamp_store(stats: &mut SearchStats, base: &CarryBase, store: &ShardedStore) {
    stats.snapshot_bytes = store.resident_bytes();
    stats.peak_snapshot_bytes = base.peak_snapshot_bytes.max(store.peak_resident_bytes());
    stats.intern_hits = base.intern_hits + store.intern_hits();
    let c = store.spill_counters();
    stats.spill_writes = base.spill_writes + c.writes;
    stats.spill_reads = base.spill_reads + c.reads;
    stats.spill_retries = base.spill_retries + c.retries;
    stats.spill_evictions = base.spill_evictions + c.evictions;
    stats.spill_giveups = base.spill_giveups + c.giveups;
    stats.spilled_bytes = store.spilled_bytes();
    stats.peak_spilled_bytes = base.peak_spilled_bytes.max(store.peak_spilled_bytes());
}

/// Copy a node's state for expansion. With COW snapshots (the default)
/// this is O(globals + chunk table); with `--cow=off` it eagerly
/// deep-copies, reproducing the pre-COW §3.2.2 cost for A/B measurement.
fn copy_state(state: &MachineState, options: &AnalysisOptions) -> MachineState {
    if options.cow_snapshots {
        state.snapshot()
    } else {
        state.deep_snapshot()
    }
}

/// One worker's accumulated busy/idle/steal wall-clock split.
#[derive(Clone, Copy, Default)]
struct Clock {
    busy: Duration,
    idle: Duration,
    steal: Duration,
}

/// How the run spent its time, for the per-worker gauges.
enum WorkerClocks {
    /// Single-worker loop: elapsed minus the idle-poll sleeps.
    Seq { slept: Duration },
    /// One clock per worker, accumulated across bursts.
    Par(Vec<Clock>),
}

/// Terminal bookkeeping of one MDFS run: stamp the elapsed time and the
/// source's fault diagnostics + retry counters, report the per-worker
/// busy/idle(/steal) splits into the metrics registry (idle-poll and
/// steal-scan time is not search time), emit the verdict event and the
/// final heartbeat, attach the frozen checkpoint (limit stops only),
/// then assemble the report.
#[allow(clippy::too_many_arguments)]
fn finish(
    verdict: Verdict,
    witness: Option<Vec<String>>,
    mut stats: SearchStats,
    spec_errors: Vec<RuntimeError>,
    source: &dyn TraceSource,
    t0: Instant,
    base_wall: Duration,
    clocks: WorkerClocks,
    cap: u64,
    spill_faults: Vec<String>,
    checkpoint: Option<MdfsCheckpoint>,
    trace: &ResolvedTrace,
    tel: &mut Telemetry,
) -> AnalysisReport {
    stats.wall_time = base_wall + t0.elapsed();
    stats.source_retries += source.fault_retries();
    stats.source_giveups += source.fault_giveups();
    if let Some(m) = tel.metrics_mut() {
        match &clocks {
            WorkerClocks::Seq { slept } => {
                let busy = stats
                    .wall_time
                    .saturating_sub(base_wall)
                    .saturating_sub(*slept);
                m.set_gauge("mdfs.worker0.busy_seconds", busy.as_secs_f64());
                m.set_gauge("mdfs.worker0.idle_seconds", slept.as_secs_f64());
            }
            WorkerClocks::Par(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    m.set_gauge(&format!("mdfs.worker{}.busy_seconds", i), c.busy.as_secs_f64());
                    m.set_gauge(&format!("mdfs.worker{}.idle_seconds", i), c.idle.as_secs_f64());
                    m.set_gauge(
                        &format!("mdfs.worker{}.steal_seconds", i),
                        c.steal.as_secs_f64(),
                    );
                }
            }
        }
    }
    tel.on_verdict(&verdict, &stats, cap);
    let mut r = AnalysisReport::new(verdict, stats);
    r.witness = witness;
    r.spec_errors = spec_errors;
    r.source_faults = source.diagnostics();
    r.spill_faults = spill_faults;
    r.checkpoint = checkpoint.map(|m| {
        Box::new(Checkpoint {
            body: CheckpointBody::Mdfs(m),
            trace: trace.clone(),
            stats: r.stats.clone(),
        })
    });
    r
}

/// Freeze one sequential node into its checkpoint form.
fn node_to_ckpt(n: Node) -> MdfsNodeCkpt {
    let mut tried: Vec<usize> = n.tried.into_iter().collect();
    tried.sort_unstable();
    let mut blocked: Vec<usize> = n.blocked.into_iter().collect();
    blocked.sort_unstable();
    MdfsNodeCkpt {
        state: n.state.expect("nodes are faulted in before freezing"),
        cursors: n.cursors,
        tried,
        blocked,
        barren: n.barren,
        path: n.path,
    }
}

/// Thaw a checkpointed node back into a sequential node.
fn node_from_ckpt(c: MdfsNodeCkpt) -> Node {
    Node::from_parts(
        c.state,
        c.cursors,
        c.tried.into_iter().collect(),
        c.blocked.into_iter().collect(),
        c.barren,
        c.path,
    )
}

/// A resumed run's starting front, thawed from an [`MdfsCheckpoint`].
struct MdfsSeed {
    /// Work stack, bottom to top (the saved deques concatenated in
    /// worker order).
    work: Vec<MdfsNodeCkpt>,
    /// PG-list: prior parks first, then the stopped burst's parks in
    /// worker order.
    pg: Vec<MdfsNodeCkpt>,
    eof: bool,
    trace: ResolvedTrace,
    stats: SearchStats,
}

/// The source behind a resumed run. Only eof-reached checkpoints are
/// resumable (a pre-eof source's read position cannot be re-established),
/// so the resumed search never needs real data: every poll just
/// re-asserts end-of-file.
struct EofSource;

impl TraceSource for EofSource {
    fn poll(&mut self) -> Poll {
        Poll {
            events: Vec::new(),
            eof: true,
        }
    }
}

/// Run MDFS against a dynamic trace source. `on_status` sees every change
/// of the interim verdict; returning `false` stops the analysis and
/// reports the interim verdict.
pub fn run_mdfs(
    machine: &Machine,
    module: &AnalyzedModule,
    source: &mut dyn TraceSource,
    options: &AnalysisOptions,
    on_status: &mut dyn FnMut(&Verdict) -> bool,
    tel: &mut Telemetry,
) -> Result<AnalysisReport, TangoError> {
    match options.resolved_workers() {
        0 | 1 => run_seq(machine, module, source, options, on_status, tel, None),
        n => run_par(machine, module, source, options, on_status, tel, n, None),
    }
}

/// Resume a stopped on-line analysis from its frozen search front. The
/// checkpoint is worker-count independent: the saved nodes are
/// redistributed over this run's `options.resolved_workers()` workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resume_mdfs(
    machine: &Machine,
    module: &AnalyzedModule,
    ckpt: MdfsCheckpoint,
    trace: ResolvedTrace,
    stats: SearchStats,
    options: &AnalysisOptions,
    on_status: &mut dyn FnMut(&Verdict) -> bool,
    tel: &mut Telemetry,
) -> Result<AnalysisReport, TangoError> {
    let mut work = Vec::new();
    let mut parked = Vec::new();
    for w in ckpt.workers {
        work.extend(w.deque);
        parked.extend(w.parked);
    }
    let mut pg = ckpt.pg_prior;
    pg.extend(parked);
    let seed = MdfsSeed {
        work,
        pg,
        eof: ckpt.eof,
        trace,
        stats,
    };
    let mut src = EofSource;
    match options.resolved_workers() {
        0 | 1 => run_seq(machine, module, &mut src, options, on_status, tel, Some(seed)),
        n => run_par(machine, module, &mut src, options, on_status, tel, n, Some(seed)),
    }
}

/// Freeze the sequential search front for a limit-stop checkpoint.
/// Spilled nodes are faulted back in first (checkpoint files are
/// self-contained); a read failure makes the stop un-checkpointable and
/// is recorded as a spill fault instead.
fn freeze_seq(
    work: &mut Vec<Node>,
    pg_list: &mut Vec<Node>,
    mut tier: Option<&mut SpillTier>,
    eof: bool,
    spill_faults: &mut Vec<String>,
) -> Option<MdfsCheckpoint> {
    for list in [&mut *work, &mut *pg_list] {
        for n in list.iter_mut() {
            if n.state.is_none() {
                let t = tier
                    .as_deref_mut()
                    .expect("spilled nodes only exist with a spill tier");
                if let Err(e) = fault_in(t, n) {
                    spill_faults.push(format!("checkpoint save skipped: {}", e));
                    return None;
                }
            }
        }
    }
    Some(MdfsCheckpoint {
        workers_at_save: 1,
        eof,
        workers: vec![MdfsWorkerCkpt {
            deque: work.drain(..).map(node_to_ckpt).collect(),
            parked: Vec::new(),
        }],
        pg_prior: pg_list.drain(..).map(node_to_ckpt).collect(),
    })
}

/// The classic single-consumer MDFS loop (`workers = 1`), optionally
/// seeded from a checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_seq(
    machine: &Machine,
    module: &AnalyzedModule,
    source: &mut dyn TraceSource,
    options: &AnalysisOptions,
    on_status: &mut dyn FnMut(&Verdict) -> bool,
    tel: &mut Telemetry,
    seed: Option<MdfsSeed>,
) -> Result<AnalysisReport, TangoError> {
    let t0 = Instant::now();
    let deadline = options.limits.max_wall_time.map(|d| t0 + d);
    let cap = options.limits.max_transitions;
    // Cumulative idle-poll sleep; elapsed minus this is the worker's
    // genuine busy time.
    let mut slept = Duration::ZERO;
    let machine = machine
        .policy_view(options.policy)
        .exec_view(options.exec_mode);
    let (mut stats, base_wall, trace0, eof0, seed_front) = match seed {
        Some(s) => {
            let bw = s.stats.wall_time;
            (s.stats, bw, s.trace, s.eof, Some((s.work, s.pg)))
        }
        None => (
            SearchStats::default(),
            Duration::ZERO,
            ResolvedTrace::empty(module.ips.len()),
            false,
            None,
        ),
    };
    let carry = CarryBase::of(&stats);
    let mut spec_errors: Vec<RuntimeError> = Vec::new();

    let mut env = TraceEnv::new(module, trace0, options, true)?;
    env.eof = eof0;

    // Disk spill tier: under a memory budget, park cold node snapshots
    // in segment files instead of stopping `Inconclusive(MemoryLimit)`.
    let mut spill_tier = match options.spill.build_tier(options.limits.max_state_bytes) {
        Ok(t) => t.map(|mut t| {
            // Spill retry sleeps honor the same wall-clock deadline the
            // search loop enforces.
            if let Some(d) = deadline {
                t.set_deadline(d);
            }
            t
        }),
        Err(e) => {
            return Ok(finish(
                Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Seq { slept },
                cap,
                vec![e.to_string()],
                None,
                &env.trace,
                tel,
            ));
        }
    };
    let mut spill_faults: Vec<String> = spill_tier
        .as_mut()
        .map(SpillTier::take_warnings)
        .unwrap_or_default();
    // Snapshot bytes currently parked in spill segments.
    let mut disk_bytes: usize = 0;

    let mut work: Vec<Node> = Vec::new();
    let mut pg_list: Vec<Node> = Vec::new();

    match seed_front {
        None => {
            let start = machine.initial_state()?;
            stats.saves += 1;
            let root = Node::new(start, env.save(), 0, Vec::new());
            stats.snapshot_bytes = root.charged();
            stats.peak_snapshot_bytes = stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
            if tel.hot() {
                tel.on_save(0, root.charged(), false, stats.snapshot_bytes);
            }
            work.push(root);
        }
        Some((wseeds, pseeds)) => {
            // The resumed nodes arrive resident; the RAM gauge restarts
            // from their charges (the save faulted everything in).
            stats.snapshot_bytes = 0;
            for c in wseeds {
                let n = node_from_ckpt(c);
                stats.snapshot_bytes += n.charged();
                work.push(n);
            }
            for c in pseeds {
                let n = node_from_ckpt(c);
                stats.snapshot_bytes += n.charged();
                pg_list.push(n);
            }
            stats.peak_snapshot_bytes = stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
        }
    }

    /// Revive parked PG-nodes: fresh data may unblock output-blocked
    /// transitions, so their blocked sets are cleared. With §3.1.3
    /// reordering the revived nodes go on top of the LIFO work stack and
    /// are searched immediately; basic MDFS queues them at the bottom,
    /// after the rest of the known tree.
    fn revive(work: &mut Vec<Node>, pg_list: &mut Vec<Node>, reorder: bool) {
        for n in pg_list.iter_mut() {
            n.blocked.clear();
        }
        if reorder {
            work.append(pg_list);
        } else {
            let rest = std::mem::take(work);
            work.append(pg_list);
            work.extend(rest);
        }
    }

    let mut last_status: Option<Verdict> = None;

    // Per-search *Generate* scratch, refilled in place by `generate_into`
    // so every node expansion reuses one fireable buffer (the untried list
    // drains it rather than consuming the whole `Generated`).
    let mut gen = estelle_runtime::Generated::default();

    loop {
        // Absorb anything the source produced.
        let poll = source.poll();
        let got_new = !poll.events.is_empty();
        for e in &poll.events {
            env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
        }
        if poll.eof {
            env.eof = true;
        }
        if got_new || poll.eof {
            // Dynamic node reordering: PG-nodes jump the queue.
            revive(&mut work, &mut pg_list, options.mdfs_reorder);
        }

        // DFS burst until the work stack drains.
        while let Some(mut node) = work.pop() {
            tel.tick(&stats, cap);
            // The counter is rebuilt from per-node charges across
            // park/revive cycles; saturate (and flag in debug builds)
            // rather than ever letting it wrap.
            debug_assert!(
                stats.snapshot_bytes >= node.charged(),
                "snapshot byte accounting must never wrap"
            );
            stats.snapshot_bytes = stats.snapshot_bytes.saturating_sub(node.charged());
            if stats.transitions_executed > options.limits.max_transitions {
                stats.snapshot_bytes += node.charged();
                work.push(node);
                let ckpt = freeze_seq(
                    &mut work,
                    &mut pg_list,
                    spill_tier.as_mut(),
                    env.eof,
                    &mut spill_faults,
                );
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Seq { slept },
                    cap,
                    spill_faults,
                    ckpt,
                    &env.trace,
                    tel,
                ));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                stats.snapshot_bytes += node.charged();
                work.push(node);
                let ckpt = freeze_seq(
                    &mut work,
                    &mut pg_list,
                    spill_tier.as_mut(),
                    env.eof,
                    &mut spill_faults,
                );
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Seq { slept },
                    cap,
                    spill_faults,
                    ckpt,
                    &env.trace,
                    tel,
                ));
            }
            if let Some(cap_bytes) = options.limits.max_state_bytes {
                if let Some(tier) = spill_tier.as_mut() {
                    // Tiering, not a stop condition: evict parked
                    // snapshots — parked PG-nodes first, then the work
                    // stack bottom-up (coldest first) — until the
                    // resident set plus this node (about to be faulted
                    // in) fits the budget. If the genuinely live set
                    // alone exceeds the budget there is nothing left to
                    // evict and the search continues over budget — the
                    // tier's contract is degradation, never a stop.
                    let need = node.resident_footprint();
                    'evict: for list in [&mut pg_list, &mut work] {
                        for parked in list.iter_mut() {
                            if stats.snapshot_bytes + need <= cap_bytes {
                                break 'evict;
                            }
                            match spill_node(tier, parked) {
                                Ok(moved) => {
                                    stats.snapshot_bytes =
                                        stats.snapshot_bytes.saturating_sub(moved);
                                    disk_bytes += moved;
                                }
                                Err(e) => {
                                    spill_faults.push(e.to_string());
                                    stamp_spill(&mut stats, &carry, tier.counters(), disk_bytes);
                                    return Ok(finish(
                                        Verdict::Inconclusive(
                                            InconclusiveReason::SpillFailure,
                                        ),
                                        None,
                                        stats,
                                        spec_errors,
                                        &*source,
                                        t0,
                                        base_wall,
                                        WorkerClocks::Seq { slept },
                                        cap,
                                        spill_faults,
                                        None,
                                        &env.trace,
                                        tel,
                                    ));
                                }
                            }
                        }
                    }
                } else if stats.snapshot_bytes + node.resident_footprint() > cap_bytes {
                    stats.snapshot_bytes += node.charged();
                    work.push(node);
                    let ckpt = freeze_seq(
                        &mut work,
                        &mut pg_list,
                        spill_tier.as_mut(),
                        env.eof,
                        &mut spill_faults,
                    );
                    return Ok(finish(
                        Verdict::Inconclusive(InconclusiveReason::MemoryLimit),
                        None,
                        stats,
                        spec_errors,
                        &*source,
                        t0,
                        base_wall,
                        WorkerClocks::Seq { slept },
                        cap,
                        spill_faults,
                        ckpt,
                        &env.trace,
                        tel,
                    ));
                }
            }
            // Fault the node in before expanding it.
            if node.state.is_none() {
                let tier = spill_tier
                    .as_mut()
                    .expect("spilled nodes only exist with a spill tier");
                match fault_in(tier, &mut node) {
                    Ok(moved) => disk_bytes = disk_bytes.saturating_sub(moved),
                    Err(e) => {
                        spill_faults.push(e.to_string());
                        stamp_spill(&mut stats, &carry, tier.counters(), disk_bytes);
                        return Ok(finish(
                            Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                            None,
                            stats,
                            spec_errors,
                            &*source,
                            t0,
                            base_wall,
                            WorkerClocks::Seq { slept },
                            cap,
                            spill_faults,
                            None,
                            &env.trace,
                            tel,
                        ));
                    }
                }
            }
            if let Some(t) = spill_tier.as_ref() {
                stamp_spill(&mut stats, &carry, t.counters(), disk_bytes);
            }
            stats.max_depth = stats.max_depth.max(node.path.len());
            env.restore(&node.cursors);
            stats.restores += 1;
            tel.on_restore(node.path.len());

            if env.all_done() {
                if env.eof {
                    return Ok(finish(
                        Verdict::Valid,
                        Some(node.path),
                        stats,
                        spec_errors,
                        &*source,
                        t0,
                        base_wall,
                        WorkerClocks::Seq { slept },
                        cap,
                        spill_faults,
                        None,
                        &env.trace,
                        tel,
                    ));
                }
                // PGAV: everything so far is explained; park the node.
                stats.pg_nodes += 1;
                stats.snapshot_bytes += node.charged();
                tel.on_park(node.path.len(), stats.pg_nodes);
                pg_list.push(node);
                continue;
            }

            // Generate (or re-generate) this node's transition list.
            // COW: the scratch copy shares heap chunks with the node's
            // snapshot; guard side effects break sharing lazily.
            let mut st = copy_state(node.resident_state(), options);
            stats.generates += 1;
            let gen_t0 = tel.timer();
            match guard("generate", || {
                machine.generate_into(&mut st, &env, &mut gen)
            }) {
                Ok(()) => {}
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    tel.on_error_branch(node.path.len(), e.kind);
                    record_error(&mut spec_errors, &mut stats, e);
                    // Keep GE == generate-events: a failed expansion is an
                    // event with zero fanout.
                    tel.on_generate(node.path.len(), 0, false, gen_t0);
                    continue;
                }
            };
            let is_pg = gen.incomplete;
            let untried: Vec<_> = gen
                .fireable
                .drain(..)
                .filter(|f| !node.tried.contains(&f.trans) && !node.blocked.contains(&f.trans))
                .collect();
            // Fanout as the search sees it: candidates not yet explored
            // from this node (a re-generate only offers what new input
            // enabled).
            tel.on_generate(node.path.len(), untried.len(), is_pg, gen_t0);
            if !untried.is_empty() {
                stats.fanout_sum += untried.len() as u64;
                stats.fanout_samples += 1;
            }

            let Some(f) = untried.first().cloned() else {
                if is_pg || !node.blocked.is_empty() {
                    if pg_list.len() >= options.limits.max_pg_nodes {
                        stats.snapshot_bytes += node.charged();
                        work.push(node);
                        let ckpt = freeze_seq(
                            &mut work,
                            &mut pg_list,
                            spill_tier.as_mut(),
                            env.eof,
                            &mut spill_faults,
                        );
                        return Ok(finish(
                            Verdict::Inconclusive(InconclusiveReason::PgNodeLimit),
                            None,
                            stats,
                            spec_errors,
                            &*source,
                            t0,
                            base_wall,
                            WorkerClocks::Seq { slept },
                            cap,
                            spill_faults,
                            ckpt,
                            &env.trace,
                            tel,
                        ));
                    }
                    stats.pg_nodes += 1;
                    stats.snapshot_bytes += node.charged();
                    tel.on_park(node.path.len(), stats.pg_nodes);
                    pg_list.push(node);
                }
                continue;
            };

            // Fire the child on a fresh copy of the node's state.
            node.tried.insert(f.trans);
            let mut child_state = copy_state(node.resident_state(), options);
            env.restore(&node.cursors);
            let before = env.outstanding();
            stats.transitions_executed += 1;
            let fire_t0 = tel.timer();
            env.begin_fire();
            let fired = match guard("fire", || machine.fire(&mut child_state, &f, &mut env)) {
                Ok(FireOutcome::Completed) => env.end_fire(),
                Ok(FireOutcome::OutputRejected) => false,
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    tel.on_error_branch(node.path.len(), e.kind);
                    record_error(&mut spec_errors, &mut stats, e);
                    false
                }
            };
            if tel.hot() {
                let observable = if tel.events_on() {
                    machine.transition_observable(f.trans)
                } else {
                    None
                };
                tel.on_fire(
                    node.path.len(),
                    f.trans,
                    machine.transition_name(f.trans),
                    observable,
                    fired,
                    fire_t0,
                );
            }
            if !fired && env.last_reject == Some(RejectReason::MayGrow) {
                // The failure was "output not in the trace *yet*": park it
                // as blocked and retry once data arrives.
                node.tried.remove(&f.trans);
                node.blocked.insert(f.trans);
            }

            let has_more = untried.len() > 1 || is_pg || !node.blocked.is_empty();
            if fired {
                let child_barren = if env.outstanding() < before {
                    0
                } else {
                    node.barren + 1
                };
                let mut child_path = node.path.clone();
                child_path.push(machine.transition_name(f.trans).to_string());
                if has_more {
                    stats.snapshot_bytes += node.charged();
                    work.push(node);
                }
                if child_barren > options.limits.max_barren_steps {
                    stats.barren_prunes += 1;
                    tel.on_prune(child_path.len(), PruneKind::Barren);
                } else {
                    stats.saves += 1;
                    let child = Node::new(child_state, env.save(), child_barren, child_path);
                    stats.snapshot_bytes += child.charged();
                    stats.peak_snapshot_bytes =
                        stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
                    if tel.hot() {
                        tel.on_save(child.path.len(), child.charged(), false, stats.snapshot_bytes);
                    }
                    work.push(child);
                }
            } else if has_more {
                stats.snapshot_bytes += node.charged();
                work.push(node);
            }
        }

        // The tree (as currently known) is exhausted.
        if env.eof {
            if pg_list.is_empty() {
                return Ok(finish(
                    Verdict::Invalid,
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Seq { slept },
                    cap,
                    spill_faults,
                    None,
                    &env.trace,
                    tel,
                ));
            }
            // EOF makes PG-nodes fully generated: process them once more.
            revive(&mut work, &mut pg_list, options.mdfs_reorder);
            continue;
        }
        if pg_list.is_empty() {
            // No PG-node can be revived by future input: conclusively
            // invalid even though the trace may keep growing (§3.1.2).
            return Ok(finish(
                Verdict::Invalid,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Seq { slept },
                cap,
                spill_faults,
                None,
                &env.trace,
                tel,
            ));
        }

        // Interim verdict: PGAV ⇒ valid so far, else likely invalid.
        let any_av = pg_list.iter().any(|n| {
            env.restore(&n.cursors);
            env.all_done()
        });
        let status = if any_av {
            Verdict::ValidSoFar
        } else {
            Verdict::LikelyInvalid
        };
        if last_status.as_ref() != Some(&status) {
            tel.on_interim_verdict(&status);
            last_status = Some(status.clone());
        }
        if !on_status(&status) {
            return Ok(finish(
                status,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Seq { slept },
                cap,
                spill_faults,
                None,
                &env.trace,
                tel,
            ));
        }

        // Block until the source has more to say — but never past the
        // deadline: a stalled source must not wedge the monitor. Polls
        // back off on the shared [`RetryPolicy::mdfs_poll`] schedule
        // (1ms doubling to 16ms) while the source stays silent; entering
        // this loop anew (i.e. after data arrived) starts over at the
        // minimum interval.
        let mut idle = Backoff::new(RetryPolicy::mdfs_poll());
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                let ckpt = freeze_seq(
                    &mut work,
                    &mut pg_list,
                    spill_tier.as_mut(),
                    env.eof,
                    &mut spill_faults,
                );
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Seq { slept },
                    cap,
                    spill_faults,
                    ckpt,
                    &env.trace,
                    tel,
                ));
            }
            let p = source.poll();
            if !p.events.is_empty() || p.eof {
                for e in &p.events {
                    env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
                }
                if p.eof {
                    env.eof = true;
                }
                revive(&mut work, &mut pg_list, options.mdfs_reorder);
                break;
            }
            // Never sleep past the deadline — the expiry check above
            // stays exact to within scheduler latency.
            let idle_sleep = idle.next_delay();
            let sleep = match deadline {
                Some(d) => idle_sleep.min(d.saturating_duration_since(Instant::now())),
                None => idle_sleep,
            };
            std::thread::sleep(sleep);
            slept += sleep;
        }
    }
}

/// One parallel search node; its snapshot lives in the [`ShardedStore`].
///
/// `key`/`step` implement the deterministic park labels: the root nodes
/// of a burst get `key = [i]` (their sequential pop order), every pop of
/// a node consumes one `step`, and a child created at the parent's step
/// `s` gets `key = parent.key ++ [s]`. Sequential pop labels are
/// lexicographically increasing (a child's subtree is fully explored
/// between its parent's pops `s` and `s+1`), so sorting parked nodes by
/// their park label `key ++ [step]` reproduces the single-worker park
/// order no matter which worker parked them.
struct PNode {
    handle: StoreHandle,
    cursors: Cursors,
    tried: HashSet<usize>,
    blocked: HashSet<usize>,
    barren: usize,
    path: Vec<String>,
    key: Vec<u32>,
    step: u32,
}

/// One buffered telemetry event from a worker thread. The `Telemetry`
/// handle is not `Send`, so workers record plain data and the
/// coordinator replays batches through the real handle (stamped with the
/// worker id). No strings cross the channel — names are resolved at
/// replay time, and only when the event stream is actually on.
enum WEvent {
    Generate {
        depth: usize,
        fanout: usize,
        incomplete: bool,
        lat_us: Option<f64>,
    },
    Fire {
        depth: usize,
        trans: usize,
        fired: bool,
        nanos: u64,
    },
    Save {
        depth: usize,
        bytes: usize,
        interned: bool,
        resident: usize,
    },
    Restore {
        depth: usize,
    },
    Park {
        depth: usize,
        pg_total: u64,
    },
    Prune {
        depth: usize,
    },
    ErrorBranch {
        depth: usize,
        kind: RuntimeErrorKind,
    },
}

/// Why a burst stopped early. First setter wins; later causes are
/// dropped (their worker already pushed its node back, so nothing is
/// lost either way).
enum StopCause {
    /// A valid leaf was found post-eof; the coordinator replays the
    /// burst sequentially for the deterministic first witness.
    Witness,
    /// A resource limit tripped; the surviving front is checkpointed.
    Limit(InconclusiveReason),
    /// A fatal runtime error (engine bug class) — propagated as `Err`.
    Fatal(RuntimeError),
}

/// Shared state of one burst.
struct BurstShared<'s> {
    /// Per-worker deques: owner pushes/pops at the back (LIFO), thieves
    /// pop at the front (FIFO — the coldest, usually largest subtree).
    deques: Vec<Mutex<VecDeque<PNode>>>,
    /// Nodes alive in deques or being processed. A thief that finds
    /// every deque empty checks this: zero means the burst is done
    /// (nodes in flight are still counted until retired or parked).
    pending: AtomicUsize,
    stop: Mutex<Option<StopCause>>,
    stopped: AtomicBool,
    /// Live TE/GE/RE/SA counters (seeded from the cumulative stats at
    /// burst start) — the TE limit check and the progress heartbeat
    /// read these; the authoritative merge uses per-worker deltas.
    te: AtomicU64,
    ge: AtomicU64,
    re: AtomicU64,
    sa: AtomicU64,
    /// Current parked-PG population (seeded with the prior PG-list len),
    /// for the `max_pg_nodes` limit.
    pg: AtomicU64,
    depth: AtomicUsize,
    store: &'s ShardedStore,
}

impl BurstShared<'_> {
    fn set_stop(&self, cause: StopCause) {
        let mut s = self.stop.lock().expect("stop lock");
        if s.is_none() {
            *s = Some(cause);
        }
        self.stopped.store(true, Ordering::Release);
    }
}

/// What one worker brings back from a burst: its counter delta (zero
/// gauges — those are re-stamped from the store), recorded spec errors,
/// parked PG-nodes with their park labels, and its wall-clock split.
#[derive(Default)]
struct WorkerOut {
    delta: SearchStats,
    spec_errors: Vec<RuntimeError>,
    parked: Vec<(Vec<u32>, PNode)>,
    spill_faults: Vec<String>,
    busy: Duration,
    idle: Duration,
    steal: Duration,
}

/// One worker's burst loop: pop own-LIFO, steal FIFO round-robin, park
/// briefly when everything is empty, expand nodes with the same
/// per-step governance as the sequential loop. Every stop site pushes
/// the in-flight node back to the owner's deque first, so the surviving
/// front is complete whichever cause wins the stop race.
#[allow(clippy::too_many_arguments)]
fn burst_worker(
    widx: usize,
    machine: &Machine,
    mut env: TraceEnv,
    options: &AnalysisOptions,
    deadline: Option<Instant>,
    sh: &BurstShared<'_>,
    events: Option<mpsc::Sender<(u16, Vec<WEvent>)>>,
    timed: bool,
) -> WorkerOut {
    let n_workers = sh.deques.len();
    let cap = options.limits.max_transitions;
    let mut out = WorkerOut::default();
    let mut gen = estelle_runtime::Generated::default();
    let mut ebuf: Vec<WEvent> = Vec::new();
    let tel_on = events.is_some();
    let t_loop = Instant::now();

    fn flush(events: &Option<mpsc::Sender<(u16, Vec<WEvent>)>>, widx: usize, ebuf: &mut Vec<WEvent>) {
        if let Some(tx) = events {
            if !ebuf.is_empty() {
                let _ = tx.send((widx as u16, std::mem::take(ebuf)));
            }
        }
    }

    loop {
        if sh.stopped.load(Ordering::Acquire) {
            break;
        }
        let popped = sh.deques[widx].lock().expect("deque lock").pop_back();
        let mut node = match popped {
            Some(n) => n,
            None => {
                // Steal-then-park: scan the other deques round-robin
                // from our right-hand neighbour, taking from the top.
                let t_steal = Instant::now();
                let mut stolen = None;
                for k in 1..n_workers {
                    let v = (widx + k) % n_workers;
                    if let Some(n) = sh.deques[v].lock().expect("deque lock").pop_front() {
                        stolen = Some(n);
                        break;
                    }
                }
                out.steal += t_steal.elapsed();
                match stolen {
                    Some(n) => {
                        out.delta.steals += 1;
                        n
                    }
                    None => {
                        out.delta.steal_failures += 1;
                        if sh.pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let t_idle = Instant::now();
                        std::thread::sleep(IDLE_PARK);
                        out.idle += t_idle.elapsed();
                        continue;
                    }
                }
            }
        };

        let depth = node.path.len();
        // Per-pop governance, mirroring the sequential loop's order.
        if sh.te.load(Ordering::Relaxed) > cap {
            sh.deques[widx].lock().expect("deque lock").push_back(node);
            sh.set_stop(StopCause::Limit(InconclusiveReason::TransitionLimit));
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            sh.deques[widx].lock().expect("deque lock").push_back(node);
            sh.set_stop(StopCause::Limit(InconclusiveReason::TimeLimit));
            break;
        }
        if let Some(cap_bytes) = options.limits.max_state_bytes {
            if sh.store.spill_enabled() {
                // Degrade: evict cold slots until this node's expansion
                // fits; a poisoned store (write failure) stops instead.
                sh.store.evict_to_budget(node.handle.state_bytes);
                if sh.store.is_poisoned() {
                    sh.deques[widx].lock().expect("deque lock").push_back(node);
                    sh.set_stop(StopCause::Limit(InconclusiveReason::SpillFailure));
                    break;
                }
            } else if sh.store.resident_bytes() + node.handle.state_bytes > cap_bytes {
                sh.deques[widx].lock().expect("deque lock").push_back(node);
                sh.set_stop(StopCause::Limit(InconclusiveReason::MemoryLimit));
                break;
            }
        }

        let s = node.step;
        node.step += 1;
        out.delta.max_depth = out.delta.max_depth.max(depth);
        sh.depth.fetch_max(depth, Ordering::Relaxed);
        env.restore(&node.cursors);
        out.delta.restores += 1;
        sh.re.fetch_add(1, Ordering::Relaxed);
        if tel_on {
            ebuf.push(WEvent::Restore { depth });
        }

        if env.all_done() {
            if env.eof {
                // Witness found: keep the node alive in the deques (a
                // racing limit stop must still see a complete front)
                // and let the coordinator replay the burst.
                sh.deques[widx].lock().expect("deque lock").push_back(node);
                sh.set_stop(StopCause::Witness);
                break;
            }
            // PGAV: park with its deterministic label.
            out.delta.pg_nodes += 1;
            let total = sh.pg.fetch_add(1, Ordering::Relaxed) + 1;
            if tel_on {
                ebuf.push(WEvent::Park {
                    depth,
                    pg_total: total,
                });
            }
            let mut label = node.key.clone();
            label.push(s);
            sh.pending.fetch_sub(1, Ordering::AcqRel);
            out.parked.push((label, node));
            continue;
        }

        // Generate (or re-generate) this node's transition list on a
        // scratch copy of its snapshot. One store round-trip serves the
        // whole expansion: `pristine` is the scratch's source *and*
        // becomes the child's state if a transition fires (generate may
        // dirty the scratch, so the fire gets the untouched copy).
        let pristine = match sh.store.materialize(node.handle) {
            Ok(st) => st,
            Err(e) => {
                out.spill_faults.push(e.to_string());
                sh.deques[widx].lock().expect("deque lock").push_back(node);
                sh.set_stop(StopCause::Limit(InconclusiveReason::SpillFailure));
                break;
            }
        };
        let mut st = copy_state(&pristine, options);
        out.delta.generates += 1;
        sh.ge.fetch_add(1, Ordering::Relaxed);
        let g0 = if timed { Some(Instant::now()) } else { None };
        match guard("generate", || machine.generate_into(&mut st, &env, &mut gen)) {
            Ok(()) => {}
            Err(e) if is_fatal(&e) => {
                sh.deques[widx].lock().expect("deque lock").push_back(node);
                sh.set_stop(StopCause::Fatal(e));
                break;
            }
            Err(e) => {
                if tel_on {
                    ebuf.push(WEvent::ErrorBranch { depth, kind: e.kind });
                    ebuf.push(WEvent::Generate {
                        depth,
                        fanout: 0,
                        incomplete: false,
                        lat_us: g0.map(|t| t.elapsed().as_secs_f64() * 1e6),
                    });
                }
                record_error(&mut out.spec_errors, &mut out.delta, e);
                sh.store.release(node.handle);
                sh.pending.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
        };
        let is_pg = gen.incomplete;
        let untried: Vec<_> = gen
            .fireable
            .drain(..)
            .filter(|f| !node.tried.contains(&f.trans) && !node.blocked.contains(&f.trans))
            .collect();
        if tel_on {
            ebuf.push(WEvent::Generate {
                depth,
                fanout: untried.len(),
                incomplete: is_pg,
                lat_us: g0.map(|t| t.elapsed().as_secs_f64() * 1e6),
            });
        }
        if !untried.is_empty() {
            out.delta.fanout_sum += untried.len() as u64;
            out.delta.fanout_samples += 1;
        }

        let Some(f) = untried.first().cloned() else {
            if is_pg || !node.blocked.is_empty() {
                if sh.pg.load(Ordering::Relaxed) >= options.limits.max_pg_nodes as u64 {
                    sh.deques[widx].lock().expect("deque lock").push_back(node);
                    sh.set_stop(StopCause::Limit(InconclusiveReason::PgNodeLimit));
                    break;
                }
                out.delta.pg_nodes += 1;
                let total = sh.pg.fetch_add(1, Ordering::Relaxed) + 1;
                if tel_on {
                    ebuf.push(WEvent::Park {
                        depth,
                        pg_total: total,
                    });
                }
                let mut label = node.key.clone();
                label.push(s);
                sh.pending.fetch_sub(1, Ordering::AcqRel);
                out.parked.push((label, node));
            } else {
                sh.store.release(node.handle);
                sh.pending.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        };

        // Fire the child on the untouched copy of the node's state.
        node.tried.insert(f.trans);
        drop(st);
        let mut child_state = pristine;
        env.restore(&node.cursors);
        let before = env.outstanding();
        out.delta.transitions_executed += 1;
        sh.te.fetch_add(1, Ordering::Relaxed);
        let f0 = if timed { Some(Instant::now()) } else { None };
        env.begin_fire();
        let fired = match guard("fire", || machine.fire(&mut child_state, &f, &mut env)) {
            Ok(FireOutcome::Completed) => env.end_fire(),
            Ok(FireOutcome::OutputRejected) => false,
            Err(e) if is_fatal(&e) => {
                sh.deques[widx].lock().expect("deque lock").push_back(node);
                sh.set_stop(StopCause::Fatal(e));
                break;
            }
            Err(e) => {
                if tel_on {
                    ebuf.push(WEvent::ErrorBranch { depth, kind: e.kind });
                }
                record_error(&mut out.spec_errors, &mut out.delta, e);
                false
            }
        };
        if tel_on {
            ebuf.push(WEvent::Fire {
                depth,
                trans: f.trans,
                fired,
                nanos: f0.map_or(0, |t| t.elapsed().as_nanos() as u64),
            });
        }
        if !fired && env.last_reject == Some(RejectReason::MayGrow) {
            node.tried.remove(&f.trans);
            node.blocked.insert(f.trans);
        }

        let has_more = untried.len() > 1 || is_pg || !node.blocked.is_empty();
        if fired {
            let child_barren = if env.outstanding() < before {
                0
            } else {
                node.barren + 1
            };
            let mut child_path = node.path.clone();
            child_path.push(machine.transition_name(f.trans).to_string());
            let mut child_key = node.key.clone();
            child_key.push(s);
            let mut child_opt = None;
            if child_barren > options.limits.max_barren_steps {
                out.delta.barren_prunes += 1;
                if tel_on {
                    ebuf.push(WEvent::Prune {
                        depth: child_path.len(),
                    });
                }
            } else {
                out.delta.saves += 1;
                sh.sa.fetch_add(1, Ordering::Relaxed);
                let (h, interned) = sh.store.save(child_state);
                if tel_on {
                    ebuf.push(WEvent::Save {
                        depth: child_path.len(),
                        bytes: h.state_bytes,
                        interned,
                        resident: sh.store.resident_bytes(),
                    });
                }
                let child = PNode {
                    handle: h,
                    cursors: env.save(),
                    tried: HashSet::new(),
                    blocked: HashSet::new(),
                    barren: child_barren,
                    path: child_path,
                    key: child_key,
                    step: 0,
                };
                // Count the child before it becomes visible so `pending`
                // can never dip to zero while work remains.
                sh.pending.fetch_add(1, Ordering::AcqRel);
                child_opt = Some(child);
            }
            // Parent first, child last: the owner's next pop is the
            // child — the sequential loop's depth-first order, which
            // keeps the frontier (and the resident set) small.
            if has_more {
                sh.deques[widx].lock().expect("deque lock").push_back(node);
            } else {
                sh.store.release(node.handle);
                sh.pending.fetch_sub(1, Ordering::AcqRel);
            }
            if let Some(c) = child_opt {
                sh.deques[widx].lock().expect("deque lock").push_back(c);
            }
        } else if has_more {
            sh.deques[widx].lock().expect("deque lock").push_back(node);
        } else {
            sh.store.release(node.handle);
            sh.pending.fetch_sub(1, Ordering::AcqRel);
        }
        if ebuf.len() >= EVENT_FLUSH {
            flush(&events, widx, &mut ebuf);
        }
    }
    flush(&events, widx, &mut ebuf);
    out.busy = t_loop
        .elapsed()
        .saturating_sub(out.idle)
        .saturating_sub(out.steal);
    out
}

/// A clone of one burst-input node, taken before a post-eof burst
/// starts so a witness abort can replay the burst sequentially.
struct ReplaySeed {
    state: MachineState,
    cursors: Cursors,
    tried: HashSet<usize>,
    blocked: HashSet<usize>,
    barren: usize,
    path: Vec<String>,
}

/// Freeze one parallel node into its checkpoint form (materializing its
/// snapshot out of the store).
fn pnode_to_ckpt(store: &ShardedStore, n: &PNode) -> Result<MdfsNodeCkpt, SpillError> {
    let state = store.materialize(n.handle)?;
    let mut tried: Vec<usize> = n.tried.iter().copied().collect();
    tried.sort_unstable();
    let mut blocked: Vec<usize> = n.blocked.iter().copied().collect();
    blocked.sort_unstable();
    Ok(MdfsNodeCkpt {
        state,
        cursors: n.cursors.clone(),
        tried,
        blocked,
        barren: n.barren,
        path: n.path.clone(),
    })
}

/// Freeze the multi-worker front: every worker's leftover deque and the
/// nodes it parked in the stopped burst, plus the prior PG-list. A spill
/// read failure makes the stop un-checkpointable (recorded as a fault).
fn freeze_par(
    store: &ShardedStore,
    deques: &[Mutex<VecDeque<PNode>>],
    parked: &[Vec<PNode>],
    pg_list: &[PNode],
    eof: bool,
    spill_faults: &mut Vec<String>,
) -> Option<MdfsCheckpoint> {
    let fault = |e: SpillError, spill_faults: &mut Vec<String>| {
        spill_faults.push(format!("checkpoint save skipped: {}", e));
    };
    let mut workers = Vec::with_capacity(deques.len());
    for (i, dq) in deques.iter().enumerate() {
        let dq = dq.lock().expect("deque lock");
        let mut w = MdfsWorkerCkpt {
            deque: Vec::with_capacity(dq.len()),
            parked: Vec::with_capacity(parked[i].len()),
        };
        for n in dq.iter() {
            match pnode_to_ckpt(store, n) {
                Ok(c) => w.deque.push(c),
                Err(e) => {
                    fault(e, spill_faults);
                    return None;
                }
            }
        }
        for n in &parked[i] {
            match pnode_to_ckpt(store, n) {
                Ok(c) => w.parked.push(c),
                Err(e) => {
                    fault(e, spill_faults);
                    return None;
                }
            }
        }
        workers.push(w);
    }
    let mut pg_prior = Vec::with_capacity(pg_list.len());
    for n in pg_list {
        match pnode_to_ckpt(store, n) {
            Ok(c) => pg_prior.push(c),
            Err(e) => {
                fault(e, spill_faults);
                return None;
            }
        }
    }
    Some(MdfsCheckpoint {
        workers_at_save: deques.len() as u32,
        eof,
        workers,
        pg_prior,
    })
}

/// Replay a witness-aborted post-eof burst sequentially, from clones of
/// the burst's input nodes, resuming from the burst-start cumulative
/// stats. Telemetry events are suppressed (phase one already streamed
/// live) and the memory budget is skipped — the burst just ran inside
/// it, and the replay stops at the first witness, which is exactly the
/// witness (and counter total) the single-worker search reports.
#[allow(clippy::too_many_arguments)]
fn replay_burst(
    machine: &Machine,
    env: &mut TraceEnv,
    options: &AnalysisOptions,
    seeds: Vec<ReplaySeed>,
    mut stats: SearchStats,
    mut spec_errors: Vec<RuntimeError>,
    source: &dyn TraceSource,
    t0: Instant,
    base_wall: Duration,
    clocks: Vec<Clock>,
    cap: u64,
    deadline: Option<Instant>,
    spill_faults: Vec<String>,
    tel: &mut Telemetry,
) -> Result<AnalysisReport, TangoError> {
    let mut gen = estelle_runtime::Generated::default();
    // Seeds arrive in sequential pop order; the stack pops from the end.
    let mut work: Vec<Node> = seeds
        .into_iter()
        .rev()
        .map(|s| Node::from_parts(s.state, s.cursors, s.tried, s.blocked, s.barren, s.path))
        .collect();
    let mut pg_list: Vec<Node> = Vec::new();

    loop {
        while let Some(mut node) = work.pop() {
            if stats.transitions_executed > cap {
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                    None,
                    stats,
                    spec_errors,
                    source,
                    t0,
                    base_wall,
                    WorkerClocks::Par(clocks),
                    cap,
                    spill_faults,
                    None,
                    &env.trace,
                    tel,
                ));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    source,
                    t0,
                    base_wall,
                    WorkerClocks::Par(clocks),
                    cap,
                    spill_faults,
                    None,
                    &env.trace,
                    tel,
                ));
            }
            stats.max_depth = stats.max_depth.max(node.path.len());
            env.restore(&node.cursors);
            stats.restores += 1;
            if env.all_done() {
                // eof holds throughout: the sequential-first witness.
                return Ok(finish(
                    Verdict::Valid,
                    Some(node.path),
                    stats,
                    spec_errors,
                    source,
                    t0,
                    base_wall,
                    WorkerClocks::Par(clocks),
                    cap,
                    spill_faults,
                    None,
                    &env.trace,
                    tel,
                ));
            }
            let mut st = copy_state(node.resident_state(), options);
            stats.generates += 1;
            match guard("generate", || machine.generate_into(&mut st, env, &mut gen)) {
                Ok(()) => {}
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    record_error(&mut spec_errors, &mut stats, e);
                    continue;
                }
            };
            let is_pg = gen.incomplete;
            let untried: Vec<_> = gen
                .fireable
                .drain(..)
                .filter(|f| !node.tried.contains(&f.trans) && !node.blocked.contains(&f.trans))
                .collect();
            if !untried.is_empty() {
                stats.fanout_sum += untried.len() as u64;
                stats.fanout_samples += 1;
            }
            let Some(f) = untried.first().cloned() else {
                if is_pg || !node.blocked.is_empty() {
                    if pg_list.len() >= options.limits.max_pg_nodes {
                        return Ok(finish(
                            Verdict::Inconclusive(InconclusiveReason::PgNodeLimit),
                            None,
                            stats,
                            spec_errors,
                            source,
                            t0,
                            base_wall,
                            WorkerClocks::Par(clocks),
                            cap,
                            spill_faults,
                            None,
                            &env.trace,
                            tel,
                        ));
                    }
                    stats.pg_nodes += 1;
                    pg_list.push(node);
                }
                continue;
            };
            node.tried.insert(f.trans);
            let mut child_state = copy_state(node.resident_state(), options);
            env.restore(&node.cursors);
            let before = env.outstanding();
            stats.transitions_executed += 1;
            env.begin_fire();
            let fired = match guard("fire", || machine.fire(&mut child_state, &f, env)) {
                Ok(FireOutcome::Completed) => env.end_fire(),
                Ok(FireOutcome::OutputRejected) => false,
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    record_error(&mut spec_errors, &mut stats, e);
                    false
                }
            };
            if !fired && env.last_reject == Some(RejectReason::MayGrow) {
                node.tried.remove(&f.trans);
                node.blocked.insert(f.trans);
            }
            let has_more = untried.len() > 1 || is_pg || !node.blocked.is_empty();
            if fired {
                let child_barren = if env.outstanding() < before {
                    0
                } else {
                    node.barren + 1
                };
                let mut child_path = node.path.clone();
                child_path.push(machine.transition_name(f.trans).to_string());
                if has_more {
                    work.push(node);
                }
                if child_barren > options.limits.max_barren_steps {
                    stats.barren_prunes += 1;
                } else {
                    stats.saves += 1;
                    work.push(Node::new(child_state, env.save(), child_barren, child_path));
                }
            } else if has_more {
                work.push(node);
            }
        }
        // Post-eof parks are theoretically impossible, but mirror the
        // sequential exhaustion logic defensively.
        if pg_list.is_empty() {
            return Ok(finish(
                Verdict::Invalid,
                None,
                stats,
                spec_errors,
                source,
                t0,
                base_wall,
                WorkerClocks::Par(clocks),
                cap,
                spill_faults,
                None,
                &env.trace,
                tel,
            ));
        }
        for n in pg_list.iter_mut() {
            n.blocked.clear();
        }
        work.append(&mut pg_list);
    }
}

/// Replay one worker's buffered telemetry batch through the real
/// (non-`Send`) handle, stamped with the worker id.
fn replay_events(tel: &mut Telemetry, machine: &Machine, worker: u16, batch: Vec<WEvent>) {
    tel.set_worker(worker);
    for ev in batch {
        match ev {
            WEvent::Generate {
                depth,
                fanout,
                incomplete,
                lat_us,
            } => tel.on_generate_dur(depth, fanout, incomplete, lat_us),
            WEvent::Fire {
                depth,
                trans,
                fired,
                nanos,
            } => {
                let observable = if tel.events_on() {
                    machine.transition_observable(trans)
                } else {
                    None
                };
                tel.on_fire_dur(
                    depth,
                    trans,
                    machine.transition_name(trans),
                    observable,
                    fired,
                    nanos,
                );
            }
            WEvent::Save {
                depth,
                bytes,
                interned,
                resident,
            } => tel.on_save(depth, bytes, interned, resident),
            WEvent::Restore { depth } => tel.on_restore(depth),
            WEvent::Park { depth, pg_total } => tel.on_park(depth, pg_total),
            WEvent::Prune { depth } => tel.on_prune(depth, PruneKind::Barren),
            WEvent::ErrorBranch { depth, kind } => tel.on_error_branch(depth, kind),
        }
    }
}

/// Drive the progress heartbeat mid-burst from the live atomics overlaid
/// on the cumulative base stats.
fn tick_par(tel: &mut Telemetry, base: &SearchStats, sh: &BurstShared<'_>, cap: u64) {
    let mut s = base.clone();
    s.transitions_executed = sh.te.load(Ordering::Relaxed);
    s.generates = sh.ge.load(Ordering::Relaxed);
    s.restores = sh.re.load(Ordering::Relaxed);
    s.saves = sh.sa.load(Ordering::Relaxed);
    s.max_depth = sh.depth.load(Ordering::Relaxed);
    s.snapshot_bytes = sh.store.resident_bytes();
    tel.tick(&s, cap);
}

/// The burst-barrier multi-worker MDFS loop (`workers = N ≥ 2`),
/// optionally seeded from a checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_par(
    machine: &Machine,
    module: &AnalyzedModule,
    source: &mut dyn TraceSource,
    options: &AnalysisOptions,
    on_status: &mut dyn FnMut(&Verdict) -> bool,
    tel: &mut Telemetry,
    n_workers: usize,
    seed: Option<MdfsSeed>,
) -> Result<AnalysisReport, TangoError> {
    let t0 = Instant::now();
    let deadline = options.limits.max_wall_time.map(|d| t0 + d);
    let cap = options.limits.max_transitions;
    let machine = machine
        .policy_view(options.policy)
        .exec_view(options.exec_mode);
    tel.set_workers(n_workers);

    let (mut stats, base_wall, trace0, eof0, seed_front) = match seed {
        Some(s) => {
            let bw = s.stats.wall_time;
            (s.stats, bw, s.trace, s.eof, Some((s.work, s.pg)))
        }
        None => (
            SearchStats::default(),
            Duration::ZERO,
            ResolvedTrace::empty(module.ips.len()),
            false,
            None,
        ),
    };
    let carry = CarryBase::of(&stats);
    let mut spec_errors: Vec<RuntimeError> = Vec::new();

    let mut env = TraceEnv::new(module, trace0, options, true)?;
    env.eof = eof0;

    // The sharded snapshot store: per-shard intern maps + (optionally)
    // per-shard spill tiers, shared by every worker.
    let store = match ShardedStore::build(options, deadline) {
        Ok(s) => s,
        Err(e) => {
            return Ok(finish(
                Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Par(vec![Clock::default(); n_workers]),
                cap,
                vec![e.to_string()],
                None,
                &env.trace,
                tel,
            ));
        }
    };
    let mut spill_faults: Vec<String> = store.take_warnings();
    let mut clocks: Vec<Clock> = vec![Clock::default(); n_workers];

    let mut work: Vec<PNode> = Vec::new();
    let mut pg_list: Vec<PNode> = Vec::new();

    let pnode_from_ckpt = |c: MdfsNodeCkpt| -> PNode {
        let (h, _) = store.save(c.state);
        PNode {
            handle: h,
            cursors: c.cursors,
            tried: c.tried.into_iter().collect(),
            blocked: c.blocked.into_iter().collect(),
            barren: c.barren,
            path: c.path,
            key: Vec::new(),
            step: 0,
        }
    };
    match seed_front {
        None => {
            let start = machine.initial_state()?;
            stats.saves += 1;
            let (h, _) = store.save(start);
            if tel.hot() {
                tel.on_save(0, h.state_bytes, false, store.resident_bytes());
            }
            work.push(PNode {
                handle: h,
                cursors: env.save(),
                tried: HashSet::new(),
                blocked: HashSet::new(),
                barren: 0,
                path: Vec::new(),
                key: vec![0],
                step: 0,
            });
        }
        Some((wseeds, pseeds)) => {
            work.extend(wseeds.into_iter().map(pnode_from_ckpt));
            pg_list.extend(pseeds.into_iter().map(pnode_from_ckpt));
        }
    }
    stamp_store(&mut stats, &carry, &store);

    // Revive parked PG-nodes (see the sequential `revive`).
    fn revive_p(work: &mut Vec<PNode>, pg_list: &mut Vec<PNode>, reorder: bool) {
        for n in pg_list.iter_mut() {
            n.blocked.clear();
        }
        if reorder {
            work.append(pg_list);
        } else {
            let rest = std::mem::take(work);
            work.append(pg_list);
            work.extend(rest);
        }
    }

    let mut last_status: Option<Verdict> = None;
    let tel_hot = tel.hot();
    let timed = tel.timer().is_some();

    loop {
        // Absorb anything the source produced (coordinator only).
        let poll = source.poll();
        let got_new = !poll.events.is_empty();
        for e in &poll.events {
            env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
        }
        if poll.eof {
            env.eof = true;
        }
        if got_new || poll.eof {
            revive_p(&mut work, &mut pg_list, options.mdfs_reorder);
        }

        while !work.is_empty() {
            // ---- one burst: trace frozen, N workers drain the tree ----
            let mut inputs: Vec<PNode> = std::mem::take(&mut work);
            inputs.reverse(); // sequential pop order

            // Post-eof bursts may conclude Valid: clone the inputs now
            // so a witness abort can replay the burst sequentially.
            let mut replay_seeds: Option<Vec<ReplaySeed>> = None;
            let mut burst_base: Option<(SearchStats, Vec<RuntimeError>)> = None;
            if env.eof {
                let mut seeds = Vec::with_capacity(inputs.len());
                for n in &inputs {
                    match store.materialize(n.handle) {
                        Ok(state) => seeds.push(ReplaySeed {
                            state,
                            cursors: n.cursors.clone(),
                            tried: n.tried.clone(),
                            blocked: n.blocked.clone(),
                            barren: n.barren,
                            path: n.path.clone(),
                        }),
                        Err(e) => {
                            spill_faults.push(e.to_string());
                            stamp_store(&mut stats, &carry, &store);
                            return Ok(finish(
                                Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                                None,
                                stats,
                                spec_errors,
                                &*source,
                                t0,
                                base_wall,
                                WorkerClocks::Par(clocks),
                                cap,
                                spill_faults,
                                None,
                                &env.trace,
                                tel,
                            ));
                        }
                    }
                }
                replay_seeds = Some(seeds);
                burst_base = Some((stats.clone(), spec_errors.clone()));
            }

            let n_inputs = inputs.len();
            let sh = BurstShared {
                deques: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                pending: AtomicUsize::new(n_inputs),
                stop: Mutex::new(None),
                stopped: AtomicBool::new(false),
                te: AtomicU64::new(stats.transitions_executed),
                ge: AtomicU64::new(stats.generates),
                re: AtomicU64::new(stats.restores),
                sa: AtomicU64::new(stats.saves),
                pg: AtomicU64::new(pg_list.len() as u64),
                depth: AtomicUsize::new(stats.max_depth),
                store: &store,
            };
            // Re-seed the park keys: input i (in sequential pop order)
            // gets key [i]. Distributed round-robin; pushed in reverse
            // so each owner pops its earliest input first.
            for (j, mut n) in inputs.into_iter().rev().enumerate() {
                let i = n_inputs - 1 - j;
                n.key.clear();
                n.key.push(i as u32);
                n.step = 0;
                sh.deques[i % n_workers]
                    .lock()
                    .expect("deque lock")
                    .push_back(n);
            }

            // Each worker gets its own cursor view over the frozen trace.
            let mut envs = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let mut e2 = TraceEnv::new(module, env.trace.clone(), options, true)?;
                e2.eof = env.eof;
                envs.push(e2);
            }

            let (txo, rxo) = if tel_hot {
                let (tx, rx) = mpsc::channel();
                (Some(tx), Some(rx))
            } else {
                (None, None)
            };

            let outs: Vec<WorkerOut> = std::thread::scope(|s| {
                let shr = &sh;
                let mref = &machine;
                let mut handles = Vec::with_capacity(n_workers);
                for (i, wenv) in envs.into_iter().enumerate() {
                    let tx = txo.clone();
                    handles.push(s.spawn(move || {
                        // Spec-level panics are already contained per
                        // step (`search::guard`); this backstop covers
                        // infrastructure panics, which would otherwise
                        // leave `pending` forever non-zero and spin the
                        // surviving workers. Flag the stop, then let the
                        // coordinator's join re-raise the panic.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            burst_worker(i, mref, wenv, options, deadline, shr, tx, timed)
                        }));
                        match r {
                            Ok(o) => o,
                            Err(p) => {
                                shr.stopped.store(true, Ordering::Release);
                                std::panic::resume_unwind(p)
                            }
                        }
                    }));
                }
                drop(txo);
                match rxo {
                    Some(rx) => loop {
                        match rx.recv_timeout(Duration::from_millis(25)) {
                            Ok((w, batch)) => replay_events(tel, &machine, w, batch),
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                tick_par(tel, &stats, &sh, cap)
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    },
                    None => {
                        while handles.iter().any(|h| !h.is_finished()) {
                            std::thread::sleep(Duration::from_millis(25));
                            tick_par(tel, &stats, &sh, cap);
                        }
                    }
                }
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(o) => o,
                        Err(p) => std::panic::resume_unwind(p),
                    })
                    .collect()
            });
            tel.set_worker(0);

            let stop = sh.stop.lock().expect("stop lock").take();
            match stop {
                None => {
                    // Exhausted: the greedy per-worker deltas are exact.
                    let mut all_parked: Vec<(Vec<u32>, PNode)> = Vec::new();
                    for (i, o) in outs.into_iter().enumerate() {
                        clocks[i].busy += o.busy;
                        clocks[i].idle += o.idle;
                        clocks[i].steal += o.steal;
                        stats.absorb(&o.delta);
                        spec_errors.extend(o.spec_errors);
                        spill_faults.extend(o.spill_faults);
                        all_parked.extend(o.parked);
                    }
                    spec_errors.truncate(MAX_RECORDED_ERRORS);
                    // Deterministic park order (see `PNode::key`).
                    all_parked.sort_by(|a, b| a.0.cmp(&b.0));
                    pg_list.extend(all_parked.into_iter().map(|(_, n)| n));
                    stamp_store(&mut stats, &carry, &store);
                }
                Some(StopCause::Fatal(e)) => return Err(TangoError::Runtime(e)),
                Some(StopCause::Witness) => {
                    // Discard the burst's deltas; keep the honest clocks.
                    for (i, o) in outs.into_iter().enumerate() {
                        clocks[i].busy += o.busy;
                        clocks[i].idle += o.idle;
                        clocks[i].steal += o.steal;
                    }
                    let (mut bstats, berrors) =
                        burst_base.expect("witness stops only happen post-eof");
                    stamp_store(&mut bstats, &carry, &store);
                    let seeds = replay_seeds.expect("witness stops only happen post-eof");
                    return replay_burst(
                        &machine,
                        &mut env,
                        options,
                        seeds,
                        bstats,
                        berrors,
                        &*source,
                        t0,
                        base_wall,
                        clocks,
                        cap,
                        deadline,
                        spill_faults,
                        tel,
                    );
                }
                Some(StopCause::Limit(reason)) => {
                    // Completed steps are exact (tiling); freeze the rest.
                    let mut parked_by_worker: Vec<Vec<PNode>> = Vec::with_capacity(n_workers);
                    for (i, o) in outs.into_iter().enumerate() {
                        clocks[i].busy += o.busy;
                        clocks[i].idle += o.idle;
                        clocks[i].steal += o.steal;
                        stats.absorb(&o.delta);
                        spec_errors.extend(o.spec_errors);
                        spill_faults.extend(o.spill_faults);
                        parked_by_worker.push(o.parked.into_iter().map(|(_, n)| n).collect());
                    }
                    spec_errors.truncate(MAX_RECORDED_ERRORS);
                    let ckpt = if matches!(reason, InconclusiveReason::SpillFailure) {
                        if let Some(f) = store.take_fault() {
                            spill_faults.push(f.to_string());
                        }
                        None
                    } else {
                        freeze_par(
                            &store,
                            &sh.deques,
                            &parked_by_worker,
                            &pg_list,
                            env.eof,
                            &mut spill_faults,
                        )
                    };
                    stamp_store(&mut stats, &carry, &store);
                    return Ok(finish(
                        Verdict::Inconclusive(reason),
                        None,
                        stats,
                        spec_errors,
                        &*source,
                        t0,
                        base_wall,
                        WorkerClocks::Par(clocks),
                        cap,
                        spill_faults,
                        ckpt,
                        &env.trace,
                        tel,
                    ));
                }
            }
        }

        // The tree (as currently known) is exhausted.
        if env.eof {
            if pg_list.is_empty() {
                return Ok(finish(
                    Verdict::Invalid,
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Par(clocks),
                    cap,
                    spill_faults,
                    None,
                    &env.trace,
                    tel,
                ));
            }
            revive_p(&mut work, &mut pg_list, options.mdfs_reorder);
            continue;
        }
        if pg_list.is_empty() {
            return Ok(finish(
                Verdict::Invalid,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Par(clocks),
                cap,
                spill_faults,
                None,
                &env.trace,
                tel,
            ));
        }

        // Interim verdict: PGAV ⇒ valid so far, else likely invalid.
        let any_av = pg_list.iter().any(|n| {
            env.restore(&n.cursors);
            env.all_done()
        });
        let status = if any_av {
            Verdict::ValidSoFar
        } else {
            Verdict::LikelyInvalid
        };
        if last_status.as_ref() != Some(&status) {
            tel.on_interim_verdict(&status);
            last_status = Some(status.clone());
        }
        if !on_status(&status) {
            return Ok(finish(
                status,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                base_wall,
                WorkerClocks::Par(clocks),
                cap,
                spill_faults,
                None,
                &env.trace,
                tel,
            ));
        }

        // Idle-poll between bursts (coordinator only; workers are gone).
        let mut idle = Backoff::new(RetryPolicy::mdfs_poll());
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                let ckpt = {
                    let mut pg_prior = Vec::with_capacity(pg_list.len());
                    let mut ok = true;
                    for n in &pg_list {
                        match pnode_to_ckpt(&store, n) {
                            Ok(c) => pg_prior.push(c),
                            Err(e) => {
                                spill_faults.push(format!("checkpoint save skipped: {}", e));
                                ok = false;
                                break;
                            }
                        }
                    }
                    ok.then(|| MdfsCheckpoint {
                        workers_at_save: n_workers as u32,
                        eof: env.eof,
                        workers: (0..n_workers)
                            .map(|_| MdfsWorkerCkpt {
                                deque: Vec::new(),
                                parked: Vec::new(),
                            })
                            .collect(),
                        pg_prior,
                    })
                };
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    base_wall,
                    WorkerClocks::Par(clocks),
                    cap,
                    spill_faults,
                    ckpt,
                    &env.trace,
                    tel,
                ));
            }
            let p = source.poll();
            if !p.events.is_empty() || p.eof {
                for e in &p.events {
                    env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
                }
                if p.eof {
                    env.eof = true;
                }
                revive_p(&mut work, &mut pg_list, options.mdfs_reorder);
                break;
            }
            let idle_sleep = idle.next_delay();
            let sleep = match deadline {
                Some(d) => idle_sleep.min(d.saturating_duration_since(Instant::now())),
                None => idle_sleep,
            };
            std::thread::sleep(sleep);
        }
    }
}




