//! Multi-threaded depth-first search (§3.1) for on-line trace analysis.
//!
//! Standard DFS deadlocks on dynamic traces: a branch may be blocked only
//! because an input queue is temporarily empty, while the real solution is
//! elsewhere — or right here once more data arrives. MDFS therefore keeps
//! every node whose transition list was *incomplete* (an input queue was
//! exhausted but may still grow) as a saved **PG-node** "thread" and
//! re-generates it when new input arrives.
//!
//! Implementation notes mapping to the paper:
//! * each search node carries its own state snapshot plus the set of
//!   transitions already explored from it, so a re-generate only explores
//!   what the new input enabled (§3.1.1's "additional transitions");
//! * *dynamic node reordering* (§3.1.3): whenever new input arrives the
//!   PG-nodes are pushed on **top** of the work stack, putting the rest of
//!   the tree "on hold";
//! * termination (§3.1.2): `Invalid` only when the tree is exhausted and
//!   no PG-nodes remain; a PG-node that has consumed and verified
//!   everything received so far is a **PGAV-node** and yields the interim
//!   verdict `ValidSoFar`; cycling through non-AV PG-nodes yields
//!   `LikelyInvalid`; the `eof` marker freezes the trace, turns PG-nodes
//!   into fully generated ones, and forces a conclusive verdict;
//! * an output that cannot be matched *yet* (its stream may still grow)
//!   does not count as explored, so the branch is retried later — the
//!   output-side dual of an incomplete transition list.
//!
//! Resource governance: the wall-clock deadline is checked both in the
//! search burst and in the idle polling loop, so a monitor fed by a
//! stalled or dead source stops with `Inconclusive(TimeLimit)` instead of
//! wedging silently; the snapshot-memory budget covers work + PG nodes.
//! Whatever the verdict, [`TraceSource::diagnostics`] is folded into
//! [`AnalysisReport::source_faults`] so feed-level faults (parse errors,
//! truncation, a dead feeder) survive into the report.

use crate::env::{Cursors, RejectReason, TraceEnv};
use crate::error::TangoError;
use crate::fault::{Backoff, RetryPolicy};
use crate::options::AnalysisOptions;
use crate::stats::SearchStats;
use crate::telemetry::{PruneKind, Telemetry};
use crate::trace::source::TraceSource;
use crate::trace::ResolvedTrace;
use crate::verdict::{AnalysisReport, InconclusiveReason, Verdict};
use estelle_frontend::sema::model::AnalyzedModule;
use estelle_runtime::{FireOutcome, Machine, MachineState, RuntimeError};
use std::collections::HashSet;
use std::time::{Duration, Instant};

use super::snapshot::state_key;
use super::spill::{SpillCounters, SpillError, SpillTicket, SpillTier};
use super::{guard, is_fatal, record_error};

/// One saved search-tree node ("thread").
struct Node {
    /// The node's snapshot: resident in RAM, or (under memory pressure,
    /// with a spill tier attached) parked in a segment file with the
    /// claim check in `ticket`.
    state: Option<MachineState>,
    /// Segment record holding this node's snapshot, once written.
    /// Snapshots are immutable, so re-evicting a ticketed node is
    /// write-free.
    ticket: Option<SpillTicket>,
    cursors: Cursors,
    /// Compiled-transition indices already explored from this node.
    tried: HashSet<usize>,
    /// Transitions whose firing failed only because an output stream was
    /// exhausted-but-growing: retried once new data arrives. Without this
    /// the node would spin on the same transition without ever polling.
    blocked: HashSet<usize>,
    /// Consecutive barren steps on the path to this node.
    barren: usize,
    path: Vec<String>,
    /// Snapshot bytes proper — the part that moves between RAM and disk.
    state_bytes: usize,
    /// Cursor/bookkeeping bytes — always RAM-resident.
    meta_bytes: usize,
}

impl Node {
    fn new(
        state: MachineState,
        cursors: Cursors,
        barren: usize,
        path: Vec<String>,
    ) -> Self {
        let state_bytes = state.approx_bytes();
        let meta_bytes =
            (cursors.input.len() + cursors.output.len()) * std::mem::size_of::<usize>();
        Node {
            state: Some(state),
            ticket: None,
            cursors,
            tried: HashSet::new(),
            blocked: HashSet::new(),
            barren,
            path,
            state_bytes,
            meta_bytes,
        }
    }

    /// Bytes currently charged against the RAM gauge for this node.
    fn charged(&self) -> usize {
        self.meta_bytes + if self.state.is_some() { self.state_bytes } else { 0 }
    }

    /// Bytes the node charges once resident — what the budget check uses
    /// for the node about to be expanded.
    fn resident_footprint(&self) -> usize {
        self.meta_bytes + self.state_bytes
    }

    /// The resident snapshot. The search faults a popped node in before
    /// expanding it, so this never observes a spilled node.
    fn resident_state(&self) -> &MachineState {
        self.state
            .as_ref()
            .expect("node is faulted in before expansion")
    }
}

/// Evict one node's snapshot to the spill tier. `Ok(bytes)` is what
/// moved from the RAM gauge to the disk gauge (0 when already spilled).
/// A write failure keeps the node resident, so the search can still
/// finish or report from it.
fn spill_node(tier: &mut SpillTier, node: &mut Node) -> Result<usize, SpillError> {
    let Some(state) = node.state.take() else {
        return Ok(0);
    };
    if node.ticket.is_none() {
        match tier.write_state(state_key(&state), &state) {
            Ok(t) => node.ticket = Some(t),
            Err(e) => {
                node.state = Some(state);
                return Err(e);
            }
        }
    }
    tier.counters_mut().evictions += 1;
    Ok(node.state_bytes)
}

/// Fault a spilled node's snapshot back in (checksum-verified on read).
/// `Ok(bytes)` is what moved from the disk gauge back to RAM.
fn fault_in(tier: &mut SpillTier, node: &mut Node) -> Result<usize, SpillError> {
    if node.state.is_some() {
        return Ok(0);
    }
    let ticket = node.ticket.expect("a spilled node holds a ticket");
    node.state = Some(tier.read_state(&ticket)?);
    Ok(node.state_bytes)
}

/// Mirror the spill tier's counters and the disk-residency gauge into
/// the run's stats.
fn stamp_spill(stats: &mut SearchStats, c: SpillCounters, disk_bytes: usize) {
    stats.spill_writes = c.writes;
    stats.spill_reads = c.reads;
    stats.spill_retries = c.retries;
    stats.spill_evictions = c.evictions;
    stats.spill_giveups = c.giveups;
    stats.spilled_bytes = disk_bytes;
    stats.peak_spilled_bytes = stats.peak_spilled_bytes.max(disk_bytes);
}

/// Copy a node's state for expansion. With COW snapshots (the default)
/// this is O(globals + chunk table); with `--cow=off` it eagerly
/// deep-copies, reproducing the pre-COW §3.2.2 cost for A/B measurement.
fn copy_state(state: &MachineState, options: &AnalysisOptions) -> MachineState {
    if options.cow_snapshots {
        state.snapshot()
    } else {
        state.deep_snapshot()
    }
}

/// Terminal bookkeeping of one MDFS run: stamp the elapsed time and the
/// source's fault diagnostics + retry counters, report the worker's
/// genuine busy/idle split into the metrics registry (the idle-poll
/// sleeps are not search time), emit the verdict event and the final
/// heartbeat, then assemble the report.
#[allow(clippy::too_many_arguments)]
fn finish(
    verdict: Verdict,
    witness: Option<Vec<String>>,
    mut stats: SearchStats,
    spec_errors: Vec<RuntimeError>,
    source: &dyn TraceSource,
    t0: Instant,
    slept: Duration,
    cap: u64,
    spill_faults: Vec<String>,
    tel: &mut Telemetry,
) -> AnalysisReport {
    stats.wall_time = t0.elapsed();
    stats.source_retries = source.fault_retries();
    stats.source_giveups = source.fault_giveups();
    if let Some(m) = tel.metrics_mut() {
        let busy = stats.wall_time.saturating_sub(slept);
        m.set_gauge("mdfs.worker0.busy_seconds", busy.as_secs_f64());
        m.set_gauge("mdfs.worker0.idle_seconds", slept.as_secs_f64());
    }
    tel.on_verdict(&verdict, &stats, cap);
    let mut r = AnalysisReport::new(verdict, stats);
    r.witness = witness;
    r.spec_errors = spec_errors;
    r.source_faults = source.diagnostics();
    r.spill_faults = spill_faults;
    r
}

/// Run MDFS against a dynamic trace source. `on_status` sees every change
/// of the interim verdict; returning `false` stops the analysis and
/// reports the interim verdict.
pub fn run_mdfs(
    machine: &Machine,
    module: &AnalyzedModule,
    source: &mut dyn TraceSource,
    options: &AnalysisOptions,
    on_status: &mut dyn FnMut(&Verdict) -> bool,
    tel: &mut Telemetry,
) -> Result<AnalysisReport, TangoError> {
    let t0 = Instant::now();
    let deadline = options.limits.max_wall_time.map(|d| t0 + d);
    let cap = options.limits.max_transitions;
    // Cumulative idle-poll sleep; elapsed minus this is the worker's
    // genuine busy time.
    let mut slept = Duration::ZERO;
    let machine = machine
        .policy_view(options.policy)
        .exec_view(options.exec_mode);
    let mut stats = SearchStats::default();
    let mut spec_errors: Vec<RuntimeError> = Vec::new();

    // Disk spill tier: under a memory budget, park cold node snapshots
    // in segment files instead of stopping `Inconclusive(MemoryLimit)`.
    let mut spill_tier = match options.spill.build_tier(options.limits.max_state_bytes) {
        Ok(t) => t.map(|mut t| {
            // Spill retry sleeps honor the same wall-clock deadline the
            // search loop enforces.
            if let Some(d) = deadline {
                t.set_deadline(d);
            }
            t
        }),
        Err(e) => {
            return Ok(finish(
                Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                slept,
                cap,
                vec![e.to_string()],
                tel,
            ));
        }
    };
    let mut spill_faults: Vec<String> = spill_tier
        .as_mut()
        .map(SpillTier::take_warnings)
        .unwrap_or_default();
    // Snapshot bytes currently parked in spill segments.
    let mut disk_bytes: usize = 0;

    let mut env = TraceEnv::new(
        module,
        ResolvedTrace::empty(module.ips.len()),
        options,
        true,
    )?;

    let mut work: Vec<Node> = Vec::new();
    let mut pg_list: Vec<Node> = Vec::new();

    let start = machine.initial_state()?;
    stats.saves += 1;
    let root = Node::new(start, env.save(), 0, Vec::new());
    stats.snapshot_bytes = root.charged();
    stats.peak_snapshot_bytes = stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
    if tel.hot() {
        tel.on_save(0, root.charged(), false, stats.snapshot_bytes);
    }
    work.push(root);

    /// Revive parked PG-nodes: fresh data may unblock output-blocked
    /// transitions, so their blocked sets are cleared. With §3.1.3
    /// reordering the revived nodes go on top of the LIFO work stack and
    /// are searched immediately; basic MDFS queues them at the bottom,
    /// after the rest of the known tree.
    fn revive(work: &mut Vec<Node>, pg_list: &mut Vec<Node>, reorder: bool) {
        for n in pg_list.iter_mut() {
            n.blocked.clear();
        }
        if reorder {
            work.append(pg_list);
        } else {
            let rest = std::mem::take(work);
            work.append(pg_list);
            work.extend(rest);
        }
    }

    let mut last_status: Option<Verdict> = None;

    // Per-search *Generate* scratch, refilled in place by `generate_into`
    // so every node expansion reuses one fireable buffer (the untried list
    // drains it rather than consuming the whole `Generated`).
    let mut gen = estelle_runtime::Generated::default();

    loop {
        // Absorb anything the source produced.
        let poll = source.poll();
        let got_new = !poll.events.is_empty();
        for e in &poll.events {
            env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
        }
        if poll.eof {
            env.eof = true;
        }
        if got_new || poll.eof {
            // Dynamic node reordering: PG-nodes jump the queue.
            revive(&mut work, &mut pg_list, options.mdfs_reorder);
        }

        // DFS burst until the work stack drains.
        while let Some(mut node) = work.pop() {
            tel.tick(&stats, cap);
            // The counter is rebuilt from per-node charges across
            // park/revive cycles; saturate (and flag in debug builds)
            // rather than ever letting it wrap.
            debug_assert!(
                stats.snapshot_bytes >= node.charged(),
                "snapshot byte accounting must never wrap"
            );
            stats.snapshot_bytes = stats.snapshot_bytes.saturating_sub(node.charged());
            if stats.transitions_executed > options.limits.max_transitions {
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    slept,
                    cap,
                    spill_faults,
                    tel,
                ));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    slept,
                    cap,
                    spill_faults,
                    tel,
                ));
            }
            if let Some(cap_bytes) = options.limits.max_state_bytes {
                if let Some(tier) = spill_tier.as_mut() {
                    // Tiering, not a stop condition: evict parked
                    // snapshots — parked PG-nodes first, then the work
                    // stack bottom-up (coldest first) — until the
                    // resident set plus this node (about to be faulted
                    // in) fits the budget. If the genuinely live set
                    // alone exceeds the budget there is nothing left to
                    // evict and the search continues over budget — the
                    // tier's contract is degradation, never a stop.
                    let need = node.resident_footprint();
                    'evict: for list in [&mut pg_list, &mut work] {
                        for parked in list.iter_mut() {
                            if stats.snapshot_bytes + need <= cap_bytes {
                                break 'evict;
                            }
                            match spill_node(tier, parked) {
                                Ok(moved) => {
                                    stats.snapshot_bytes =
                                        stats.snapshot_bytes.saturating_sub(moved);
                                    disk_bytes += moved;
                                }
                                Err(e) => {
                                    spill_faults.push(e.to_string());
                                    stamp_spill(&mut stats, tier.counters(), disk_bytes);
                                    return Ok(finish(
                                        Verdict::Inconclusive(
                                            InconclusiveReason::SpillFailure,
                                        ),
                                        None,
                                        stats,
                                        spec_errors,
                                        &*source,
                                        t0,
                                        slept,
                                        cap,
                                        spill_faults,
                                        tel,
                                    ));
                                }
                            }
                        }
                    }
                } else if stats.snapshot_bytes + node.resident_footprint() > cap_bytes {
                    return Ok(finish(
                        Verdict::Inconclusive(InconclusiveReason::MemoryLimit),
                        None,
                        stats,
                        spec_errors,
                        &*source,
                        t0,
                        slept,
                        cap,
                        spill_faults,
                        tel,
                    ));
                }
            }
            // Fault the node in before expanding it.
            if node.state.is_none() {
                let tier = spill_tier
                    .as_mut()
                    .expect("spilled nodes only exist with a spill tier");
                match fault_in(tier, &mut node) {
                    Ok(moved) => disk_bytes = disk_bytes.saturating_sub(moved),
                    Err(e) => {
                        spill_faults.push(e.to_string());
                        stamp_spill(&mut stats, tier.counters(), disk_bytes);
                        return Ok(finish(
                            Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                            None,
                            stats,
                            spec_errors,
                            &*source,
                            t0,
                            slept,
                            cap,
                            spill_faults,
                            tel,
                        ));
                    }
                }
            }
            if let Some(t) = spill_tier.as_ref() {
                stamp_spill(&mut stats, t.counters(), disk_bytes);
            }
            stats.max_depth = stats.max_depth.max(node.path.len());
            env.restore(&node.cursors);
            stats.restores += 1;
            tel.on_restore(node.path.len());

            if env.all_done() {
                if env.eof {
                    return Ok(finish(
                        Verdict::Valid,
                        Some(node.path),
                        stats,
                        spec_errors,
                        &*source,
                        t0,
                        slept,
                        cap,
                        spill_faults,
                        tel,
                    ));
                }
                // PGAV: everything so far is explained; park the node.
                stats.pg_nodes += 1;
                stats.snapshot_bytes += node.charged();
                tel.on_park(node.path.len(), stats.pg_nodes);
                pg_list.push(node);
                continue;
            }

            // Generate (or re-generate) this node's transition list.
            // COW: the scratch copy shares heap chunks with the node's
            // snapshot; guard side effects break sharing lazily.
            let mut st = copy_state(node.resident_state(), options);
            stats.generates += 1;
            let gen_t0 = tel.timer();
            match guard("generate", || {
                machine.generate_into(&mut st, &env, &mut gen)
            }) {
                Ok(()) => {}
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    tel.on_error_branch(node.path.len(), e.kind);
                    record_error(&mut spec_errors, &mut stats, e);
                    // Keep GE == generate-events: a failed expansion is an
                    // event with zero fanout.
                    tel.on_generate(node.path.len(), 0, false, gen_t0);
                    continue;
                }
            };
            let is_pg = gen.incomplete;
            let untried: Vec<_> = gen
                .fireable
                .drain(..)
                .filter(|f| !node.tried.contains(&f.trans) && !node.blocked.contains(&f.trans))
                .collect();
            // Fanout as the search sees it: candidates not yet explored
            // from this node (a re-generate only offers what new input
            // enabled).
            tel.on_generate(node.path.len(), untried.len(), is_pg, gen_t0);
            if !untried.is_empty() {
                stats.fanout_sum += untried.len() as u64;
                stats.fanout_samples += 1;
            }

            let Some(f) = untried.first().cloned() else {
                if is_pg || !node.blocked.is_empty() {
                    if pg_list.len() >= options.limits.max_pg_nodes {
                        return Ok(finish(
                            Verdict::Inconclusive(InconclusiveReason::PgNodeLimit),
                            None,
                            stats,
                            spec_errors,
                            &*source,
                            t0,
                            slept,
                            cap,
                            spill_faults,
                            tel,
                        ));
                    }
                    stats.pg_nodes += 1;
                    stats.snapshot_bytes += node.charged();
                    tel.on_park(node.path.len(), stats.pg_nodes);
                    pg_list.push(node);
                }
                continue;
            };

            // Fire the child on a fresh copy of the node's state.
            node.tried.insert(f.trans);
            let mut child_state = copy_state(node.resident_state(), options);
            env.restore(&node.cursors);
            let before = env.outstanding();
            stats.transitions_executed += 1;
            let fire_t0 = tel.timer();
            env.begin_fire();
            let fired = match guard("fire", || machine.fire(&mut child_state, &f, &mut env)) {
                Ok(FireOutcome::Completed) => env.end_fire(),
                Ok(FireOutcome::OutputRejected) => false,
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    tel.on_error_branch(node.path.len(), e.kind);
                    record_error(&mut spec_errors, &mut stats, e);
                    false
                }
            };
            if tel.hot() {
                let observable = if tel.events_on() {
                    machine.transition_observable(f.trans)
                } else {
                    None
                };
                tel.on_fire(
                    node.path.len(),
                    f.trans,
                    machine.transition_name(f.trans),
                    observable,
                    fired,
                    fire_t0,
                );
            }
            if !fired && env.last_reject == Some(RejectReason::MayGrow) {
                // The failure was "output not in the trace *yet*": park it
                // as blocked and retry once data arrives.
                node.tried.remove(&f.trans);
                node.blocked.insert(f.trans);
            }

            let has_more = untried.len() > 1 || is_pg || !node.blocked.is_empty();
            if fired {
                let child_barren = if env.outstanding() < before {
                    0
                } else {
                    node.barren + 1
                };
                let mut child_path = node.path.clone();
                child_path.push(machine.transition_name(f.trans).to_string());
                if has_more {
                    stats.snapshot_bytes += node.charged();
                    work.push(node);
                }
                if child_barren > options.limits.max_barren_steps {
                    stats.barren_prunes += 1;
                    tel.on_prune(child_path.len(), PruneKind::Barren);
                } else {
                    stats.saves += 1;
                    let child = Node::new(child_state, env.save(), child_barren, child_path);
                    stats.snapshot_bytes += child.charged();
                    stats.peak_snapshot_bytes =
                        stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
                    if tel.hot() {
                        tel.on_save(child.path.len(), child.charged(), false, stats.snapshot_bytes);
                    }
                    work.push(child);
                }
            } else if has_more {
                stats.snapshot_bytes += node.charged();
                work.push(node);
            }
        }

        // The tree (as currently known) is exhausted.
        if env.eof {
            if pg_list.is_empty() {
                return Ok(finish(
                    Verdict::Invalid,
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    slept,
                    cap,
                    spill_faults,
                    tel,
                ));
            }
            // EOF makes PG-nodes fully generated: process them once more.
            revive(&mut work, &mut pg_list, options.mdfs_reorder);
            continue;
        }
        if pg_list.is_empty() {
            // No PG-node can be revived by future input: conclusively
            // invalid even though the trace may keep growing (§3.1.2).
            return Ok(finish(
                Verdict::Invalid,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                slept,
                cap,
                spill_faults,
                tel,
            ));
        }

        // Interim verdict: PGAV ⇒ valid so far, else likely invalid.
        let any_av = pg_list.iter().any(|n| {
            env.restore(&n.cursors);
            env.all_done()
        });
        let status = if any_av {
            Verdict::ValidSoFar
        } else {
            Verdict::LikelyInvalid
        };
        if last_status.as_ref() != Some(&status) {
            tel.on_interim_verdict(&status);
            last_status = Some(status.clone());
        }
        if !on_status(&status) {
            return Ok(finish(
                status,
                None,
                stats,
                spec_errors,
                &*source,
                t0,
                slept,
                cap,
                spill_faults,
                tel,
            ));
        }

        // Block until the source has more to say — but never past the
        // deadline: a stalled source must not wedge the monitor. Polls
        // back off on the shared [`RetryPolicy::mdfs_poll`] schedule
        // (1ms doubling to 16ms) while the source stays silent; entering
        // this loop anew (i.e. after data arrived) starts over at the
        // minimum interval.
        let mut idle = Backoff::new(RetryPolicy::mdfs_poll());
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(finish(
                    Verdict::Inconclusive(InconclusiveReason::TimeLimit),
                    None,
                    stats,
                    spec_errors,
                    &*source,
                    t0,
                    slept,
                    cap,
                    spill_faults,
                    tel,
                ));
            }
            let p = source.poll();
            if !p.events.is_empty() || p.eof {
                for e in &p.events {
                    env.trace.push_event(e, module).map_err(TangoError::TraceResolve)?;
                }
                if p.eof {
                    env.eof = true;
                }
                revive(&mut work, &mut pg_list, options.mdfs_reorder);
                break;
            }
            // Never sleep past the deadline — the expiry check above
            // stays exact to within scheduler latency.
            let idle_sleep = idle.next_delay();
            let sleep = match deadline {
                Some(d) => idle_sleep.min(d.saturating_duration_since(Instant::now())),
                None => idle_sleep,
            };
            std::thread::sleep(sleep);
            slept += sleep;
        }
    }
}
