//! Stop/resume checkpoints for static-mode analysis.
//!
//! When a static DFS stops on a resource limit (transition count, depth,
//! wall-clock deadline or snapshot-memory budget), the report carries a
//! [`Checkpoint`]: the frozen search state plus the resolved trace and the
//! counters accumulated so far. [`crate::TraceAnalyzer::analyze_resume`]
//! continues the search exactly where it stopped — no work is repeated,
//! and the final TE/GE/RE/SA totals across stop + resume equal those of an
//! uninterrupted run, so figures assembled from budgeted batch runs stay
//! comparable with the paper's tables.

use crate::search::dfs::DfsCheckpoint;
use crate::stats::SearchStats;
use crate::trace::ResolvedTrace;

/// A resumable, stopped static analysis. Opaque except for the progress
/// accessors; produce with a limited [`crate::TraceAnalyzer::analyze`]
/// (or `analyze_resume`) call, consume with
/// [`crate::TraceAnalyzer::analyze_resume`].
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub(crate) dfs: DfsCheckpoint,
    pub(crate) trace: ResolvedTrace,
    pub(crate) stats: SearchStats,
}

impl Checkpoint {
    /// Depth of the search path at the stop point.
    pub fn depth(&self) -> usize {
        self.dfs.depth()
    }

    /// Saved backtracking frames awaiting exploration.
    pub fn pending_frames(&self) -> usize {
        self.dfs.pending_frames()
    }

    /// Checkable events in the trace under analysis.
    pub fn events_total(&self) -> usize {
        self.dfs.events_total()
    }

    /// Counters accumulated up to the stop; resuming continues them.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }
}
