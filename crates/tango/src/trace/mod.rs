//! The trace model.
//!
//! A trace is the observable behaviour of an implementation under test: a
//! global sequence of interactions crossing its interaction points, each
//! either an **input** (arriving at the IUT) or an **output** (sent by the
//! IUT). Within one (IP, direction) stream the order is authoritative
//! (§2.4.2: "if two interactions going in the same direction through the
//! same IP appear in the trace file, the order in which they appear is
//! observed and checked"); ordering *across* streams is checked or ignored
//! according to the relative-order options.

pub mod format;
pub mod source;

use estelle_frontend::sema::model::AnalyzedModule;
use estelle_runtime::Value;
use std::fmt;

/// Direction of a traced interaction, from the IUT's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Consumed by the IUT.
    In,
    /// Produced by the IUT.
    Out,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::In => "in",
            Dir::Out => "out",
        })
    }
}

/// One traced interaction, in textual (unresolved) form.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub dir: Dir,
    pub ip: String,
    pub interaction: String,
    pub params: Vec<Value>,
}

impl Event {
    pub fn input(ip: &str, interaction: &str, params: Vec<Value>) -> Self {
        Event {
            dir: Dir::In,
            ip: ip.to_string(),
            interaction: interaction.to_string(),
            params,
        }
    }

    pub fn output(ip: &str, interaction: &str, params: Vec<Value>) -> Self {
        Event {
            dir: Dir::Out,
            ip: ip.to_string(),
            interaction: interaction.to_string(),
            params,
        }
    }

    /// Check that this event resolves against the module's channel
    /// definitions (the IP exists, the interaction is legal in this
    /// direction, the parameter count matches) without appending it to a
    /// [`ResolvedTrace`]. Dynamic sources use this to turn syntactically
    /// well-formed but unresolvable lines — a mangled feed can produce
    /// both kinds — into skipped-line diagnostics instead of aborting the
    /// whole on-line analysis.
    pub fn check_against(&self, module: &AnalyzedModule) -> Result<(), String> {
        let ip_id = module
            .lookup_ip(&self.ip)
            .ok_or_else(|| format!("unknown interaction point `{}`", self.ip))?;
        let info = module.ip(ip_id);
        let key = self.interaction.to_ascii_lowercase();
        let sig = match self.dir {
            Dir::In => info.input_index(&key).map(|i| &info.inputs[i]).ok_or_else(|| {
                format!(
                    "`{}` cannot arrive at `{}` according to the channel definition",
                    self.interaction, self.ip
                )
            })?,
            Dir::Out => info.output_index(&key).map(|i| &info.outputs[i]).ok_or_else(|| {
                format!(
                    "`{}` cannot be sent at `{}` according to the channel definition",
                    self.interaction, self.ip
                )
            })?,
        };
        if sig.params.len() != self.params.len() {
            return Err(format!(
                "`{}` carries {} parameter(s), trace has {}",
                self.interaction,
                sig.params.len(),
                self.params.len()
            ));
        }
        Ok(())
    }
}

/// A complete (static) trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    pub events: Vec<Event>,
}

impl Trace {
    pub fn new(events: Vec<Event>) -> Self {
        Trace { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A traced interaction resolved against the specification: IP id and the
/// interaction's index within that IP's input or output signature list.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedEvent {
    pub dir: Dir,
    pub ip: usize,
    pub interaction: usize,
    pub params: Vec<Value>,
    /// Position in the original trace (for diagnostics).
    pub index: usize,
}

/// A trace with every event resolved, plus per-(IP, direction) streams.
///
/// Streams are lists of global event indices, so relative-order predicates
/// reduce to integer comparisons on trace positions.
#[derive(Clone, Debug, Default)]
pub struct ResolvedTrace {
    pub events: Vec<ResolvedEvent>,
    /// Per IP: global indices of its input events, in trace order.
    pub inputs: Vec<Vec<usize>>,
    /// Per IP: global indices of its output events, in trace order.
    pub outputs: Vec<Vec<usize>>,
}

/// Errors from resolving a textual trace against a module.
#[derive(Debug, Clone)]
pub struct TraceResolveError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TraceResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace event {}: {}", self.line + 1, self.message)
    }
}

impl std::error::Error for TraceResolveError {}

impl ResolvedTrace {
    /// A resolved trace with streams for `ip_count` IPs and no events.
    pub fn empty(ip_count: usize) -> Self {
        ResolvedTrace {
            events: Vec::new(),
            inputs: vec![Vec::new(); ip_count],
            outputs: vec![Vec::new(); ip_count],
        }
    }

    /// Resolve a textual trace against the module's IP/interaction tables.
    pub fn resolve(trace: &Trace, module: &AnalyzedModule) -> Result<Self, TraceResolveError> {
        let mut out = ResolvedTrace::empty(module.ips.len());
        for e in &trace.events {
            out.push_event(e, module)?;
        }
        Ok(out)
    }

    /// Append one more event (dynamic mode: the trace grows during
    /// analysis).
    pub fn push_event(
        &mut self,
        e: &Event,
        module: &AnalyzedModule,
    ) -> Result<(), TraceResolveError> {
        let index = self.events.len();
        let err = |message: String| TraceResolveError {
            line: index,
            message,
        };
        let ip_id = module
            .lookup_ip(&e.ip)
            .ok_or_else(|| err(format!("unknown interaction point `{}`", e.ip)))?;
        let info = module.ip(ip_id);
        let key = e.interaction.to_ascii_lowercase();
        let (interaction, sig) = match e.dir {
            Dir::In => info
                .input_index(&key)
                .map(|i| (i, &info.inputs[i]))
                .ok_or_else(|| {
                    err(format!(
                        "`{}` cannot arrive at `{}` according to the channel definition",
                        e.interaction, e.ip
                    ))
                })?,
            Dir::Out => info
                .output_index(&key)
                .map(|i| (i, &info.outputs[i]))
                .ok_or_else(|| {
                    err(format!(
                        "`{}` cannot be sent at `{}` according to the channel definition",
                        e.interaction, e.ip
                    ))
                })?,
        };
        if sig.params.len() != e.params.len() {
            return Err(err(format!(
                "`{}` carries {} parameter(s), trace has {}",
                e.interaction,
                sig.params.len(),
                e.params.len()
            )));
        }
        let ip = ip_id.0 as usize;
        match e.dir {
            Dir::In => self.inputs[ip].push(index),
            Dir::Out => self.outputs[ip].push(index),
        }
        self.events.push(ResolvedEvent {
            dir: e.dir,
            ip,
            interaction,
            params: e.params.clone(),
            index,
        });
        Ok(())
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_frontend::analyze;

    fn module() -> AnalyzedModule {
        analyze(
            r#"
            specification s;
            channel CU(user, m); by user: req(n : integer); by m: conf; end;
            channel CL(net, m); by net: pkt(n : integer); by m: send(n : integer); end;
            module M process;
                ip U : CU(m);
                ip L : CL(m);
            end;
            body MB for M;
                state S;
                initialize to S begin end;
            end;
            end.
            "#,
        )
        .expect("analyzes")
    }

    #[test]
    fn resolve_builds_streams() {
        let m = module();
        let t = Trace::new(vec![
            Event::input("U", "req", vec![Value::Int(1)]),
            Event::output("L", "send", vec![Value::Int(1)]),
            Event::input("L", "pkt", vec![Value::Int(2)]),
            Event::output("U", "conf", vec![]),
        ]);
        let r = ResolvedTrace::resolve(&t, &m).expect("resolves");
        assert_eq!(r.inputs[0], vec![0]); // U inputs
        assert_eq!(r.outputs[1], vec![1]); // L outputs
        assert_eq!(r.inputs[1], vec![2]); // L inputs
        assert_eq!(r.outputs[0], vec![3]); // U outputs
    }

    #[test]
    fn wrong_direction_rejected() {
        let m = module();
        // `conf` is sent by the module, it cannot be an input.
        let t = Trace::new(vec![Event::input("U", "conf", vec![])]);
        let e = ResolvedTrace::resolve(&t, &m).unwrap_err();
        assert!(e.message.contains("cannot arrive"));
    }

    #[test]
    fn unknown_ip_rejected() {
        let m = module();
        let t = Trace::new(vec![Event::input("X", "req", vec![])]);
        assert!(ResolvedTrace::resolve(&t, &m).is_err());
    }

    #[test]
    fn parameter_arity_checked() {
        let m = module();
        let t = Trace::new(vec![Event::input("U", "req", vec![])]);
        let e = ResolvedTrace::resolve(&t, &m).unwrap_err();
        assert!(e.message.contains("parameter"));
    }

    #[test]
    fn case_insensitive_resolution() {
        let m = module();
        let t = Trace::new(vec![Event::input("u", "REQ", vec![Value::Int(1)])]);
        assert!(ResolvedTrace::resolve(&t, &m).is_ok());
    }
}
