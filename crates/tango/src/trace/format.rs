//! The textual trace-file format.
//!
//! One event per line, matching what the 1995 tool read from its trace
//! files in spirit:
//!
//! ```text
//! # LAPD trace, run 3                 -- comments and blank lines ignored
//! in  U.dl_data(7)
//! out L.i_frame(0, 0, 7)
//! in  L.rr(1)
//! out U.dl_data_ind(true)
//! eof                                 -- dynamic-mode end marker (§3.1.2)
//! ```
//!
//! Parameter literals: integers, `true`/`false`, `nil`, `?` (undefined —
//! partial traces), and enum literal names, which are resolved against the
//! specification when the trace is bound to a module.

use super::{Dir, Event, Trace};
use estelle_frontend::sema::model::AnalyzedModule;
use estelle_runtime::Value;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone)]
pub struct TraceParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Result of parsing one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    Event(Event),
    /// The explicit end-of-trace marker used to force a verdict in
    /// dynamic mode.
    Eof,
    /// Comment or blank.
    Blank,
}

/// Parse a whole trace file; an `eof` marker, if present, must be last.
/// `module` supplies enum literals for symbolic parameters; pass `None`
/// to accept only self-describing literals.
pub fn parse_trace(text: &str, module: Option<&AnalyzedModule>) -> Result<Trace, TraceParseError> {
    let mut events = Vec::new();
    let mut saw_eof = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        match parse_line(raw, module).map_err(|message| TraceParseError {
            line: lineno,
            message,
        })? {
            Line::Blank => {}
            Line::Eof => {
                saw_eof = true;
            }
            Line::Event(e) => {
                if saw_eof {
                    return Err(TraceParseError {
                        line: lineno,
                        message: "event after the `eof` marker".to_string(),
                    });
                }
                events.push(e);
            }
        }
    }
    Ok(Trace::new(events))
}

/// Parse a single line of the trace format.
pub fn parse_line(raw: &str, module: Option<&AnalyzedModule>) -> Result<Line, String> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Line::Blank);
    }
    if line.eq_ignore_ascii_case("eof") {
        return Ok(Line::Eof);
    }
    let (dir, rest) = if let Some(rest) = strip_word(line, "in") {
        (Dir::In, rest)
    } else if let Some(rest) = strip_word(line, "out") {
        (Dir::Out, rest)
    } else {
        return Err(format!("expected `in`, `out`, `eof` or a comment, found `{}`", line));
    };

    let rest = rest.trim();
    // `IP.interaction` then optional `(p1, p2, ...)`.
    let (head, params_text) = match rest.find('(') {
        None => (rest, None),
        Some(p) => {
            let (h, t) = rest.split_at(p);
            let t = t.trim();
            if !t.ends_with(')') {
                return Err("missing `)`".to_string());
            }
            (h.trim(), Some(&t[1..t.len() - 1]))
        }
    };
    let mut parts = head.splitn(2, '.');
    let ip = parts.next().unwrap_or("").trim();
    let interaction = parts.next().unwrap_or("").trim();
    if ip.is_empty() || interaction.is_empty() {
        return Err(format!("expected `IP.interaction`, found `{}`", head));
    }
    if !is_ident(ip) || !is_ident(interaction) {
        return Err(format!("bad identifier in `{}`", head));
    }

    let mut params = Vec::new();
    if let Some(text) = params_text {
        let text = text.trim();
        if !text.is_empty() {
            for piece in text.split(',') {
                params.push(parse_value(piece.trim(), module)?);
            }
        }
    }

    Ok(Line::Event(Event {
        dir,
        ip: ip.to_string(),
        interaction: interaction.to_string(),
        params,
    }))
}

fn strip_word<'a>(line: &'a str, word: &str) -> Option<&'a str> {
    let head = line.get(..word.len())?;
    if !head.eq_ignore_ascii_case(word) {
        return None;
    }
    let rest = &line[word.len()..];
    if rest.starts_with(|c: char| c.is_whitespace()) {
        Some(rest)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse one parameter literal.
pub fn parse_value(text: &str, module: Option<&AnalyzedModule>) -> Result<Value, String> {
    match text {
        "?" => return Ok(Value::Undefined),
        "nil" => return Ok(Value::Pointer(None)),
        _ => {}
    }
    if text.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if text.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if is_ident(text) {
        if let Some(m) = module {
            if let Some(&(ty, ord)) = m.enum_literals.get(&text.to_ascii_lowercase()) {
                return Ok(Value::Enum(ty, ord));
            }
        }
        return Err(format!("unknown enum literal `{}`", text));
    }
    Err(format!("cannot parse parameter `{}`", text))
}

/// Render one event in the format [`parse_line`] accepts.
pub fn render_event(e: &Event, module: Option<&AnalyzedModule>) -> String {
    let mut s = format!("{} {}.{}", e.dir, e.ip, e.interaction);
    if !e.params.is_empty() {
        let params: Vec<String> = e.params.iter().map(|v| render_value(v, module)).collect();
        s.push('(');
        s.push_str(&params.join(", "));
        s.push(')');
    }
    s
}

/// Render a parameter value; enum ordinals print as their literal names
/// when the module is supplied.
pub fn render_value(v: &Value, module: Option<&AnalyzedModule>) -> String {
    match v {
        Value::Enum(ty, ord) => {
            if let Some(m) = module {
                if let estelle_frontend::sema::types::Type::Enum { literals } = m.types.get(*ty) {
                    if let Some(name) = literals.get(*ord as usize) {
                        return name.clone();
                    }
                }
            }
            format!("#{}", ord)
        }
        other => other.describe(),
    }
}

/// Render a whole trace, one event per line, with a trailing `eof` marker
/// when `closed` is set.
pub fn render_trace(trace: &Trace, module: Option<&AnalyzedModule>, closed: bool) -> String {
    let mut out = String::new();
    for e in &trace.events {
        out.push_str(&render_event(e, module));
        out.push('\n');
    }
    if closed {
        out.push_str("eof\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_events() {
        let t = parse_trace("in A.x\nout B.ack\n", None).expect("parses");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events[0], Event::input("A", "x", vec![]));
        assert_eq!(t.events[1], Event::output("B", "ack", vec![]));
    }

    #[test]
    fn parse_params_and_comments() {
        let text = "# header\n\nin U.req(3, true, ?)\nout L.send(-1)\n";
        let t = parse_trace(text, None).unwrap();
        assert_eq!(
            t.events[0].params,
            vec![Value::Int(3), Value::Bool(true), Value::Undefined]
        );
        assert_eq!(t.events[1].params, vec![Value::Int(-1)]);
    }

    #[test]
    fn eof_must_be_last() {
        assert!(parse_trace("in A.x\neof\n", None).is_ok());
        let err = parse_trace("eof\nin A.x\n", None).unwrap_err();
        assert!(err.message.contains("after the `eof`"));
    }

    #[test]
    fn bad_lines_error_with_position() {
        let err = parse_trace("in A.x\nbogus line\n", None).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_trace("in A.x(", None).is_err());
        assert!(parse_trace("in .x", None).is_err());
        assert!(parse_trace("in A.x(1 2)", None).is_err());
    }

    #[test]
    fn round_trip() {
        let t = parse_trace("in A.x(1, false)\nout B.y\n", None).unwrap();
        let rendered = render_trace(&t, None, true);
        assert_eq!(rendered, "in A.x(1, false)\nout B.y\neof\n");
        let back = parse_trace(&rendered, None).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn direction_prefix_requires_word_boundary() {
        // "input" is not "in put".
        assert!(parse_trace("input A.x\n", None).is_err());
    }
}
