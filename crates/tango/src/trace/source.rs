//! Dynamic trace sources for on-line analysis.
//!
//! In dynamic mode (§3) the trace file grows while the analyzer runs: "at
//! any time, another process independent of Tango can append data to a
//! dynamic trace file, which the TAM must check periodically for more data
//! to read". A [`TraceSource`] is that periodic check. Three
//! implementations cover the paper's use cases:
//!
//! * [`StaticSource`] — a complete trace, immediately at end-of-file;
//! * [`ChannelSource`] — events pushed from another thread over a
//!   `crossbeam` channel (interfacing a live IUT monitor);
//! * [`FollowFileSource`] — a trace file on disk that another process
//!   appends to, polled for new lines.

use super::format::{parse_line, Line};
use super::{Event, Trace};
use crossbeam_channel::{Receiver, TryRecvError};
use estelle_frontend::sema::model::AnalyzedModule;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::PathBuf;

/// What one poll of a dynamic source produced.
#[derive(Debug, Default, Clone)]
pub struct Poll {
    /// Events appended since the previous poll.
    pub events: Vec<Event>,
    /// True once the source has signalled there will be no more data — the
    /// paper's "end-of-file" marker that forces a conclusive verdict.
    pub eof: bool,
}

/// A possibly growing supply of trace events.
pub trait TraceSource {
    /// Collect any newly available events. Non-blocking.
    fn poll(&mut self) -> Poll;
}

/// A static trace presented through the dynamic interface: everything on
/// the first poll, then eof.
#[derive(Debug)]
pub struct StaticSource {
    trace: Option<Trace>,
}

impl StaticSource {
    pub fn new(trace: Trace) -> Self {
        StaticSource { trace: Some(trace) }
    }
}

impl TraceSource for StaticSource {
    fn poll(&mut self) -> Poll {
        Poll {
            events: self.trace.take().map(|t| t.events).unwrap_or_default(),
            eof: true,
        }
    }
}

/// Messages a live feeder can push to a [`ChannelSource`].
#[derive(Debug, Clone)]
pub enum Feed {
    Event(Event),
    /// No more events will ever arrive.
    Eof,
}

/// Events pushed from another thread.
pub struct ChannelSource {
    rx: Receiver<Feed>,
    eof: bool,
}

impl ChannelSource {
    pub fn new(rx: Receiver<Feed>) -> Self {
        ChannelSource { rx, eof: false }
    }

    /// A connected (feeder, source) pair: push [`Feed`] messages from any
    /// thread, analyze on this one.
    pub fn pair() -> (crossbeam_channel::Sender<Feed>, ChannelSource) {
        let (tx, rx) = crossbeam_channel::unbounded();
        (tx, ChannelSource::new(rx))
    }
}

impl TraceSource for ChannelSource {
    fn poll(&mut self) -> Poll {
        let mut out = Poll {
            events: Vec::new(),
            eof: self.eof,
        };
        loop {
            match self.rx.try_recv() {
                Ok(Feed::Event(e)) => out.events.push(e),
                Ok(Feed::Eof) | Err(TryRecvError::Disconnected) => {
                    self.eof = true;
                    out.eof = true;
                    return out;
                }
                Err(TryRecvError::Empty) => return out,
            }
        }
    }
}

/// Follows a trace file that another process appends to. Partial trailing
/// lines (a writer mid-append) are left in the file until complete.
pub struct FollowFileSource {
    path: PathBuf,
    offset: u64,
    module: Option<AnalyzedModule>,
    eof: bool,
    /// Parse errors encountered while following (bad lines are skipped so
    /// one glitch does not wedge the monitor, but they are recorded).
    pub errors: Vec<String>,
}

impl FollowFileSource {
    pub fn new(path: impl Into<PathBuf>, module: Option<AnalyzedModule>) -> Self {
        FollowFileSource {
            path: path.into(),
            offset: 0,
            module,
            eof: false,
            errors: Vec::new(),
        }
    }
}

impl TraceSource for FollowFileSource {
    fn poll(&mut self) -> Poll {
        let mut out = Poll {
            events: Vec::new(),
            eof: self.eof,
        };
        if self.eof {
            return out;
        }
        let Ok(mut f) = File::open(&self.path) else {
            return out; // not created yet — keep polling
        };
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return out;
        }
        let mut reader = BufReader::new(f);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(n) => {
                    if !line.ends_with('\n') {
                        // Incomplete trailing line: re-read next poll.
                        break;
                    }
                    self.offset += n as u64;
                    match parse_line(&line, self.module.as_ref()) {
                        Ok(Line::Blank) => {}
                        Ok(Line::Eof) => {
                            self.eof = true;
                            out.eof = true;
                            break;
                        }
                        Ok(Line::Event(e)) => out.events.push(e),
                        Err(msg) => self.errors.push(msg),
                    }
                }
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Dir;
    use std::io::Write;

    #[test]
    fn static_source_drains_once() {
        let t = Trace::new(vec![Event::input("A", "x", vec![])]);
        let mut s = StaticSource::new(t);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert!(p.eof);
        let p2 = s.poll();
        assert!(p2.events.is_empty());
        assert!(p2.eof);
    }

    #[test]
    fn channel_source_streams_until_eof() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut s = ChannelSource::new(rx);
        assert!(s.poll().events.is_empty());
        tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
        tx.send(Feed::Event(Event::output("A", "y", vec![]))).unwrap();
        let p = s.poll();
        assert_eq!(p.events.len(), 2);
        assert!(!p.eof);
        tx.send(Feed::Eof).unwrap();
        assert!(s.poll().eof);
    }

    #[test]
    fn dropped_sender_counts_as_eof() {
        let (tx, rx) = crossbeam_channel::unbounded::<Feed>();
        let mut s = ChannelSource::new(rx);
        drop(tx);
        assert!(s.poll().eof);
    }

    #[test]
    fn follow_file_reads_appends_and_skips_partial_lines() {
        let dir = std::env::temp_dir().join(format!("tango-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.trace");
        std::fs::write(&path, "in A.x\n").unwrap();

        let mut s = FollowFileSource::new(&path, None);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].dir, Dir::In);

        // Append one full line and one partial line.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "out A.y\nin A").unwrap();
        drop(f);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].interaction, "y");

        // Complete the partial line and close the trace.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, ".x\neof").unwrap();
        drop(f);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert!(p.eof);

        std::fs::remove_dir_all(&dir).ok();
    }
}
