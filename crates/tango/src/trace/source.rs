//! Dynamic trace sources for on-line analysis.
//!
//! In dynamic mode (§3) the trace file grows while the analyzer runs: "at
//! any time, another process independent of Tango can append data to a
//! dynamic trace file, which the TAM must check periodically for more data
//! to read". A [`TraceSource`] is that periodic check. Implementations
//! cover the paper's use cases plus fault-tolerant operation:
//!
//! * [`StaticSource`] — a complete trace, immediately at end-of-file;
//! * [`ChannelSource`] — events pushed from another thread over a
//!   standard-library channel (interfacing a live IUT monitor); a feeder
//!   that dies without sending `eof` is reported as a diagnostic rather
//!   than hanging the monitor;
//! * [`FollowFileSource`] — a trace file on disk that another process
//!   appends to, polled for new lines, with truncation/rotation detection
//!   ([`RecoveryPolicy`]), exponential polling backoff, and a bounded
//!   parse-error buffer;
//! * [`FaultySource`] — a fault-injection wrapper for testing: corrupts
//!   lines, stalls, duplicates events and truncates lines mid-way
//!   according to a deterministic [`SourceFaultPlan`] (usually armed
//!   through the unified [`crate::fault::FaultPlan`]).

use super::format::{parse_line, Line};
use super::{Event, Trace};
use crate::fault::{Backoff, RetryPolicy};
use estelle_frontend::sema::model::AnalyzedModule;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Instant;

/// What one poll of a dynamic source produced.
#[derive(Debug, Default, Clone)]
pub struct Poll {
    /// Events appended since the previous poll.
    pub events: Vec<Event>,
    /// True once the source has signalled there will be no more data — the
    /// paper's "end-of-file" marker that forces a conclusive verdict.
    pub eof: bool,
}

/// A possibly growing supply of trace events.
pub trait TraceSource {
    /// Collect any newly available events. Non-blocking.
    fn poll(&mut self) -> Poll;

    /// Faults observed while feeding (parse errors, truncation, a dead
    /// feeder, …). Collected into [`crate::AnalysisReport::source_faults`]
    /// when the analysis ends so operators see *why* a feed degraded
    /// instead of losing the information with the source.
    fn diagnostics(&self) -> Vec<String> {
        Vec::new()
    }

    /// Faults this source absorbed losslessly by retrying (injected read
    /// errors under [`RecoveryPolicy::Restart`], rotations re-read from
    /// the start). Flows into `SearchStats::source_retries` and the
    /// `fault.source.retries` metric.
    fn fault_retries(&self) -> u64 {
        0
    }

    /// Faults this source gave up on — the feed degraded (early eof,
    /// partial data) instead of recovering. Flows into
    /// `SearchStats::source_giveups` and the `fault.source.giveups`
    /// metric.
    fn fault_giveups(&self) -> u64 {
        0
    }
}

/// A static trace presented through the dynamic interface: everything on
/// the first poll, then eof.
#[derive(Debug)]
pub struct StaticSource {
    trace: Option<Trace>,
}

impl StaticSource {
    pub fn new(trace: Trace) -> Self {
        StaticSource { trace: Some(trace) }
    }
}

impl TraceSource for StaticSource {
    fn poll(&mut self) -> Poll {
        Poll {
            events: self.trace.take().map(|t| t.events).unwrap_or_default(),
            eof: true,
        }
    }
}

/// Messages a live feeder can push to a [`ChannelSource`].
#[derive(Debug, Clone)]
pub enum Feed {
    Event(Event),
    /// No more events will ever arrive.
    Eof,
}

/// Events pushed from another thread.
pub struct ChannelSource {
    rx: Receiver<Feed>,
    eof: bool,
    /// The feeder hung up without an explicit [`Feed::Eof`] — most likely
    /// it crashed. Treated as end-of-trace so the analysis terminates, but
    /// surfaced as a diagnostic since the trace may be incomplete.
    disconnected: bool,
}

impl ChannelSource {
    pub fn new(rx: Receiver<Feed>) -> Self {
        ChannelSource {
            rx,
            eof: false,
            disconnected: false,
        }
    }

    /// A connected (feeder, source) pair: push [`Feed`] messages from any
    /// thread, analyze on this one.
    pub fn pair() -> (Sender<Feed>, ChannelSource) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, ChannelSource::new(rx))
    }

    /// True when the feeder died without a clean `eof`.
    pub fn feeder_died(&self) -> bool {
        self.disconnected
    }
}

impl TraceSource for ChannelSource {
    fn poll(&mut self) -> Poll {
        let mut out = Poll {
            events: Vec::new(),
            eof: self.eof,
        };
        loop {
            match self.rx.try_recv() {
                Ok(Feed::Event(e)) => out.events.push(e),
                Ok(Feed::Eof) => {
                    self.eof = true;
                    out.eof = true;
                    return out;
                }
                Err(TryRecvError::Disconnected) => {
                    // A dead feeder must read as EOF-with-diagnostic, not
                    // as a silent hang waiting for data that cannot come.
                    if !self.eof {
                        self.disconnected = true;
                    }
                    self.eof = true;
                    out.eof = true;
                    return out;
                }
                Err(TryRecvError::Empty) => return out,
            }
        }
    }

    fn diagnostics(&self) -> Vec<String> {
        if self.disconnected {
            vec![
                "feeder channel disconnected without an eof marker; \
                 the trace may be incomplete"
                    .to_string(),
            ]
        } else {
            Vec::new()
        }
    }
}

/// What a [`FollowFileSource`] does when the file it follows shrinks below
/// the read offset (log rotation or truncation by the writer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Re-read the file from the beginning: the writer rotated the log and
    /// started a fresh trace. The analysis sees the new content appended
    /// after the old (the search itself is not reset), which is right when
    /// rotation only ever happens at trace boundaries.
    Restart,
    /// Treat the truncation as end-of-trace with a diagnostic. The safe
    /// default: a shrinking trace file usually means the observation is no
    /// longer trustworthy.
    #[default]
    Fail,
}

/// Cap on buffered per-line diagnostics in follow/faulty sources. The
/// first `MAX_SOURCE_ERRORS` are kept verbatim; the rest only counted, so
/// a corrupt feed cannot grow memory without bound.
const MAX_SOURCE_ERRORS: usize = 64;

/// Bounded error buffer shared by the file-backed sources.
#[derive(Debug, Default)]
struct ErrorBuf {
    kept: Vec<String>,
    dropped: u64,
}

impl ErrorBuf {
    fn push(&mut self, msg: String) {
        if self.kept.len() < MAX_SOURCE_ERRORS {
            self.kept.push(msg);
        } else {
            self.dropped += 1;
        }
    }

    fn total(&self) -> u64 {
        self.kept.len() as u64 + self.dropped
    }

    fn render(&self) -> Vec<String> {
        let mut out = self.kept.clone();
        if self.dropped > 0 {
            out.push(format!(
                "... and {} further error(s) dropped (buffer capped at {})",
                self.dropped, MAX_SOURCE_ERRORS
            ));
        }
        out
    }
}

/// Follows a trace file that another process appends to. Partial trailing
/// lines (a writer mid-append) are left in the file until complete.
///
/// Fault tolerance:
/// * file truncation/rotation (length below the saved offset) is detected
///   from metadata and handled per [`RecoveryPolicy`];
/// * consecutive empty polls back off exponentially (1ms → 100ms) so an
///   idle monitor does not spin on the filesystem;
/// * parse errors are skipped (one glitch must not wedge the monitor) and
///   recorded in a bounded buffer with a dropped-count.
pub struct FollowFileSource {
    path: PathBuf,
    offset: u64,
    module: Option<AnalyzedModule>,
    eof: bool,
    recovery: RecoveryPolicy,
    errors: ErrorBuf,
    /// Times the file was observed truncated/rotated.
    rotations: u64,
    /// Idle-poll backoff on the shared [`RetryPolicy::source_poll`]
    /// schedule (1ms doubling to 100ms).
    idle: Backoff,
    /// Skip filesystem work until this instant (backoff in effect).
    next_poll_at: Option<Instant>,
    /// Rotations recovered by re-reading ([`RecoveryPolicy::Restart`]).
    retries: u64,
    /// Rotations that ended the feed ([`RecoveryPolicy::Fail`]).
    giveups: u64,
}

impl FollowFileSource {
    pub fn new(path: impl Into<PathBuf>, module: Option<AnalyzedModule>) -> Self {
        FollowFileSource {
            path: path.into(),
            offset: 0,
            module,
            eof: false,
            recovery: RecoveryPolicy::default(),
            errors: ErrorBuf::default(),
            rotations: 0,
            idle: Backoff::new(RetryPolicy::source_poll()),
            next_poll_at: None,
            retries: 0,
            giveups: 0,
        }
    }

    /// Select what to do when the followed file shrinks (default:
    /// [`RecoveryPolicy::Fail`]).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Parse errors recorded so far (bounded; see [`Self::skipped_lines`]).
    pub fn parse_errors(&self) -> &[String] {
        &self.errors.kept
    }

    /// Total lines skipped because they failed to parse, including ones
    /// whose messages were dropped from the bounded buffer.
    pub fn skipped_lines(&self) -> u64 {
        self.errors.total()
    }

    /// Times the followed file was observed truncated or rotated.
    pub fn rotations_seen(&self) -> u64 {
        self.rotations
    }
}

impl TraceSource for FollowFileSource {
    fn poll(&mut self) -> Poll {
        let mut out = Poll {
            events: Vec::new(),
            eof: self.eof,
        };
        if self.eof {
            return out;
        }
        // Exponential backoff: after empty polls, skip the filesystem for
        // a while instead of hammering it.
        if let Some(t) = self.next_poll_at {
            if Instant::now() < t {
                return out;
            }
        }
        let Ok(mut f) = File::open(&self.path) else {
            self.note_idle();
            return out; // not created yet — keep polling
        };
        // Truncation/rotation detection: a file shorter than our offset
        // cannot be the one we were reading. Seeking there would either
        // read nothing forever or, after the writer catches back up, read
        // from the middle of unrelated content.
        match f.metadata() {
            Ok(md) if md.len() < self.offset => {
                self.rotations += 1;
                match self.recovery {
                    RecoveryPolicy::Restart => {
                        self.errors.push(format!(
                            "file truncated below offset {} (rotation?); \
                             restarting from the beginning",
                            self.offset
                        ));
                        self.offset = 0;
                        self.retries += 1;
                    }
                    RecoveryPolicy::Fail => {
                        self.errors.push(format!(
                            "file truncated below offset {}; treating as \
                             end-of-trace (RecoveryPolicy::Fail)",
                            self.offset
                        ));
                        self.giveups += 1;
                        self.eof = true;
                        out.eof = true;
                        return out;
                    }
                }
            }
            Ok(_) => {}
            Err(_) => {
                self.note_idle();
                return out;
            }
        }
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            self.note_idle();
            return out;
        }
        let mut reader = BufReader::new(f);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(n) => {
                    if !line.ends_with('\n') {
                        // Incomplete trailing line: re-read next poll.
                        break;
                    }
                    self.offset += n as u64;
                    match parse_line(&line, self.module.as_ref()) {
                        Ok(Line::Blank) => {}
                        Ok(Line::Eof) => {
                            self.eof = true;
                            out.eof = true;
                            break;
                        }
                        // An event that parses but does not resolve (an
                        // interaction the channel does not define, wrong
                        // arity) is a glitch like any other: skip it with
                        // a diagnostic rather than wedge the monitor.
                        Ok(Line::Event(e)) => {
                            match self.module.as_ref().map(|m| e.check_against(m)) {
                                None | Some(Ok(())) => out.events.push(e),
                                Some(Err(msg)) => self.errors.push(msg),
                            }
                        }
                        Err(msg) => self.errors.push(msg),
                    }
                }
                Err(_) => break,
            }
        }
        if out.events.is_empty() && !out.eof {
            self.note_idle();
        } else {
            self.idle.reset();
            self.next_poll_at = None;
        }
        out
    }

    fn diagnostics(&self) -> Vec<String> {
        let mut out = self.errors.render();
        if self.errors.total() > 0 {
            out.push(format!(
                "skipped {} unparseable line(s) while following {}",
                self.errors.total(),
                self.path.display()
            ));
        }
        out
    }

    fn fault_retries(&self) -> u64 {
        self.retries
    }

    fn fault_giveups(&self) -> u64 {
        self.giveups
    }
}

impl FollowFileSource {
    fn note_idle(&mut self) {
        self.next_poll_at = Some(Instant::now() + self.idle.next_delay());
    }
}

/// Which fault to inject, and how often, in a [`FaultySource`].
///
/// Every `*_every` field counts in *delivered lines*; `0` disables that
/// fault. The schedule is deterministic, so fault-injection tests are
/// exactly reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceFaultPlan {
    /// Replace every n-th line with unparseable garbage.
    pub corrupt_every: usize,
    /// Deliver every n-th event line twice (a duplicated observation).
    pub duplicate_every: usize,
    /// Cut every n-th line in half, delivering both halves as separate
    /// lines (mid-line truncation by a crashing writer).
    pub truncate_every: usize,
    /// After every n-th line, stall: return `stall_polls` empty polls
    /// before producing anything again.
    pub stall_every: usize,
    /// How many empty polls each stall lasts.
    pub stall_polls: usize,
    /// Fail every n-th *read attempt* with an injected I/O error (counted
    /// in attempts, not delivered lines, so retried reads advance the
    /// schedule). What happens next follows the source's
    /// [`RecoveryPolicy`]: `Restart` retries the read on the next poll,
    /// `Fail` treats the error as end-of-trace with a diagnostic.
    /// `read_error_every: 1` under `Restart` never makes progress.
    pub read_error_every: usize,
    /// Return a short read — only the first half of the line — every n-th
    /// read attempt. Under `Restart` the partial read is discarded and the
    /// whole line retried; under `Fail` the partial data is delivered
    /// as-is (and usually fails to parse), with a diagnostic either way.
    pub short_read_every: usize,
}

/// Pre-unification name of [`SourceFaultPlan`], kept so existing code
/// compiles. New code should arm source faults through
/// [`crate::fault::FaultPlan`].
#[deprecated(note = "renamed to SourceFaultPlan; compose sites via tango::fault::FaultPlan")]
pub type FaultPlan = SourceFaultPlan;

/// A fault-injecting [`TraceSource`] for robustness testing.
///
/// Feeds the lines of a rendered trace one per poll, mangling them per
/// the [`SourceFaultPlan`]: corrupt lines, stalls, duplicated events,
/// mid-line truncation. Lines are parsed exactly the way
/// [`FollowFileSource`] parses a followed file, with the same bounded
/// error buffer, so the whole skip-and-diagnose path is exercised end to
/// end.
pub struct FaultySource {
    lines: VecDeque<String>,
    module: Option<AnalyzedModule>,
    plan: SourceFaultPlan,
    delivered: usize,
    stall_left: usize,
    eof: bool,
    errors: ErrorBuf,
    /// Read-level fault diagnostics, kept apart from `errors` so
    /// [`Self::skipped_lines`] keeps counting only unparseable lines.
    read_faults: ErrorBuf,
    recovery: RecoveryPolicy,
    /// 1-based count of read attempts (polls that reached the backing
    /// store), driving the read-level fault schedule independently of
    /// delivered lines so retried reads advance it.
    read_attempts: usize,
    /// Injected read faults recovered by retrying (Restart).
    retries: u64,
    /// Injected read faults that degraded the feed (Fail).
    giveups: u64,
}

impl FaultySource {
    /// Build from trace text (one event per line, as rendered by
    /// [`crate::render_trace`]). An `eof` line is appended if missing so
    /// the analysis always terminates.
    pub fn new(trace_text: &str, module: Option<AnalyzedModule>, plan: SourceFaultPlan) -> Self {
        let mut lines: VecDeque<String> = trace_text
            .lines()
            .map(|l| l.to_string())
            .collect();
        if !lines.iter().any(|l| l.trim() == "eof") {
            lines.push_back("eof".to_string());
        }
        FaultySource {
            lines,
            module,
            plan,
            delivered: 0,
            stall_left: 0,
            eof: false,
            errors: ErrorBuf::default(),
            read_faults: ErrorBuf::default(),
            recovery: RecoveryPolicy::default(),
            read_attempts: 0,
            retries: 0,
            giveups: 0,
        }
    }

    /// What to do when an injected read-level fault fires (default
    /// [`RecoveryPolicy::Fail`], matching [`FollowFileSource`]).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Total lines skipped as unparseable.
    pub fn skipped_lines(&self) -> u64 {
        self.errors.total()
    }

    fn due(&self, every: usize) -> bool {
        every > 0 && self.delivered % every == every - 1
    }

    fn read_due(&self, every: usize) -> bool {
        every > 0 && self.read_attempts.is_multiple_of(every)
    }

    fn parse_into(&mut self, line: &str, out: &mut Poll) {
        match parse_line(&format!("{}\n", line), self.module.as_ref()) {
            Ok(Line::Blank) => {}
            Ok(Line::Eof) => {
                self.eof = true;
                out.eof = true;
            }
            Ok(Line::Event(e)) => match self.module.as_ref().map(|m| e.check_against(m)) {
                None | Some(Ok(())) => out.events.push(e),
                Some(Err(msg)) => self.errors.push(msg),
            },
            Err(msg) => self.errors.push(msg),
        }
    }
}

impl TraceSource for FaultySource {
    fn poll(&mut self) -> Poll {
        let mut out = Poll {
            events: Vec::new(),
            eof: self.eof,
        };
        if self.eof {
            return out;
        }
        if self.stall_left > 0 {
            self.stall_left -= 1;
            return out;
        }
        let Some(line) = self.lines.pop_front() else {
            self.eof = true;
            out.eof = true;
            return out;
        };
        self.read_attempts += 1;
        // Read-level faults fire before the line-level ones: a read that
        // errors never yields a line to corrupt or duplicate.
        if self.read_due(self.plan.read_error_every) {
            match self.recovery {
                RecoveryPolicy::Restart => {
                    self.read_faults.push(format!(
                        "injected read error at attempt {}; retrying \
                         (RecoveryPolicy::Restart)",
                        self.read_attempts
                    ));
                    self.retries += 1;
                    self.lines.push_front(line);
                    return out;
                }
                RecoveryPolicy::Fail => {
                    self.read_faults.push(format!(
                        "injected read error at attempt {}; treating as \
                         end-of-trace (RecoveryPolicy::Fail)",
                        self.read_attempts
                    ));
                    self.giveups += 1;
                    self.eof = true;
                    out.eof = true;
                    return out;
                }
            }
        }
        if self.read_due(self.plan.short_read_every) && line.len() >= 2 && line.trim() != "eof" {
            let mid = (0..=line.len() / 2)
                .rev()
                .find(|&i| line.is_char_boundary(i))
                .unwrap_or(0);
            match self.recovery {
                RecoveryPolicy::Restart => {
                    self.read_faults.push(format!(
                        "injected short read at attempt {} ({} of {} bytes); \
                         retrying (RecoveryPolicy::Restart)",
                        self.read_attempts,
                        mid,
                        line.len()
                    ));
                    self.retries += 1;
                    self.lines.push_front(line);
                    return out;
                }
                RecoveryPolicy::Fail => {
                    self.read_faults.push(format!(
                        "injected short read at attempt {} ({} of {} bytes); \
                         delivering partial data (RecoveryPolicy::Fail)",
                        self.read_attempts,
                        mid,
                        line.len()
                    ));
                    self.giveups += 1;
                    self.parse_into(&line[..mid], &mut out);
                    self.delivered += 1;
                    if self.due(self.plan.stall_every) {
                        self.stall_left = self.plan.stall_polls;
                    }
                    return out;
                }
            }
        }
        if self.due(self.plan.corrupt_every) {
            self.parse_into("§§ corrupted line %%%", &mut out);
        } else if self.due(self.plan.truncate_every) && line.len() >= 2 && line.trim() != "eof" {
            let mid = line.len() / 2;
            let mid = (0..=mid)
                .rev()
                .find(|&i| line.is_char_boundary(i))
                .unwrap_or(0);
            let (a, b) = line.split_at(mid);
            self.parse_into(a, &mut out);
            self.parse_into(b, &mut out);
        } else if self.due(self.plan.duplicate_every) && line.trim() != "eof" {
            self.parse_into(&line, &mut out);
            self.parse_into(&line, &mut out);
        } else {
            self.parse_into(&line, &mut out);
        }
        self.delivered += 1;
        if self.due(self.plan.stall_every) {
            self.stall_left = self.plan.stall_polls;
        }
        out
    }

    fn diagnostics(&self) -> Vec<String> {
        let mut out = self.errors.render();
        out.extend(self.read_faults.render());
        out
    }

    fn fault_retries(&self) -> u64 {
        self.retries
    }

    fn fault_giveups(&self) -> u64 {
        self.giveups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Dir;
    use std::io::Write;
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tango-src-test-{}-{}",
            tag,
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn static_source_drains_once() {
        let t = Trace::new(vec![Event::input("A", "x", vec![])]);
        let mut s = StaticSource::new(t);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert!(p.eof);
        let p2 = s.poll();
        assert!(p2.events.is_empty());
        assert!(p2.eof);
    }

    #[test]
    fn channel_source_streams_until_eof() {
        let (tx, mut s) = ChannelSource::pair();
        assert!(s.poll().events.is_empty());
        tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
        tx.send(Feed::Event(Event::output("A", "y", vec![]))).unwrap();
        let p = s.poll();
        assert_eq!(p.events.len(), 2);
        assert!(!p.eof);
        tx.send(Feed::Eof).unwrap();
        assert!(s.poll().eof);
        // A clean eof is not a fault.
        assert!(s.diagnostics().is_empty());
    }

    #[test]
    fn dropped_sender_counts_as_eof_with_diagnostic() {
        let (tx, mut s) = ChannelSource::pair();
        drop(tx);
        assert!(s.poll().eof);
        assert!(s.feeder_died());
        assert_eq!(s.diagnostics().len(), 1);
    }

    #[test]
    fn follow_file_reads_appends_and_skips_partial_lines() {
        let dir = tmpdir("follow");
        let path = dir.join("follow.trace");
        std::fs::write(&path, "in A.x\n").unwrap();

        let mut s = FollowFileSource::new(&path, None);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].dir, Dir::In);

        // Append one full line and one partial line.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "out A.y\nin A").unwrap();
        drop(f);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].interaction, "y");

        // Complete the partial line and close the trace.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, ".x\neof").unwrap();
        drop(f);
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert!(p.eof);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_fails_by_default() {
        let dir = tmpdir("trunc-fail");
        let path = dir.join("t.trace");
        std::fs::write(&path, "in A.x\nin A.x\n").unwrap();
        let mut s = FollowFileSource::new(&path, None);
        assert_eq!(s.poll().events.len(), 2);
        // Rotate: replace with a shorter file.
        std::fs::write(&path, "in A.y\n").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let p = s.poll();
        assert!(p.eof, "truncation under Fail must read as eof");
        assert_eq!(s.rotations_seen(), 1);
        assert!(!s.diagnostics().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_restarts_under_restart_policy() {
        let dir = tmpdir("trunc-restart");
        let path = dir.join("t.trace");
        std::fs::write(&path, "in A.x\nin A.x\n").unwrap();
        let mut s =
            FollowFileSource::new(&path, None).with_recovery(RecoveryPolicy::Restart);
        assert_eq!(s.poll().events.len(), 2);
        std::fs::write(&path, "in A.y\neof\n").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let p = s.poll();
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].interaction, "y");
        assert!(p.eof);
        assert_eq!(s.rotations_seen(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_buffer_is_capped() {
        let mut garbage = String::new();
        for i in 0..(MAX_SOURCE_ERRORS + 40) {
            garbage.push_str(&format!("?!bad line {}\n", i));
        }
        garbage.push_str("eof\n");
        let mut s = FaultySource::new(&garbage, None, SourceFaultPlan::default());
        loop {
            if s.poll().eof {
                break;
            }
        }
        assert_eq!(s.skipped_lines(), (MAX_SOURCE_ERRORS + 40) as u64);
        let d = s.diagnostics();
        // kept lines + "dropped" summary line.
        assert_eq!(d.len(), MAX_SOURCE_ERRORS + 1);
        assert!(d.last().unwrap().contains("dropped"));
    }

    #[test]
    fn idle_polls_back_off() {
        let dir = tmpdir("backoff");
        let path = dir.join("b.trace");
        std::fs::write(&path, "").unwrap();
        let mut s = FollowFileSource::new(&path, None);
        assert!(s.poll().events.is_empty());
        let first = s.next_poll_at.expect("backoff armed");
        assert!(first > Instant::now() - Duration::from_secs(1));
        // Polling again during the backoff window does no filesystem work
        // and keeps the schedule.
        assert!(s.poll().events.is_empty());
        // Backoff doubles up to the RetryPolicy::source_poll cap (100ms).
        for _ in 0..20 {
            s.note_idle();
        }
        assert_eq!(s.idle.peek(), Duration::from_millis(100));
        // Data resets the backoff to the 1ms base.
        std::fs::write(&path, "in A.x\n").unwrap();
        s.next_poll_at = None;
        assert_eq!(s.poll().events.len(), 1);
        assert_eq!(s.idle.peek(), Duration::from_millis(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_source_duplicates_and_corrupts_deterministically() {
        let text = "in A.x\nin A.x\nin A.x\nin A.x\neof\n";
        let plan = SourceFaultPlan {
            corrupt_every: 3,
            duplicate_every: 2,
            ..SourceFaultPlan::default()
        };
        let run = || {
            let mut s = FaultySource::new(text, None, plan);
            let mut events = 0;
            let mut polls = 0;
            loop {
                let p = s.poll();
                events += p.events.len();
                polls += 1;
                if p.eof {
                    break;
                }
                assert!(polls < 100, "source must terminate");
            }
            (events, s.skipped_lines())
        };
        let (e1, s1) = run();
        let (e2, s2) = run();
        assert_eq!((e1, s1), (e2, s2), "fault schedule must be deterministic");
        assert!(s1 > 0, "corruption must surface as skipped lines");
        assert!(e1 > 4, "duplication must add events");
    }

    #[test]
    fn faulty_source_stalls() {
        let plan = SourceFaultPlan {
            stall_every: 1,
            stall_polls: 2,
            ..SourceFaultPlan::default()
        };
        let mut s = FaultySource::new("in A.x\neof\n", None, plan);
        assert_eq!(s.poll().events.len(), 1); // line 1 delivered, stall armed
        assert!(s.poll().events.is_empty()); // stall 1
        assert!(s.poll().events.is_empty()); // stall 2
        assert!(s.poll().eof); // eof line
    }

    #[test]
    fn faulty_source_truncates_midline() {
        let plan = SourceFaultPlan {
            truncate_every: 1,
            ..SourceFaultPlan::default()
        };
        // Midpoint falls before the dot, so neither half is a legal line:
        // `in Alpha` lacks the interaction, `betical.x` lacks a direction.
        let mut s = FaultySource::new("in Alphabetical.x\neof\n", None, plan);
        let p = s.poll();
        // Both halves fail to parse; nothing delivered, two errors kept.
        assert!(p.events.is_empty());
        assert_eq!(s.skipped_lines(), 2);
        assert!(s.poll().eof);
    }
}
