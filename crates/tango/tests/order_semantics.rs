//! Systematic tests of the §2.4.2 relative-order checking semantics,
//! bullet by bullet, through the full analyzer.
//!
//! The test specification is a transparent relay with two IPs: inputs at
//! `A` are echoed to `B` and vice versa, so any consumption/emission
//! order is *behaviourally* possible and verdicts depend purely on the
//! order-checking options.

use tango::{AnalysisOptions, OrderOptions, Tango, TraceAnalyzer, Verdict};

const RELAY: &str = r#"
specification relay;
channel CA(env, m); by env: a_in(n : integer); by m: a_out(n : integer); end;
channel CB(env, m); by env: b_in(n : integer); by m: b_out(n : integer); end;
module M process;
    ip A : CA(m);
    ip B : CB(m);
end;
body MB for M;
    state S;
    initialize to S begin end;
    trans
    from S to S when A.a_in name FwdA: begin output B.b_out(n) end;
    from S to S when B.b_in name FwdB: begin output A.a_out(n) end;
end;
end.
"#;

/// A relay that answers on the *same* IP (for the same-IP order bullets).
const ECHO: &str = r#"
specification echo;
channel CA(env, m); by env: ping(n : integer); by m: pong(n : integer); end;
module M process; ip A : CA(m); end;
body MB for M;
    state S;
    initialize to S begin end;
    trans
    from S to S when A.ping name Echo: begin output A.pong(n) end;
end;
end.
"#;

/// A spec emitting two outputs to different IPs in one transition block
/// (for the §2.4.2 permutation special case).
const FANOUT: &str = r#"
specification fanout;
channel CA(env, m); by env: go; by m: left; end;
channel CB(env, m); by m: right; end;
module M process;
    ip A : CA(m);
    ip B : CB(m);
end;
body MB for M;
    state S;
    initialize to S begin end;
    trans
    from S to S when A.go name Both:
    begin
        output A.left;
        output B.right;
    end;
end;
end.
"#;

fn verdict(analyzer: &TraceAnalyzer, trace: &str, order: OrderOptions) -> Verdict {
    analyzer
        .analyze_text(trace, &AnalysisOptions::with_order(order))
        .expect("trace analyzable")
        .verdict
}

/// Same (IP, direction) stream order is checked under *every* mode: the
/// two pongs must carry 1 then 2, never 2 then 1.
#[test]
fn same_stream_order_always_enforced() {
    let analyzer = Tango::generate(ECHO).unwrap();
    let alternating = "in A.ping(1)\nout A.pong(1)\nin A.ping(2)\nout A.pong(2)\n";
    let swapped = "in A.ping(1)\nin A.ping(2)\nout A.pong(2)\nout A.pong(1)\n";
    for order in [
        OrderOptions::none(),
        OrderOptions::io(),
        OrderOptions::ip(),
        OrderOptions::full(),
    ] {
        assert_eq!(verdict(&analyzer, alternating, order), Verdict::Valid);
        assert_eq!(
            verdict(&analyzer, swapped, order),
            Verdict::Invalid,
            "mode {} must enforce per-stream order",
            order.label()
        );
    }
}

/// "Outputs with respect to inputs" is exactly the option the paper says
/// to disable when the IUT has an input queue: a *batched* trace (both
/// pings recorded before the first pong) implies such a queue. Modes
/// carrying `output_wrt_input` therefore reject it; NR and IP accept it.
#[test]
fn batched_inputs_need_output_wrt_input_disabled() {
    let analyzer = Tango::generate(ECHO).unwrap();
    let batched = "in A.ping(1)\nin A.ping(2)\nout A.pong(1)\nout A.pong(2)\n";
    assert_eq!(verdict(&analyzer, batched, OrderOptions::none()), Verdict::Valid);
    assert_eq!(verdict(&analyzer, batched, OrderOptions::ip()), Verdict::Valid);
    assert_eq!(verdict(&analyzer, batched, OrderOptions::io()), Verdict::Invalid);
    assert_eq!(verdict(&analyzer, batched, OrderOptions::full()), Verdict::Invalid);

    // Only the input-wrt-output half enabled: the batched trace passes
    // (the paper recommends this half "under most circumstances").
    let io_only = OrderOptions {
        input_wrt_output: true,
        output_wrt_input: false,
        ip_order: false,
    };
    assert_eq!(verdict(&analyzer, batched, io_only), Verdict::Valid);
}

/// IP-order checking on inputs: inputs at different IPs must be consumed
/// in global trace order. The relay's trace records a_in before b_in but
/// the outputs reveal the IUT consumed b_in first — caught only by modes
/// with `ip_order`.
#[test]
fn cross_ip_input_order_needs_ip_mode() {
    let analyzer = Tango::generate(RELAY).unwrap();
    // Inputs recorded A-then-B, outputs reveal B was relayed first.
    let trace = "\
in A.a_in(1)
in B.b_in(2)
out A.a_out(2)
out B.b_out(1)
";
    // Without IP ordering: b_in may be consumed first; valid.
    assert_eq!(verdict(&analyzer, trace, OrderOptions::none()), Verdict::Valid);
    // IO also rejects, but through the output-wrt-input relation (each
    // relayed output follows the *other* IP's recorded input).
    assert_eq!(verdict(&analyzer, trace, OrderOptions::io()), Verdict::Invalid);
    // IP ordering ties consumption to the recorded order: a_in first
    // means b_out(1) must be the first *output*... which the trace
    // contradicts (a_out(2) comes first). Invalid.
    assert_eq!(verdict(&analyzer, trace, OrderOptions::ip()), Verdict::Invalid);
    assert_eq!(verdict(&analyzer, trace, OrderOptions::full()), Verdict::Invalid);
}

/// IP-order checking on outputs: outputs at different IPs must appear in
/// the order they were generated.
#[test]
fn cross_ip_output_order_needs_ip_mode() {
    let analyzer = Tango::generate(RELAY).unwrap();
    // Consumption order matches the trace (A then B), but the recorded
    // outputs are swapped relative to generation.
    let trace = "\
in A.a_in(1)
in B.b_in(2)
out A.a_out(2)
out B.b_out(1)
";
    // (Same trace as above — under NR both orders of firing work; under
    // IP the only consumption order is A-then-B, whose outputs would be
    // b_out then a_out, contradicting the trace.)
    assert_eq!(verdict(&analyzer, trace, OrderOptions::none()), Verdict::Valid);
    assert_eq!(verdict(&analyzer, trace, OrderOptions::ip()), Verdict::Invalid);
}

/// The §2.4.2 special case: two outputs from one transition block to
/// *different* IPs may appear permuted in the trace even under full
/// checking.
#[test]
fn same_block_output_permutation_allowed() {
    let analyzer = Tango::generate(FANOUT).unwrap();
    let declared = "in A.go\nout A.left\nout B.right\n";
    let permuted = "in A.go\nout B.right\nout A.left\n";
    for order in [OrderOptions::none(), OrderOptions::full()] {
        assert_eq!(verdict(&analyzer, declared, order), Verdict::Valid);
        assert_eq!(
            verdict(&analyzer, permuted, order),
            Verdict::Valid,
            "mode {} must allow same-block permutation",
            order.label()
        );
    }
}

/// But outputs from *different* transition blocks may not permute across
/// IPs under full checking.
#[test]
fn cross_block_output_permutation_rejected_under_full() {
    let analyzer = Tango::generate(FANOUT).unwrap();
    // Two gos: the trace interleaves their outputs out of block order:
    // right(1st go) ... left(1st go) would be fine, but here the first
    // recorded outputs pair a left from go#1 with the right from go#2.
    let trace = "\
in A.go
in A.go
out A.left
out A.left
out B.right
out B.right
";
    // Generation order is (left,right)(left,right); the trace shows both
    // lefts before both rights. Under NR: per-stream orders hold, valid.
    assert_eq!(verdict(&analyzer, trace, OrderOptions::none()), Verdict::Valid);
    // Under FULL: the first block verifies left#1 and right#1 (positions
    // 2 and 4 in the trace) — but then left#2 (position 3) precedes
    // right#1 (position 4), so block 1's outputs are not a prefix:
    // rejected.
    assert_eq!(verdict(&analyzer, trace, OrderOptions::full()), Verdict::Invalid);
}

/// Paper: "the use of order checking during the trace analysis
/// significantly reduces the state space, because most non-spontaneous
/// transitions become deterministic" — measurable as fanout.
#[test]
fn order_checking_reduces_fanout() {
    let analyzer = Tango::generate(RELAY).unwrap();
    let mut trace = String::new();
    for i in 0..10 {
        trace.push_str(&format!("in A.a_in({})\nout B.b_out({})\n", i, i));
        trace.push_str(&format!("in B.b_in({})\nout A.a_out({})\n", 100 + i, 100 + i));
    }
    let nr = analyzer
        .analyze_text(&trace, &AnalysisOptions::with_order(OrderOptions::none()))
        .unwrap();
    let full = analyzer
        .analyze_text(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
        .unwrap();
    assert_eq!(nr.verdict, Verdict::Valid);
    assert_eq!(full.verdict, Verdict::Valid);
    assert!(
        full.stats.average_fanout() < nr.stats.average_fanout(),
        "FULL fanout {} should be below NR fanout {}",
        full.stats.average_fanout(),
        nr.stats.average_fanout()
    );
    assert!(
        (full.stats.average_fanout() - 1.0).abs() < 0.05,
        "interleaved relay under FULL should be near-deterministic, got {}",
        full.stats.average_fanout()
    );
}
