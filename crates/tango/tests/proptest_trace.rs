//! Randomized-sweep tests for the trace format and the order-checking
//! environment.
//!
//! Formerly written with `proptest`; the workspace now builds offline with
//! no registry dependencies, so the same properties are checked over
//! deterministic seeded sweeps of [`tango::rng::SplitMix64`]. Every case
//! is reproducible from its printed seed.

use estelle_runtime::Value;
use tango::rng::SplitMix64;
use tango::trace::format::{parse_trace, render_trace};
use tango::{Dir, Event, Trace};

fn arb_value(rng: &mut SplitMix64) -> Value {
    match rng.gen_index(4) {
        0 => Value::Int(rng.gen_range_i64(-1_000_000, 1_000_000)),
        1 => Value::Bool(rng.gen_bool()),
        2 => Value::Undefined,
        _ => Value::Pointer(None),
    }
}

fn arb_format_event(rng: &mut SplitMix64) -> Event {
    let ip = ["A", "B", "Line3"][rng.gen_index(3)];
    let interaction = ["x", "data", "ack_2"][rng.gen_index(3)];
    let params = (0..rng.gen_index(4)).map(|_| arb_value(rng)).collect();
    Event {
        dir: if rng.gen_bool() { Dir::In } else { Dir::Out },
        ip: ip.to_string(),
        interaction: interaction.to_string(),
        params,
    }
}

/// render ∘ parse is the identity on arbitrary traces.
#[test]
fn trace_format_round_trips() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let events: Vec<Event> = (0..rng.gen_index(30))
            .map(|_| arb_format_event(&mut rng))
            .collect();
        let closed = rng.gen_bool();
        let trace = Trace::new(events);
        let text = render_trace(&trace, None, closed);
        let back = parse_trace(&text, None).expect("rendered traces parse");
        assert_eq!(back, trace, "seed {}", seed);
    }
}

/// Junk lines never panic the parser; they produce positioned errors.
#[test]
fn arbitrary_text_never_panics() {
    let alphabet: Vec<char> =
        (' '..='~').chain("§µλ\t(),.".chars()).collect();
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_index(201);
        let text: String = (0..len)
            .map(|_| alphabet[rng.gen_index(alphabet.len())])
            .collect();
        let _ = parse_trace(&text, None);
    }
}

mod env_properties {
    use super::*;
    use estelle_frontend::analyze;
    use estelle_frontend::sema::model::AnalyzedModule;
    use estelle_runtime::InputSource;
    use tango::env::TraceEnv;
    use tango::trace::ResolvedTrace;
    use tango::{AnalysisOptions, OrderOptions};

    fn module() -> AnalyzedModule {
        analyze(
            r#"
            specification s;
            channel CA(a, m); by a: x(n : integer); by m: y(n : integer); end;
            channel CB(b, m); by b: u; by m: v; end;
            module M process; ip A : CA(m); ip B : CB(m); end;
            body MB for M; state S; initialize to S begin end; end;
            end.
            "#,
        )
        .unwrap()
    }

    fn arb_event(rng: &mut SplitMix64) -> Event {
        let n = rng.gen_range_i64(-5, 4);
        match (rng.gen_bool(), rng.gen_bool()) {
            (true, true) => Event::input("A", "x", vec![Value::Int(n)]),
            (true, false) => Event::output("A", "y", vec![Value::Int(n)]),
            (false, true) => Event::input("B", "u", vec![]),
            (false, false) => Event::output("B", "v", vec![]),
        }
    }

    fn arb_events(rng: &mut SplitMix64) -> Vec<Event> {
        (0..1 + rng.gen_index(24)).map(|_| arb_event(rng)).collect()
    }

    /// Under IP ordering, at most one IP offers a consumable input at
    /// any time (the paper's "most non-spontaneous transitions become
    /// deterministic").
    #[test]
    fn ip_order_serializes_heads() {
        let m = module();
        for seed in 0..128u64 {
            let mut rng = SplitMix64::new(seed);
            let trace = Trace::new(arb_events(&mut rng));
            let resolved = ResolvedTrace::resolve(&trace, &m).unwrap();
            let opts = AnalysisOptions::with_order(OrderOptions::ip());
            let mut env = TraceEnv::new(&m, resolved, &opts, false).unwrap();

            // Drain inputs greedily; at every step at most one IP is
            // consumable, and consumption follows global trace order.
            let mut consumed_global = Vec::new();
            loop {
                let offers: Vec<usize> = (0..2)
                    .filter(|&ip| {
                        matches!(
                            env.head(ip),
                            estelle_runtime::QueueHead::Message { .. }
                        )
                    })
                    .collect();
                assert!(offers.len() <= 1, "IP order must serialize inputs (seed {})", seed);
                let Some(&ip) = offers.first() else { break };
                let gidx = env.trace.inputs[ip][env.cursors.input[ip]];
                consumed_global.push(gidx);
                env.consume(ip);
            }
            let mut sorted = consumed_global.clone();
            sorted.sort_unstable();
            assert_eq!(consumed_global, sorted, "seed {}", seed);
            // Everything eventually drains: inputs blocked only by other
            // inputs cannot deadlock. (Outputs may still be pending.)
            for ip in 0..2 {
                assert_eq!(env.cursors.input[ip], env.trace.inputs[ip].len());
            }
        }
    }

    /// Save/restore of cursors is exact under arbitrary prefixes of
    /// consumption.
    #[test]
    fn cursor_snapshots_are_exact() {
        let m = module();
        for seed in 0..128u64 {
            let mut rng = SplitMix64::new(seed);
            let trace = Trace::new(arb_events(&mut rng));
            let steps = rng.gen_index(10);
            let resolved = ResolvedTrace::resolve(&trace, &m).unwrap();
            let opts = AnalysisOptions::with_order(OrderOptions::none());
            let mut env = TraceEnv::new(&m, resolved, &opts, false).unwrap();

            for _ in 0..steps {
                let Some(ip) = (0..2).find(|&ip| {
                    matches!(env.head(ip), estelle_runtime::QueueHead::Message { .. })
                }) else {
                    break;
                };
                env.consume(ip);
            }
            let saved = env.save();
            let outstanding_before = env.outstanding();
            // Consume whatever remains.
            while let Some(ip) = (0..2).find(|&ip| {
                matches!(env.head(ip), estelle_runtime::QueueHead::Message { .. })
            }) {
                env.consume(ip);
            }
            env.restore(&saved);
            assert_eq!(env.outstanding(), outstanding_before, "seed {}", seed);
            assert_eq!(env.save(), saved, "seed {}", seed);
        }
    }
}
