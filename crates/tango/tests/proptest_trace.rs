//! Property tests for the trace format and the order-checking
//! environment.

use proptest::prelude::*;
use tango::trace::format::{parse_trace, render_trace};
use tango::{Dir, Event, Trace};
use estelle_runtime::Value;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Undefined),
        Just(Value::Pointer(None)),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        any::<bool>(),
        prop_oneof![Just("A"), Just("B"), Just("Line3")],
        prop_oneof![Just("x"), Just("data"), Just("ack_2")],
        prop::collection::vec(value_strategy(), 0..4),
    )
        .prop_map(|(is_in, ip, interaction, params)| Event {
            dir: if is_in { Dir::In } else { Dir::Out },
            ip: ip.to_string(),
            interaction: interaction.to_string(),
            params,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render ∘ parse is the identity on arbitrary traces.
    #[test]
    fn trace_format_round_trips(events in prop::collection::vec(event_strategy(), 0..30),
                                closed in any::<bool>()) {
        let trace = Trace::new(events);
        let text = render_trace(&trace, None, closed);
        let back = parse_trace(&text, None).expect("rendered traces parse");
        prop_assert_eq!(back, trace);
    }

    /// Junk lines never panic the parser; they produce positioned errors.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,200}") {
        let _ = parse_trace(&text, None);
    }
}

mod env_properties {
    use super::*;
    use estelle_frontend::analyze;
    use estelle_frontend::sema::model::AnalyzedModule;
    use estelle_runtime::InputSource;
    use tango::env::TraceEnv;
    use tango::trace::ResolvedTrace;
    use tango::{AnalysisOptions, OrderOptions};

    fn module() -> AnalyzedModule {
        analyze(
            r#"
            specification s;
            channel CA(a, m); by a: x(n : integer); by m: y(n : integer); end;
            channel CB(b, m); by b: u; by m: v; end;
            module M process; ip A : CA(m); ip B : CB(m); end;
            body MB for M; state S; initialize to S begin end; end;
            end.
            "#,
        )
        .unwrap()
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        (any::<bool>(), any::<bool>(), -5i64..5).prop_map(|(at_a, is_in, n)| {
            match (at_a, is_in) {
                (true, true) => Event::input("A", "x", vec![Value::Int(n)]),
                (true, false) => Event::output("A", "y", vec![Value::Int(n)]),
                (false, true) => Event::input("B", "u", vec![]),
                (false, false) => Event::output("B", "v", vec![]),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Under IP ordering, at most one IP offers a consumable input at
        /// any time (the paper's "most non-spontaneous transitions become
        /// deterministic").
        #[test]
        fn ip_order_serializes_heads(events in prop::collection::vec(arb_event(), 1..25)) {
            let m = module();
            let trace = Trace::new(events);
            let resolved = ResolvedTrace::resolve(&trace, &m).unwrap();
            let opts = AnalysisOptions::with_order(OrderOptions::ip());
            let mut env = TraceEnv::new(&m, resolved, &opts, false).unwrap();

            // Drain inputs greedily; at every step at most one IP is
            // consumable, and consumption follows global trace order.
            let mut consumed_global = Vec::new();
            loop {
                let offers: Vec<usize> = (0..2)
                    .filter(|&ip| matches!(env.head(ip), estelle_runtime::QueueHead::Message { .. }))
                    .collect();
                prop_assert!(offers.len() <= 1, "IP order must serialize inputs");
                let Some(&ip) = offers.first() else { break };
                let gidx = env.trace.inputs[ip][env.cursors.input[ip]];
                consumed_global.push(gidx);
                env.consume(ip);
            }
            let mut sorted = consumed_global.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&consumed_global, &sorted);
            // Everything eventually drains: inputs blocked only by other
            // inputs cannot deadlock. (Outputs may still be pending.)
            for ip in 0..2 {
                prop_assert_eq!(env.cursors.input[ip], env.trace.inputs[ip].len());
            }
        }

        /// Save/restore of cursors is exact under arbitrary prefixes of
        /// consumption.
        #[test]
        fn cursor_snapshots_are_exact(events in prop::collection::vec(arb_event(), 1..25),
                                      steps in 0usize..10) {
            let m = module();
            let trace = Trace::new(events);
            let resolved = ResolvedTrace::resolve(&trace, &m).unwrap();
            let opts = AnalysisOptions::with_order(OrderOptions::none());
            let mut env = TraceEnv::new(&m, resolved, &opts, false).unwrap();

            for _ in 0..steps {
                let Some(ip) = (0..2).find(|&ip| {
                    matches!(env.head(ip), estelle_runtime::QueueHead::Message { .. })
                }) else { break };
                env.consume(ip);
            }
            let saved = env.save();
            let outstanding_before = env.outstanding();
            // Consume whatever remains.
            while let Some(ip) = (0..2).find(|&ip| {
                matches!(env.head(ip), estelle_runtime::QueueHead::Message { .. })
            }) {
                env.consume(ip);
            }
            env.restore(&saved);
            prop_assert_eq!(env.outstanding(), outstanding_before);
            prop_assert_eq!(env.save(), saved);
        }
    }
}
