//! Flight recorder and post-mortem dump integration: determinism of the
//! RING section, dump coverage of every inconclusive variant, and the
//! recorder-counts-vs-final-stats consistency the dump format promises.

use std::time::Duration;
use tango::{
    should_dump, AnalysisOptions, AnalysisReport, InconclusiveReason, PostMortemDump,
    SearchStats, Tango, Telemetry, TraceAnalyzer, Verdict, DEFAULT_RING_CAPACITY,
};

/// Two observationally identical transitions per `ping` double the
/// search tree at every event; the trailing never-produced `pong` forces
/// a full exhaustion with plenty of saves, restores and prunes.
const FORK_SPEC: &str = r#"
specification forker;
channel C(user, station);
    by user: ping;
    by station: pong;
end;
module M process;
    ip U : C(station);
end;
body MB for M;
    state s0;
    initialize to s0 begin end;
    trans
    from s0 to same when U.ping name ta: begin end;
    from s0 to same when U.ping name tb: begin end;
end;
end.
"#;

fn forker() -> TraceAnalyzer {
    Tango::generate(FORK_SPEC).expect("valid specification")
}

fn fork_trace(pings: usize) -> String {
    let mut t = String::new();
    for _ in 0..pings {
        t.push_str("in U.ping\n");
    }
    t.push_str("out U.pong\n");
    t
}

fn recorder_tel(analyzer: &TraceAnalyzer) -> Telemetry {
    Telemetry::off()
        .with_recorder(DEFAULT_RING_CAPACITY)
        .with_transition_names(analyzer.transition_names())
}

fn run_with_recorder(
    analyzer: &TraceAnalyzer,
    trace: &str,
    options: &AnalysisOptions,
) -> (AnalysisReport, Telemetry) {
    let mut tel = recorder_tel(analyzer);
    let report = analyzer
        .analyze_text_with(trace, options, &mut tel)
        .expect("analyzable trace");
    tel.finalize(&report.stats);
    (report, tel)
}

#[test]
fn ring_section_is_byte_identical_across_identical_runs() {
    let analyzer = forker();
    let trace = fork_trace(7);
    let options = AnalysisOptions::default();

    let capture = |(report, tel): (AnalysisReport, Telemetry)| {
        let dump = PostMortemDump::capture(&report, &tel, None, None);
        (dump.ring_section_bytes(), report)
    };
    let (ring_a, report_a) = capture(run_with_recorder(&analyzer, &trace, &options));
    let (ring_b, report_b) = capture(run_with_recorder(&analyzer, &trace, &options));

    assert_eq!(report_a.verdict, report_b.verdict);
    assert_eq!(
        report_a.stats.transitions_executed,
        report_b.stats.transitions_executed
    );
    assert!(!ring_a.is_empty(), "the ring must retain records");
    assert_eq!(
        ring_a, ring_b,
        "identical runs must serialize byte-identical RING sections \
         (the recorder reads no clocks and allocates nothing per event)"
    );
}

#[test]
fn recorder_counts_are_consistent_with_final_stats() {
    let analyzer = forker();
    let (report, tel) = run_with_recorder(&analyzer, &fork_trace(6), &AnalysisOptions::default());
    let r = tel.recorder().expect("recorder enabled");
    let s = &report.stats;
    assert_eq!(r.fires(), s.transitions_executed, "TE");
    assert_eq!(r.generates(), s.generates, "GE");
    assert_eq!(r.restores(), s.restores, "RE");
    assert_eq!(r.saves(), s.saves, "SA");
    assert!(r.seen() >= r.fires() + r.generates() + r.restores() + r.saves());
}

#[test]
fn dump_is_emitted_on_every_real_inconclusive_variant() {
    let analyzer = forker();
    let trace = fork_trace(8);
    let dir = std::env::temp_dir().join(format!("tango-fr-dumps-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Each limit provokes its reason through a genuine search, not a
    // synthetic report.
    let variants: Vec<(&str, AnalysisOptions, InconclusiveReason)> = vec![
        (
            "transition-limit",
            {
                let mut o = AnalysisOptions::default();
                o.limits.max_transitions = 3;
                o
            },
            InconclusiveReason::TransitionLimit,
        ),
        (
            "depth-limit",
            {
                let mut o = AnalysisOptions::default();
                o.limits.max_depth = 2;
                o
            },
            InconclusiveReason::DepthLimit,
        ),
        (
            "time-limit",
            {
                let mut o = AnalysisOptions::default();
                o.limits.max_wall_time = Some(Duration::from_nanos(1));
                o
            },
            InconclusiveReason::TimeLimit,
        ),
        (
            "memory-limit",
            {
                let mut o = AnalysisOptions::default();
                o.limits.max_state_bytes = Some(1);
                o
            },
            InconclusiveReason::MemoryLimit,
        ),
    ];
    for (tag, options, expect) in variants {
        let (report, tel) = run_with_recorder(&analyzer, &trace, &options);
        assert_eq!(
            report.verdict,
            Verdict::Inconclusive(expect),
            "{}: the limit must actually trip",
            tag
        );
        assert!(should_dump(&report), "{}: inconclusive ⇒ dump", tag);
        let dump = PostMortemDump::capture(&report, &tel, None, None);
        let path = dir.join(format!("{}.tangodump", tag));
        dump.write_to(&path).unwrap();
        let back = PostMortemDump::read_from(&path).unwrap();
        assert_eq!(back.encode(), dump.encode(), "{}: round-trip", tag);
        assert_eq!(
            back.stats.transitions_executed, report.stats.transitions_executed,
            "{}: dump stats must be the final stats",
            tag
        );
        // The acceptance invariant: lifetime RING counts agree with the
        // final TE/GE/RE/SA of the (non-resumed) run.
        let r = tel.recorder().unwrap();
        assert_eq!(r.fires(), report.stats.transitions_executed, "{}", tag);
        assert_eq!(r.generates(), report.stats.generates, "{}", tag);
        assert_eq!(r.restores(), report.stats.restores, "{}", tag);
        assert_eq!(r.saves(), report.stats.saves, "{}", tag);
        std::fs::remove_file(&path).ok();
    }

    // The two variants no small in-process run can provoke cheaply are
    // still dump-worthy by construction.
    for reason in [InconclusiveReason::PgNodeLimit, InconclusiveReason::SpillFailure] {
        let report = AnalysisReport::new(Verdict::Inconclusive(reason), SearchStats::default());
        assert!(should_dump(&report), "{:?}", reason);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conclusive_clean_runs_never_ask_for_a_dump() {
    let analyzer = forker();
    // Exhaustive invalid run: conclusive, no faults — no dump.
    let (report, _tel) = run_with_recorder(&analyzer, &fork_trace(4), &AnalysisOptions::default());
    assert_eq!(report.verdict, Verdict::Invalid);
    assert!(!should_dump(&report));
}
