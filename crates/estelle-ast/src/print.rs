//! Pretty printer: renders a syntax tree back to Estelle source text.
//!
//! The output re-parses to an equivalent tree (checked by round-trip
//! property tests in `estelle-frontend`), which makes the printer useful
//! for testing, for dumping the normal-form transformation of §5.3, and
//! for generating synthetic specifications in the benchmark harness.

use crate::decl::*;
use crate::expr::{Expr, ExprKind, SetElem, UnOp};
use crate::spec::Specification;
use crate::stmt::{ForDirection, Stmt, StmtKind};
use crate::types::{TypeExpr, TypeExprKind};
use std::fmt::Write;

/// Render a full specification as Estelle source.
pub fn print_specification(spec: &Specification) -> String {
    let mut p = Printer::new();
    p.specification(spec);
    p.out
}

/// Render a single expression (used in diagnostics).
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr);
    p.out
}

/// Render a single statement at indent level zero.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

/// Render a type expression.
pub fn print_type(ty: &TypeExpr) -> String {
    let mut p = Printer::new();
    p.type_expr(ty);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn raw(&mut self, text: &str) {
        self.out.push_str(text);
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent -= 1;
        self.line(text);
    }

    fn specification(&mut self, spec: &Specification) {
        self.open(&format!("specification {};", spec.name));
        for c in &spec.body.consts {
            self.line(&format!("const {} = {};", c.name, print_expr(&c.value)));
        }
        for t in &spec.body.types {
            self.line(&format!("type {} = {};", t.name, print_type(&t.ty)));
        }
        for ch in &spec.body.channels {
            self.channel(ch);
        }
        for m in &spec.body.modules {
            self.module_header(m);
        }
        for b in &spec.body.bodies {
            self.module_body(b);
        }
        self.close("end.");
    }

    fn channel(&mut self, ch: &ChannelDecl) {
        let roles: Vec<String> = ch.roles.iter().map(|r| r.to_string()).collect();
        self.open(&format!("channel {}({});", ch.name, roles.join(", ")));
        for dir in &ch.directions {
            let by: Vec<String> = dir.roles.iter().map(|r| r.to_string()).collect();
            self.open(&format!("by {}:", by.join(", ")));
            for i in &dir.interactions {
                if i.params.is_empty() {
                    self.line(&format!("{};", i.name));
                } else {
                    let params: Vec<String> = i
                        .params
                        .iter()
                        .map(|p| format!("{} : {}", p.name, print_type(&p.ty)))
                        .collect();
                    self.line(&format!("{}({});", i.name, params.join("; ")));
                }
            }
            self.indent -= 1;
        }
        self.close("end;");
    }

    fn module_header(&mut self, m: &ModuleHeader) {
        let class = match m.class {
            ModuleClass::Process => "process",
            ModuleClass::SystemProcess => "systemprocess",
            ModuleClass::Activity => "activity",
            ModuleClass::SystemActivity => "systemactivity",
        };
        self.open(&format!("module {} {};", m.name, class));
        for ip in &m.ips {
            let queue = match ip.queue_kind {
                QueueKind::Individual => " individual queue",
                QueueKind::Common => " common queue",
            };
            self.line(&format!(
                "ip {} : {}({}){};",
                ip.name, ip.channel, ip.role, queue
            ));
        }
        self.close("end;");
    }

    fn module_body(&mut self, b: &ModuleBody) {
        self.open(&format!("body {} for {};", b.name, b.for_module));
        for c in &b.consts {
            self.line(&format!("const {} = {};", c.name, print_expr(&c.value)));
        }
        for t in &b.types {
            self.line(&format!("type {} = {};", t.name, print_type(&t.ty)));
        }
        for v in &b.vars {
            let names: Vec<String> = v.names.iter().map(|n| n.to_string()).collect();
            self.line(&format!("var {} : {};", names.join(", "), print_type(&v.ty)));
        }
        for s in &b.states {
            let names: Vec<String> = s.names.iter().map(|n| n.to_string()).collect();
            self.line(&format!("state {};", names.join(", ")));
        }
        for ss in &b.statesets {
            let names: Vec<String> = ss.members.iter().map(|n| n.to_string()).collect();
            self.line(&format!("stateset {} = [{}];", ss.name, names.join(", ")));
        }
        for r in &b.routines {
            self.routine(r);
        }
        if let Some(init) = &b.initialize {
            self.open(&format!("initialize to {}", init.to));
            self.block(&init.block);
            self.indent -= 1;
        }
        if !b.transitions.is_empty() {
            self.open("trans");
            for t in &b.transitions {
                self.transition(t);
            }
            self.indent -= 1;
        }
        self.close("end;");
    }

    fn routine(&mut self, r: &RoutineDecl) {
        let kind = if r.result.is_some() {
            "function"
        } else {
            "procedure"
        };
        let mut header = format!("{} {}", kind, r.name);
        if !r.params.is_empty() {
            let params: Vec<String> = r
                .params
                .iter()
                .map(|p| {
                    let names: Vec<String> = p.names.iter().map(|n| n.to_string()).collect();
                    format!(
                        "{}{} : {}",
                        if p.by_ref { "var " } else { "" },
                        names.join(", "),
                        print_type(&p.ty)
                    )
                })
                .collect();
            write!(header, "({})", params.join("; ")).unwrap();
        }
        if let Some(res) = &r.result {
            write!(header, " : {}", print_type(res)).unwrap();
        }
        header.push(';');
        if r.body.is_none() {
            self.line(&format!("{} primitive;", header));
            return;
        }
        self.open(&header);
        for c in &r.consts {
            self.line(&format!("const {} = {};", c.name, print_expr(&c.value)));
        }
        for t in &r.types {
            self.line(&format!("type {} = {};", t.name, print_type(&t.ty)));
        }
        for v in &r.vars {
            let names: Vec<String> = v.names.iter().map(|n| n.to_string()).collect();
            self.line(&format!("var {} : {};", names.join(", "), print_type(&v.ty)));
        }
        self.block(r.body.as_ref().unwrap());
        self.indent -= 1;
    }

    fn transition(&mut self, t: &Transition) {
        let from: Vec<String> = t.from.iter().map(|f| f.to_string()).collect();
        let to = match &t.to {
            ToClause::State(s) => s.to_string(),
            ToClause::Same => "same".to_string(),
        };
        let mut header = format!("from {} to {}", from.join(", "), to);
        if let Some(w) = &t.when {
            write!(header, " when {}.{}", w.ip, w.interaction).unwrap();
        }
        if let Some(p) = &t.provided {
            write!(header, " provided {}", print_expr(p)).unwrap();
        }
        if let Some(p) = &t.priority {
            write!(header, " priority {}", print_expr(p)).unwrap();
        }
        if let Some(d) = &t.delay {
            match &d.max {
                Some(max) => write!(
                    header,
                    " delay({}, {})",
                    print_expr(&d.min),
                    print_expr(max)
                )
                .unwrap(),
                None => write!(header, " delay({})", print_expr(&d.min)).unwrap(),
            }
        }
        for a in &t.any {
            write!(header, " any {} : {} do", a.var, print_type(&a.ty)).unwrap();
        }
        if let Some(n) = &t.name {
            write!(header, " name {} :", n).unwrap();
        }
        self.open(&header);
        self.block(&t.block);
        self.indent -= 1;
    }

    /// Print a `begin ... end;` block.
    fn block(&mut self, stmts: &[Stmt]) {
        self.open("begin");
        for s in stmts {
            self.stmt(s);
        }
        self.close("end;");
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Empty => self.line(";"),
            StmtKind::Assign { target, value } => {
                self.line(&format!("{} := {};", print_expr(target), print_expr(value)));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.open(&format!("if {} then", print_expr(cond)));
                self.stmt(then_branch);
                self.indent -= 1;
                if let Some(e) = else_branch {
                    self.open("else");
                    self.stmt(e);
                    self.indent -= 1;
                }
            }
            StmtKind::While { cond, body } => {
                self.open(&format!("while {} do", print_expr(cond)));
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::Repeat { body, cond } => {
                self.open("repeat");
                for st in body {
                    self.stmt(st);
                }
                self.close(&format!("until {};", print_expr(cond)));
            }
            StmtKind::For {
                var,
                from,
                dir,
                to,
                body,
            } => {
                let dir = match dir {
                    ForDirection::Up => "to",
                    ForDirection::Down => "downto",
                };
                self.open(&format!(
                    "for {} := {} {} {} do",
                    var,
                    print_expr(from),
                    dir,
                    print_expr(to)
                ));
                self.stmt(body);
                self.indent -= 1;
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                self.open(&format!("case {} of", print_expr(scrutinee)));
                for arm in arms {
                    let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                    self.open(&format!("{} :", labels.join(", ")));
                    self.stmt(&arm.body);
                    self.indent -= 1;
                }
                if let Some(stmts) = else_arm {
                    self.open("else");
                    for st in stmts {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.close("end;");
            }
            StmtKind::Compound(stmts) => self.block(stmts),
            StmtKind::Output {
                ip,
                interaction,
                args,
            } => {
                if args.is_empty() {
                    self.line(&format!("output {}.{};", ip, interaction));
                } else {
                    let args: Vec<String> = args.iter().map(print_expr).collect();
                    self.line(&format!("output {}.{}({});", ip, interaction, args.join(", ")));
                }
            }
            StmtKind::ProcCall { name, args } => {
                if args.is_empty() {
                    self.line(&format!("{};", name));
                } else {
                    let args: Vec<String> = args.iter().map(print_expr).collect();
                    self.line(&format!("{}({});", name, args.join(", ")));
                }
            }
            StmtKind::New(e) => self.line(&format!("new({});", print_expr(e))),
            StmtKind::Dispose(e) => self.line(&format!("dispose({});", print_expr(e))),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => self.raw(&v.to_string()),
            ExprKind::BoolLit(b) => self.raw(if *b { "true" } else { "false" }),
            ExprKind::NilLit => self.raw("nil"),
            ExprKind::Name(n) => self.raw(&n.text),
            ExprKind::Field(base, f) => {
                self.postfix_base(base);
                self.raw(&format!(".{}", f));
            }
            ExprKind::Index(base, idx) => {
                self.postfix_base(base);
                self.raw("[");
                self.expr(idx);
                self.raw("]");
            }
            ExprKind::Deref(base) => {
                self.postfix_base(base);
                self.raw("^");
            }
            ExprKind::Unary(op, operand) => {
                // Signs are only legal at the head of a simple expression
                // in Pascal, so the whole signed term is parenthesized to
                // stay printable in any operand position.
                match op {
                    UnOp::Not => {
                        self.raw("not (");
                        self.expr(operand);
                        self.raw(")");
                    }
                    UnOp::Neg => {
                        self.raw("(-(");
                        self.expr(operand);
                        self.raw("))");
                    }
                    UnOp::Plus => {
                        self.raw("(+(");
                        self.expr(operand);
                        self.raw("))");
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                // Fully parenthesized: correctness over prettiness; the
                // round-trip tests only require parse equivalence.
                self.raw("(");
                self.expr(l);
                self.raw(&format!(" {} ", op.symbol()));
                self.expr(r);
                self.raw(")");
            }
            ExprKind::Call(name, args) => {
                self.raw(&name.text);
                self.raw("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.raw(", ");
                    }
                    self.expr(a);
                }
                self.raw(")");
            }
            ExprKind::SetCtor(elems) => {
                self.raw("[");
                for (i, el) in elems.iter().enumerate() {
                    if i > 0 {
                        self.raw(", ");
                    }
                    match el {
                        SetElem::Single(e) => self.expr(e),
                        SetElem::Range(a, b) => {
                            self.expr(a);
                            self.raw("..");
                            self.expr(b);
                        }
                    }
                }
                self.raw("]");
            }
        }
    }

    /// Print the base of a postfix operator (`.f`, `[i]`, `^`). Postfix
    /// binds tighter than unary/binary operators in Pascal, so non-postfix
    /// bases need parentheses: `(-x)[i]` is not `-x[i]`.
    fn postfix_base(&mut self, base: &Expr) {
        let atomic = matches!(
            base.kind,
            ExprKind::IntLit(_)
                | ExprKind::BoolLit(_)
                | ExprKind::NilLit
                | ExprKind::Name(_)
                | ExprKind::Field(..)
                | ExprKind::Index(..)
                | ExprKind::Deref(_)
                | ExprKind::Call(..)
                | ExprKind::SetCtor(_)
        );
        if atomic {
            self.expr(base);
        } else {
            self.raw("(");
            self.expr(base);
            self.raw(")");
        }
    }

    fn type_expr(&mut self, ty: &TypeExpr) {
        match &ty.kind {
            TypeExprKind::Named(n) => self.raw(&n.text),
            TypeExprKind::Enum(names) => {
                let names: Vec<String> = names.iter().map(|n| n.to_string()).collect();
                self.raw(&format!("({})", names.join(", ")));
            }
            TypeExprKind::Subrange(lo, hi) => {
                self.expr(lo);
                self.raw("..");
                self.expr(hi);
            }
            TypeExprKind::Array { index, element } => {
                self.raw("array [");
                self.type_expr(index);
                self.raw("] of ");
                self.type_expr(element);
            }
            TypeExprKind::Record(fields) => {
                self.raw("record ");
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        self.raw("; ");
                    }
                    let names: Vec<String> = f.names.iter().map(|n| n.to_string()).collect();
                    self.raw(&format!("{} : ", names.join(", ")));
                    self.type_expr(&f.ty);
                }
                self.raw(" end");
            }
            TypeExprKind::SetOf(base) => {
                self.raw("set of ");
                self.type_expr(base);
            }
            TypeExprKind::Pointer(target) => {
                self.raw("^");
                self.type_expr(target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ident::Ident;
    use crate::span::Span;

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }

    #[test]
    fn expr_printing_parenthesizes() {
        let tree = e(ExprKind::Binary(
            BinOp::Add,
            Box::new(Expr::name(Ident::synthetic("a"))),
            Box::new(e(ExprKind::Binary(
                BinOp::Mul,
                Box::new(e(ExprKind::IntLit(2))),
                Box::new(Expr::name(Ident::synthetic("b"))),
            ))),
        ));
        assert_eq!(print_expr(&tree), "(a + (2 * b))");
    }

    #[test]
    fn output_statement_with_args() {
        let s = Stmt::new(
            StmtKind::Output {
                ip: Ident::synthetic("U"),
                interaction: Ident::synthetic("data"),
                args: vec![e(ExprKind::IntLit(7))],
            },
            Span::DUMMY,
        );
        assert_eq!(print_stmt(&s).trim(), "output U.data(7);");
    }

    #[test]
    fn pointer_and_set_types() {
        let t = TypeExpr::new(
            TypeExprKind::Pointer(Box::new(TypeExpr::new(
                TypeExprKind::Named(Ident::synthetic("cell")),
                Span::DUMMY,
            ))),
            Span::DUMMY,
        );
        assert_eq!(print_type(&t), "^cell");
    }

    #[test]
    fn deref_expression() {
        let d = e(ExprKind::Deref(Box::new(Expr::name(Ident::synthetic("p")))));
        assert_eq!(print_expr(&d), "p^");
    }
}
