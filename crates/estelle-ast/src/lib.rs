//! Abstract syntax tree for the Estelle formal description language.
//!
//! Estelle (ISO 9074) specifies communicating extended finite state machines
//! and may be viewed as a set of extensions to Pascal. This crate defines the
//! syntax tree produced by the `estelle-frontend` parser and consumed by the
//! `estelle-runtime` compiler — the static model that the original NIST
//! *Pet* translator would have emitted for *Dingo*.
//!
//! The subset covered is the one accepted by Tango (Ezust & Bochmann,
//! SIGCOMM '95): single-module specifications with a fully defined module
//! body. `delay` clauses and `primitive` routines are *representable* in the
//! tree (so the parser can give a precise diagnostic) but are rejected during
//! semantic analysis, exactly as Tango rejects them.
//!
//! Layout:
//! * [`span`] — byte-offset source spans carried by every node.
//! * [`ident`] — identifiers (case-insensitive, as in Pascal).
//! * [`types`] — type expressions (ordinals, subranges, arrays, records,
//!   sets, pointers).
//! * [`expr`] — Pascal expressions.
//! * [`stmt`] — Pascal statements plus the Estelle `output` statement.
//! * [`decl`] — declarations: constants, types, variables, channels,
//!   interaction points, procedures/functions, states and transitions.
//! * [`spec`] — the top-level specification node.
//! * [`visit`] — a read-only visitor over the tree.
//! * [`print()`](crate::print) — a pretty printer that renders a tree back to Estelle text.

pub mod decl;
pub mod expr;
pub mod ident;
pub mod print;
pub mod span;
pub mod spec;
pub mod stmt;
pub mod types;
pub mod visit;

pub use decl::*;
pub use expr::{BinOp, Expr, ExprKind, UnOp};
pub use ident::Ident;
pub use span::Span;
pub use spec::{Specification, SpecificationBody};
pub use stmt::{CaseArm, ForDirection, Stmt, StmtKind};
pub use types::{FieldDecl, TypeExpr, TypeExprKind};
