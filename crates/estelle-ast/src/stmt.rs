//! Statements.
//!
//! The Pascal statement sublanguage plus Estelle's `output` statement and
//! the standard dynamic-memory procedures `new`/`dispose` (which Estelle
//! keeps from Pascal and Tango must snapshot during backtracking).

use crate::expr::Expr;
use crate::ident::Ident;
use crate::span::Span;

/// A statement with its source location.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// An empty statement (Pascal allows them wherever a statement may go).
    pub fn empty(span: Span) -> Self {
        Stmt::new(StmtKind::Empty, span)
    }
}

/// The syntactic forms of a statement.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// The empty statement.
    Empty,
    /// `target := value`.
    Assign { target: Expr, value: Expr },
    /// `if cond then then_branch [else else_branch]`.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    /// `while cond do body`.
    While { cond: Expr, body: Box<Stmt> },
    /// `repeat body until cond`.
    Repeat { body: Vec<Stmt>, cond: Expr },
    /// `for var := from to/downto to_ do body`.
    For {
        var: Ident,
        from: Expr,
        dir: ForDirection,
        to: Expr,
        body: Box<Stmt>,
    },
    /// `case scrutinee of arms [else else_arm] end`.
    Case {
        scrutinee: Expr,
        arms: Vec<CaseArm>,
        else_arm: Option<Vec<Stmt>>,
    },
    /// `begin ... end`.
    Compound(Vec<Stmt>),
    /// Estelle `output ip.interaction(args)` — emit an interaction through
    /// an interaction point.
    Output {
        ip: Ident,
        interaction: Ident,
        args: Vec<Expr>,
    },
    /// Procedure call `p(args)` (including parameterless `p`).
    ProcCall { name: Ident, args: Vec<Expr> },
    /// `new(p)` — allocate dynamic memory for pointer `p`.
    New(Expr),
    /// `dispose(p)` — free the memory `p` points to.
    Dispose(Expr),
}

/// Direction of a `for` loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForDirection {
    /// `for i := a to b`.
    Up,
    /// `for i := a downto b`.
    Down,
}

/// One arm of a `case` statement: `label1, label2: stmt`.
#[derive(Clone, Debug)]
pub struct CaseArm {
    /// Constant labels selecting this arm.
    pub labels: Vec<Expr>,
    pub body: Stmt,
    pub span: Span,
}

impl StmtKind {
    /// True for statements whose execution can branch on data — the control
    /// statements §5.3 of the paper restricts for partial-trace analysis.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            StmtKind::If { .. }
                | StmtKind::While { .. }
                | StmtKind::Repeat { .. }
                | StmtKind::For { .. }
                | StmtKind::Case { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprKind;

    fn expr(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }

    #[test]
    fn control_statement_classification() {
        let cond = expr(ExprKind::BoolLit(true));
        let body = Box::new(Stmt::empty(Span::DUMMY));
        assert!(StmtKind::While { cond, body }.is_control());
        assert!(!StmtKind::Empty.is_control());
        assert!(!StmtKind::Compound(vec![]).is_control());
        assert!(!StmtKind::Output {
            ip: Ident::synthetic("a"),
            interaction: Ident::synthetic("x"),
            args: vec![],
        }
        .is_control());
    }
}
