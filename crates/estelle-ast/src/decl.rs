//! Declarations.
//!
//! Everything that may appear in a specification's declaration part or in a
//! module body: constants, types, variables, channels, module headers,
//! interaction points, Pascal procedures/functions, state (set)
//! declarations, the `initialize` transition, and ordinary transitions with
//! their Estelle clauses (`from`, `to`, `when`, `provided`, `priority`,
//! `delay`, `any`, `name`).

use crate::expr::Expr;
use crate::ident::Ident;
use crate::span::Span;
use crate::stmt::Stmt;
use crate::types::TypeExpr;

/// `const name = value;`
#[derive(Clone, Debug)]
pub struct ConstDecl {
    pub name: Ident,
    pub value: Expr,
    pub span: Span,
}

/// `type name = T;`
#[derive(Clone, Debug)]
pub struct TypeDecl {
    pub name: Ident,
    pub ty: TypeExpr,
    pub span: Span,
}

/// `var a, b : T;` — one group sharing a type.
#[derive(Clone, Debug)]
pub struct VarDecl {
    pub names: Vec<Ident>,
    pub ty: TypeExpr,
    pub span: Span,
}

/// One parameter of an interaction: `n : integer`.
#[derive(Clone, Debug)]
pub struct ParamDecl {
    pub name: Ident,
    pub ty: TypeExpr,
    pub span: Span,
}

/// An interaction declared inside a channel: `data(seq: integer);`
#[derive(Clone, Debug)]
pub struct InteractionDecl {
    pub name: Ident,
    pub params: Vec<ParamDecl>,
    pub span: Span,
}

/// A `by role:` group inside a channel declaration.
#[derive(Clone, Debug)]
pub struct ChannelDirection {
    /// The roles that may *send* these interactions.
    pub roles: Vec<Ident>,
    pub interactions: Vec<InteractionDecl>,
    pub span: Span,
}

/// `channel Ch(user, provider); by user: ...; by provider: ...;`
#[derive(Clone, Debug)]
pub struct ChannelDecl {
    pub name: Ident,
    /// The two role names, e.g. `(user, provider)`.
    pub roles: Vec<Ident>,
    pub directions: Vec<ChannelDirection>,
    pub span: Span,
}

/// An interaction point of a module: `ip U : Ch(provider);`
#[derive(Clone, Debug)]
pub struct IpDecl {
    pub name: Ident,
    pub channel: Ident,
    /// The role this module plays on the channel.
    pub role: Ident,
    /// `individual queue` / `common queue` — recorded but the runtime always
    /// uses individual FIFO queues, which is also what Tango assumes.
    pub queue_kind: QueueKind,
    pub span: Span,
}

/// Queue discipline named in an IP declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueKind {
    #[default]
    Individual,
    Common,
}

/// Module class keyword from the header. Tango treats all single-module
/// specifications alike; the class is kept for fidelity of the source model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModuleClass {
    #[default]
    Process,
    SystemProcess,
    Activity,
    SystemActivity,
}

/// `module M systemprocess; ip ...; end;`
#[derive(Clone, Debug)]
pub struct ModuleHeader {
    pub name: Ident,
    pub class: ModuleClass,
    pub ips: Vec<IpDecl>,
    pub span: Span,
}

/// A procedure or function declaration in a module body.
#[derive(Clone, Debug)]
pub struct RoutineDecl {
    pub name: Ident,
    pub params: Vec<RoutineParam>,
    /// `Some` for functions, `None` for procedures.
    pub result: Option<TypeExpr>,
    /// Local declarations.
    pub consts: Vec<ConstDecl>,
    pub types: Vec<TypeDecl>,
    pub vars: Vec<VarDecl>,
    /// `None` when declared `primitive` (externally implemented) — parsed
    /// so semantic analysis can reject it with a precise message, exactly
    /// as Tango does not support primitive routines.
    pub body: Option<Vec<Stmt>>,
    pub span: Span,
}

/// A formal parameter of a procedure/function.
#[derive(Clone, Debug)]
pub struct RoutineParam {
    pub names: Vec<Ident>,
    pub ty: TypeExpr,
    /// `var` parameters are passed by reference.
    pub by_ref: bool,
    pub span: Span,
}

/// `state S1, S2, S3;`
#[derive(Clone, Debug)]
pub struct StateDecl {
    pub names: Vec<Ident>,
    pub span: Span,
}

/// `stateset Ready = [S1, S2];`
#[derive(Clone, Debug)]
pub struct StateSetDecl {
    pub name: Ident,
    pub members: Vec<Ident>,
    pub span: Span,
}

/// The mandatory `initialize to S begin ... end;` transition.
#[derive(Clone, Debug)]
pub struct InitTrans {
    pub to: Ident,
    pub block: Vec<Stmt>,
    pub span: Span,
}

/// The `to` clause of a transition.
#[derive(Clone, Debug)]
pub enum ToClause {
    /// `to S`.
    State(Ident),
    /// `to same` — stay in the source state (useful with `from` lists).
    Same,
}

/// The `when` clause: `when ip.interaction`.
#[derive(Clone, Debug)]
pub struct WhenClause {
    pub ip: Ident,
    pub interaction: Ident,
    pub span: Span,
}

/// `any i : T do` — replicates the transition for every value of `T`.
#[derive(Clone, Debug)]
pub struct AnyClause {
    pub var: Ident,
    pub ty: TypeExpr,
    pub span: Span,
}

/// `delay(e1 [, e2])` — parsed so the analyzer can reject it; Tango does
/// not support delay clauses (the paper, §2.1).
#[derive(Clone, Debug)]
pub struct DelayClause {
    pub min: Expr,
    pub max: Option<Expr>,
    pub span: Span,
}

/// One transition declaration.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source states (a `from` list or a stateset name resolves to several).
    pub from: Vec<Ident>,
    pub to: ToClause,
    /// `None` makes the transition spontaneous.
    pub when: Option<WhenClause>,
    pub provided: Option<Expr>,
    pub priority: Option<Expr>,
    pub delay: Option<DelayClause>,
    pub any: Vec<AnyClause>,
    /// The optional `name T1:` label; compiled transitions without one get
    /// a synthesized label.
    pub name: Option<Ident>,
    pub block: Vec<Stmt>,
    pub span: Span,
}

/// A module body: declarations, states, routines, initialization and the
/// transition part.
#[derive(Clone, Debug)]
pub struct ModuleBody {
    pub name: Ident,
    /// Name of the module header this body is `for`.
    pub for_module: Ident,
    pub consts: Vec<ConstDecl>,
    pub types: Vec<TypeDecl>,
    pub vars: Vec<VarDecl>,
    pub states: Vec<StateDecl>,
    pub statesets: Vec<StateSetDecl>,
    pub routines: Vec<RoutineDecl>,
    pub initialize: Option<InitTrans>,
    pub transitions: Vec<Transition>,
    pub span: Span,
}

impl ModuleBody {
    /// All declared state names in declaration order.
    pub fn state_names(&self) -> impl Iterator<Item = &Ident> {
        self.states.iter().flat_map(|s| s.names.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(s: &str) -> Ident {
        Ident::synthetic(s)
    }

    #[test]
    fn state_names_flattens_groups() {
        let body = ModuleBody {
            name: ident("b"),
            for_module: ident("m"),
            consts: vec![],
            types: vec![],
            vars: vec![],
            states: vec![
                StateDecl {
                    names: vec![ident("s1"), ident("s2")],
                    span: Span::DUMMY,
                },
                StateDecl {
                    names: vec![ident("s3")],
                    span: Span::DUMMY,
                },
            ],
            statesets: vec![],
            routines: vec![],
            initialize: None,
            transitions: vec![],
            span: Span::DUMMY,
        };
        let names: Vec<_> = body.state_names().map(|i| i.key().to_string()).collect();
        assert_eq!(names, ["s1", "s2", "s3"]);
    }

    #[test]
    fn queue_kind_defaults_to_individual() {
        assert_eq!(QueueKind::default(), QueueKind::Individual);
    }
}
