//! Expressions.
//!
//! Estelle expressions are Pascal expressions: literals, variable accesses
//! (with field selection, array indexing and pointer dereference), the usual
//! arithmetic/relational/boolean operators, set membership, set constructors
//! and function calls.

use crate::ident::Ident;
use crate::span::Span;
use std::fmt;

/// An expression with its source location.
#[derive(Clone, Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for a bare name reference.
    pub fn name(id: Ident) -> Self {
        let span = id.span;
        Expr::new(ExprKind::Name(id), span)
    }
}

/// The syntactic forms of an expression.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// `true` / `false`.
    BoolLit(bool),
    /// `nil` — the null pointer.
    NilLit,
    /// A bare identifier: variable, constant, enum literal, or a call of a
    /// parameterless function — disambiguated by semantic analysis.
    Name(Ident),
    /// Record field selection: `base.field`.
    Field(Box<Expr>, Ident),
    /// Array indexing: `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Pointer dereference: `base^`.
    Deref(Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call with arguments: `f(a, b)`.
    Call(Ident, Vec<Expr>),
    /// Set constructor: `[a, b, lo..hi]`.
    SetCtor(Vec<SetElem>),
}

/// An element of a set constructor — a single value or an inclusive range.
#[derive(Clone, Debug)]
pub enum SetElem {
    Single(Expr),
    Range(Expr, Expr),
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation, `-x`.
    Neg,
    /// Arithmetic identity, `+x`.
    Plus,
    /// Boolean negation, `not x`.
    Not,
}

/// Binary operators, in Pascal's four precedence classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    // multiplying operators
    Mul,
    Div,
    Mod,
    And,
    // adding operators
    Add,
    Sub,
    Or,
    // relational operators
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Set membership, `x in s`.
    In,
}

impl BinOp {
    /// Pascal precedence level: higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::And => 3,
            BinOp::Add | BinOp::Sub | BinOp::Or => 2,
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::In => 1,
        }
    }

    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::And => "and",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Or => "or",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::In => "in",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "not",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering_matches_pascal() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert_eq!(BinOp::And.precedence(), BinOp::Div.precedence());
        assert_eq!(BinOp::Or.precedence(), BinOp::Sub.precedence());
        assert_eq!(BinOp::In.precedence(), BinOp::Le.precedence());
    }

    #[test]
    fn symbols_round_trip() {
        for op in [
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::And,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Or,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::In,
        ] {
            assert!(!op.symbol().is_empty());
        }
        assert_eq!(UnOp::Not.symbol(), "not");
    }
}
