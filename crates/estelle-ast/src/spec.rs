//! The top-level specification node.

use crate::decl::{ChannelDecl, ConstDecl, ModuleBody, ModuleHeader, TypeDecl};
use crate::ident::Ident;
use crate::span::Span;

/// A complete Estelle specification as parsed from one source file.
///
/// Tango's input requirement (paper §2.1) is a *single-module* specification
/// with a fully defined body; the parser accepts any number of module
/// headers/bodies so that semantic analysis can produce the precise
/// "multiple modules not supported" diagnostic instead of a parse error.
#[derive(Clone, Debug)]
pub struct Specification {
    pub name: Ident,
    pub body: SpecificationBody,
    pub span: Span,
}

/// The declaration part of a specification.
#[derive(Clone, Debug)]
pub struct SpecificationBody {
    pub consts: Vec<ConstDecl>,
    pub types: Vec<TypeDecl>,
    pub channels: Vec<ChannelDecl>,
    pub modules: Vec<ModuleHeader>,
    pub bodies: Vec<ModuleBody>,
}

impl Specification {
    /// The single module header/body pair, if the specification indeed has
    /// exactly one of each (Tango's requirement). Pairing is by the body's
    /// `for` clause.
    pub fn single_module(&self) -> Option<(&ModuleHeader, &ModuleBody)> {
        if self.body.modules.len() != 1 || self.body.bodies.len() != 1 {
            return None;
        }
        let header = &self.body.modules[0];
        let body = &self.body.bodies[0];
        if body.for_module == header.name {
            Some((header, body))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::{ModuleClass, ModuleHeader};

    fn header(name: &str) -> ModuleHeader {
        ModuleHeader {
            name: Ident::synthetic(name),
            class: ModuleClass::Process,
            ips: vec![],
            span: Span::DUMMY,
        }
    }

    fn body(name: &str, for_module: &str) -> ModuleBody {
        ModuleBody {
            name: Ident::synthetic(name),
            for_module: Ident::synthetic(for_module),
            consts: vec![],
            types: vec![],
            vars: vec![],
            states: vec![],
            statesets: vec![],
            routines: vec![],
            initialize: None,
            transitions: vec![],
            span: Span::DUMMY,
        }
    }

    fn spec(modules: Vec<ModuleHeader>, bodies: Vec<ModuleBody>) -> Specification {
        Specification {
            name: Ident::synthetic("s"),
            body: SpecificationBody {
                consts: vec![],
                types: vec![],
                channels: vec![],
                modules,
                bodies,
            },
            span: Span::DUMMY,
        }
    }

    #[test]
    fn single_module_found_when_paired() {
        let s = spec(vec![header("m")], vec![body("mb", "m")]);
        assert!(s.single_module().is_some());
    }

    #[test]
    fn single_module_rejects_mismatched_for() {
        let s = spec(vec![header("m")], vec![body("mb", "other")]);
        assert!(s.single_module().is_none());
    }

    #[test]
    fn single_module_rejects_multiple() {
        let s = spec(
            vec![header("m1"), header("m2")],
            vec![body("b1", "m1"), body("b2", "m2")],
        );
        assert!(s.single_module().is_none());
    }
}
