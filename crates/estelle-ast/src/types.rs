//! Type expressions.
//!
//! The Pascal type sublanguage that Estelle inherits, restricted to the
//! subset the Tango paper exercises: the predefined ordinals (`integer`,
//! `boolean`), enumerations, subranges, arrays, records, sets of ordinals,
//! and pointers (Estelle's dynamic memory). Named types refer back to a
//! `type` declaration and are resolved during semantic analysis.

use crate::expr::Expr;
use crate::ident::Ident;
use crate::span::Span;

/// A type expression together with its source location.
#[derive(Clone, Debug)]
pub struct TypeExpr {
    pub kind: TypeExprKind,
    pub span: Span,
}

impl TypeExpr {
    pub fn new(kind: TypeExprKind, span: Span) -> Self {
        TypeExpr { kind, span }
    }
}

/// The syntactic forms a type may take.
#[derive(Clone, Debug)]
pub enum TypeExprKind {
    /// A reference to a named type: predefined (`integer`, `boolean`) or a
    /// user `type` declaration.
    Named(Ident),
    /// An enumeration: `(idle, busy, closed)`.
    Enum(Vec<Ident>),
    /// A subrange `lo .. hi`; bounds are constant expressions.
    Subrange(Box<Expr>, Box<Expr>),
    /// `array [index] of element`. Multi-dimensional arrays are parsed as
    /// nested single-dimension arrays.
    Array {
        index: Box<TypeExpr>,
        element: Box<TypeExpr>,
    },
    /// `record f1: T1; f2: T2 end`.
    Record(Vec<FieldDecl>),
    /// `set of base` where `base` must be a small ordinal type.
    SetOf(Box<TypeExpr>),
    /// `^T` — a pointer into Estelle dynamic memory.
    Pointer(Box<TypeExpr>),
}

/// One field (or field group) of a record: `a, b : integer`.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    pub names: Vec<Ident>,
    pub ty: TypeExpr,
    pub span: Span,
}

impl TypeExprKind {
    /// Short human-readable label used in diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            TypeExprKind::Named(_) => "named type",
            TypeExprKind::Enum(_) => "enumeration",
            TypeExprKind::Subrange(..) => "subrange",
            TypeExprKind::Array { .. } => "array",
            TypeExprKind::Record(_) => "record",
            TypeExprKind::SetOf(_) => "set",
            TypeExprKind::Pointer(_) => "pointer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, ExprKind};

    fn int_lit(v: i64) -> Expr {
        Expr::new(ExprKind::IntLit(v), Span::DUMMY)
    }

    #[test]
    fn describe_labels() {
        let sub = TypeExprKind::Subrange(Box::new(int_lit(0)), Box::new(int_lit(7)));
        assert_eq!(sub.describe(), "subrange");
        assert_eq!(
            TypeExprKind::Named(Ident::synthetic("integer")).describe(),
            "named type"
        );
    }

    #[test]
    fn nested_array_types_compose() {
        let inner = TypeExpr::new(TypeExprKind::Named(Ident::synthetic("boolean")), Span::DUMMY);
        let idx = TypeExpr::new(
            TypeExprKind::Subrange(Box::new(int_lit(1)), Box::new(int_lit(4))),
            Span::DUMMY,
        );
        let arr = TypeExprKind::Array {
            index: Box::new(idx),
            element: Box::new(inner),
        };
        assert_eq!(arr.describe(), "array");
    }
}
