//! A read-only visitor over the syntax tree.
//!
//! Implement [`Visitor`] and override the hooks you care about; the default
//! implementations recurse via the `walk_*` free functions. Used by the
//! semantic analyzer (delay/primitive rejection, control-statement census
//! for §5.3 partial-trace checks) and by the normal-form transformation.

use crate::decl::{ModuleBody, RoutineDecl, Transition};
use crate::expr::{Expr, ExprKind, SetElem};
use crate::spec::Specification;
use crate::stmt::{Stmt, StmtKind};

/// Read-only tree visitor. Every hook defaults to plain recursion.
pub trait Visitor {
    fn visit_specification(&mut self, spec: &Specification) {
        walk_specification(self, spec);
    }

    fn visit_module_body(&mut self, body: &ModuleBody) {
        walk_module_body(self, body);
    }

    fn visit_routine(&mut self, routine: &RoutineDecl) {
        walk_routine(self, routine);
    }

    fn visit_transition(&mut self, trans: &Transition) {
        walk_transition(self, trans);
    }

    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
}

pub fn walk_specification<V: Visitor + ?Sized>(v: &mut V, spec: &Specification) {
    for c in &spec.body.consts {
        v.visit_expr(&c.value);
    }
    for body in &spec.body.bodies {
        v.visit_module_body(body);
    }
}

pub fn walk_module_body<V: Visitor + ?Sized>(v: &mut V, body: &ModuleBody) {
    for c in &body.consts {
        v.visit_expr(&c.value);
    }
    for r in &body.routines {
        v.visit_routine(r);
    }
    if let Some(init) = &body.initialize {
        for s in &init.block {
            v.visit_stmt(s);
        }
    }
    for t in &body.transitions {
        v.visit_transition(t);
    }
}

pub fn walk_routine<V: Visitor + ?Sized>(v: &mut V, routine: &RoutineDecl) {
    for c in &routine.consts {
        v.visit_expr(&c.value);
    }
    if let Some(body) = &routine.body {
        for s in body {
            v.visit_stmt(s);
        }
    }
}

pub fn walk_transition<V: Visitor + ?Sized>(v: &mut V, trans: &Transition) {
    if let Some(p) = &trans.provided {
        v.visit_expr(p);
    }
    if let Some(p) = &trans.priority {
        v.visit_expr(p);
    }
    if let Some(d) = &trans.delay {
        v.visit_expr(&d.min);
        if let Some(max) = &d.max {
            v.visit_expr(max);
        }
    }
    for s in &trans.block {
        v.visit_stmt(s);
    }
}

pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::Empty => {}
        StmtKind::Assign { target, value } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr(cond);
            v.visit_stmt(then_branch);
            if let Some(e) = else_branch {
                v.visit_stmt(e);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StmtKind::Repeat { body, cond } => {
            for s in body {
                v.visit_stmt(s);
            }
            v.visit_expr(cond);
        }
        StmtKind::For { from, to, body, .. } => {
            v.visit_expr(from);
            v.visit_expr(to);
            v.visit_stmt(body);
        }
        StmtKind::Case {
            scrutinee,
            arms,
            else_arm,
        } => {
            v.visit_expr(scrutinee);
            for arm in arms {
                for l in &arm.labels {
                    v.visit_expr(l);
                }
                v.visit_stmt(&arm.body);
            }
            if let Some(stmts) = else_arm {
                for s in stmts {
                    v.visit_stmt(s);
                }
            }
        }
        StmtKind::Compound(stmts) => {
            for s in stmts {
                v.visit_stmt(s);
            }
        }
        StmtKind::Output { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        StmtKind::ProcCall { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        StmtKind::New(e) | StmtKind::Dispose(e) => v.visit_expr(e),
    }
}

pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match &expr.kind {
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::NilLit | ExprKind::Name(_) => {}
        ExprKind::Field(base, _) => v.visit_expr(base),
        ExprKind::Index(base, idx) => {
            v.visit_expr(base);
            v.visit_expr(idx);
        }
        ExprKind::Deref(base) => v.visit_expr(base),
        ExprKind::Unary(_, e) => v.visit_expr(e),
        ExprKind::Binary(_, l, r) => {
            v.visit_expr(l);
            v.visit_expr(r);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::SetCtor(elems) => {
            for e in elems {
                match e {
                    SetElem::Single(e) => v.visit_expr(e),
                    SetElem::Range(a, b) => {
                        v.visit_expr(a);
                        v.visit_expr(b);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ident::Ident;
    use crate::span::Span;

    /// Counts visited expression nodes.
    struct Counter {
        exprs: usize,
        stmts: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, expr: &Expr) {
            self.exprs += 1;
            walk_expr(self, expr);
        }
        fn visit_stmt(&mut self, stmt: &Stmt) {
            self.stmts += 1;
            walk_stmt(self, stmt);
        }
    }

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }

    #[test]
    fn visits_every_expression_node() {
        // (a + 1) * b  — five expression nodes.
        let tree = e(ExprKind::Binary(
            BinOp::Mul,
            Box::new(e(ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::name(Ident::synthetic("a"))),
                Box::new(e(ExprKind::IntLit(1))),
            ))),
            Box::new(Expr::name(Ident::synthetic("b"))),
        ));
        let mut c = Counter { exprs: 0, stmts: 0 };
        c.visit_expr(&tree);
        assert_eq!(c.exprs, 5);
    }

    #[test]
    fn visits_statements_recursively() {
        let body = Stmt::new(
            StmtKind::Compound(vec![
                Stmt::empty(Span::DUMMY),
                Stmt::new(
                    StmtKind::If {
                        cond: e(ExprKind::BoolLit(true)),
                        then_branch: Box::new(Stmt::empty(Span::DUMMY)),
                        else_branch: Some(Box::new(Stmt::empty(Span::DUMMY))),
                    },
                    Span::DUMMY,
                ),
            ]),
            Span::DUMMY,
        );
        let mut c = Counter { exprs: 0, stmts: 0 };
        c.visit_stmt(&body);
        // compound + empty + if + then + else
        assert_eq!(c.stmts, 5);
        assert_eq!(c.exprs, 1);
    }
}
