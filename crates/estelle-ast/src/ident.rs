//! Identifiers.
//!
//! Estelle inherits Pascal's case-insensitive identifiers: `Buffer1`,
//! `BUFFER1` and `buffer1` denote the same name. [`Ident`] stores the text
//! as written (for diagnostics and pretty printing) together with a
//! lower-cased key used for all comparisons and hashing.

use crate::span::Span;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A case-insensitive identifier with its source span.
#[derive(Clone)]
pub struct Ident {
    /// The identifier exactly as written in the source.
    pub text: String,
    /// Lower-cased form; the canonical key for lookups.
    key: String,
    /// Where the identifier appeared.
    pub span: Span,
}

impl Ident {
    /// Build an identifier from its source text.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        let text = text.into();
        let key = text.to_ascii_lowercase();
        Ident { text, key, span }
    }

    /// Synthesize an identifier that has no source location.
    pub fn synthetic(text: impl Into<String>) -> Self {
        Ident::new(text, Span::DUMMY)
    }

    /// The canonical (lower-cased) key of this identifier.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Case-insensitive comparison against an arbitrary string.
    pub fn is(&self, name: &str) -> bool {
        self.key.eq_ignore_ascii_case(name)
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Ident {}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn case_insensitive_equality() {
        let a = Ident::synthetic("Buffer1");
        let b = Ident::synthetic("BUFFER1");
        assert_eq!(a, b);
        assert!(a.is("buffer1"));
    }

    #[test]
    fn hashing_follows_equality() {
        let mut set = HashSet::new();
        set.insert(Ident::synthetic("State_A"));
        assert!(set.contains(&Ident::synthetic("state_a")));
        assert!(!set.contains(&Ident::synthetic("state_b")));
    }

    #[test]
    fn display_preserves_original_case() {
        assert_eq!(Ident::synthetic("MixedCase").to_string(), "MixedCase");
    }
}
