//! Byte-offset source spans.
//!
//! Every AST node carries a [`Span`] pointing back into the original
//! specification text so diagnostics from the semantic analyzer, the
//! compiler and the trace analyzer can show the offending Estelle source.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The empty span at offset zero, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Smallest span enclosing both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// True if the span covers no text.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The text this span covers inside `source`.
    ///
    /// Returns an empty string if the span is out of bounds (e.g. a
    /// synthesized node being reported against the wrong file).
    pub fn slice(self, source: &str) -> &str {
        source
            .get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }

    /// 1-based line and column of the start of this span within `source`.
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let upto = &source[..(self.start as usize).min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_enclosing() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn slice_in_bounds() {
        let src = "specification s;";
        assert_eq!(Span::new(0, 13).slice(src), "specification");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        assert_eq!(Span::new(5, 50).slice("tiny"), "");
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "a\nbb\nccc";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(2, 3).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 2));
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::DUMMY.len(), 0);
    }
}
