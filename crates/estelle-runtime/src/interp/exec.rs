//! Statement execution.

use super::place::{read_resolved, write_resolved};
use super::{scalar, Interp, Store, UndefinedPolicy};
use crate::env::OutputSink;
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::ir::{CArg, CCall, CStmt};
use crate::value::{default_value, Value};

impl<'m> Interp<'m> {
    /// Execute a statement block. A sink rejection unwinds as
    /// [`crate::RuntimeErrorKind::OutputRejected`]; the machine's `fire` maps it
    /// back to a non-error outcome for the search.
    pub fn exec_block(
        &self,
        stmts: &[CStmt],
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<()> {
        for s in stmts {
            self.exec_stmt(s, store, frame, sink, depth)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &self,
        s: &CStmt,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<()> {
        match s {
            CStmt::Assign(place, value, _) => {
                let v = self.eval(value, store, frame, sink, depth)?;
                self.write_place(place, v, store, frame, sink, depth)
            }
            CStmt::If(cond, then_b, else_b, span) => {
                let c = self.eval(cond, store, frame, sink, depth)?;
                match self.control_bool(&c, *span)? {
                    true => self.exec_block(then_b, store, frame, sink, depth),
                    false => self.exec_block(else_b, store, frame, sink, depth),
                }
            }
            CStmt::While(cond, body, span) => {
                let mut iterations: u64 = 0;
                loop {
                    let c = self.eval(cond, store, frame, sink, depth)?;
                    if !self.control_bool(&c, *span)? {
                        return Ok(());
                    }
                    self.exec_block(body, store, frame, sink, depth)?;
                    iterations += 1;
                    if iterations > self.limits.max_loop_iterations {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::LoopLimitExceeded,
                            "while loop exceeded the iteration limit",
                        )
                        .with_span(*span));
                    }
                }
            }
            CStmt::Repeat(body, cond, span) => {
                let mut iterations: u64 = 0;
                loop {
                    self.exec_block(body, store, frame, sink, depth)?;
                    let c = self.eval(cond, store, frame, sink, depth)?;
                    if self.control_bool(&c, *span)? {
                        return Ok(());
                    }
                    iterations += 1;
                    if iterations > self.limits.max_loop_iterations {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::LoopLimitExceeded,
                            "repeat loop exceeded the iteration limit",
                        )
                        .with_span(*span));
                    }
                }
            }
            CStmt::For {
                var,
                from,
                down,
                to,
                body,
                span,
            } => {
                let fv = self.eval(from, store, frame, sink, depth)?;
                let tv = self.eval(to, store, frame, sink, depth)?;
                let (mut i, limit) = (
                    self.require_ordinal(&fv, *span)?,
                    self.require_ordinal(&tv, *span)?,
                );
                // Remember the loop variable's scalar kind so enum counters
                // keep their enum identity while stepping.
                let make = |template: &Value, ord: i64| match template {
                    Value::Enum(t, _) => Value::Enum(*t, ord),
                    Value::Bool(_) => Value::Bool(ord != 0),
                    _ => Value::Int(ord),
                };
                let template = fv.clone();
                let mut iterations: u64 = 0;
                loop {
                    if (*down && i < limit) || (!*down && i > limit) {
                        return Ok(());
                    }
                    self.write_place(var, make(&template, i), store, frame, sink, depth)?;
                    self.exec_block(body, store, frame, sink, depth)?;
                    iterations += 1;
                    if iterations > self.limits.max_loop_iterations {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::LoopLimitExceeded,
                            "for loop exceeded the iteration limit",
                        )
                        .with_span(*span));
                    }
                    if *down {
                        i -= 1;
                    } else {
                        i += 1;
                    }
                }
            }
            CStmt::Case {
                scrutinee,
                arms,
                else_arm,
                span,
            } => {
                let v = self.eval(scrutinee, store, frame, sink, depth)?;
                let ord = scalar::case_ordinal(self.policy, &v, *span)?;
                for (labels, body) in arms {
                    if labels.contains(&ord) {
                        return self.exec_block(body, store, frame, sink, depth);
                    }
                }
                if let Some(body) = else_arm {
                    return self.exec_block(body, store, frame, sink, depth);
                }
                // Pascal leaves an unmatched case undefined behaviour; we
                // take the lenient route and do nothing, as most Estelle
                // compilers did.
                Ok(())
            }
            CStmt::Output {
                ip,
                interaction,
                args,
                span,
            } => {
                let mut params = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.eval(a, store, frame, sink, depth)?;
                    if matches!(v, Value::Undefined)
                        && self.policy == UndefinedPolicy::Error
                    {
                        return Err(RuntimeError::undefined(
                            "output parameter is undefined",
                        )
                        .with_span(*span));
                    }
                    params.push(v);
                }
                if sink.emit(*ip, *interaction, params) {
                    Ok(())
                } else {
                    Err(RuntimeError::new(
                        RuntimeErrorKind::OutputRejected,
                        "output rejected by the trace matcher",
                    )
                    .with_span(*span))
                }
            }
            CStmt::Call(call) => {
                self.exec_call(call, store, frame, sink, depth)?;
                Ok(())
            }
            CStmt::New(place, pointee, _) => {
                let fresh = store
                    .heap
                    .alloc(default_value(&self.module.analyzed.types, *pointee));
                self.write_place(
                    place,
                    Value::Pointer(Some(fresh)),
                    store,
                    frame,
                    sink,
                    depth,
                )
            }
            CStmt::Dispose(place, span) => {
                let v = self.read_place(place, store, frame, sink, depth)?;
                match v {
                    Value::Pointer(Some(href)) => {
                        store.heap.dispose(href)?;
                        Ok(())
                    }
                    Value::Pointer(None) => {
                        Err(RuntimeError::dangling("dispose of nil").with_span(*span))
                    }
                    Value::Undefined => Err(RuntimeError::undefined(
                        "dispose of an undefined pointer",
                    )
                    .with_span(*span)),
                    other => Err(RuntimeError::internal(format!(
                        "dispose of non-pointer {}",
                        other
                    ))
                    .with_span(*span)),
                }
            }
        }
    }

    /// Execute a routine call with copy-in/copy-out `var` parameters.
    /// Returns the function result, or `None` for procedures.
    pub(super) fn exec_call(
        &self,
        call: &CCall,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Option<Value>> {
        if depth >= self.limits.max_call_depth {
            return Err(RuntimeError::new(
                RuntimeErrorKind::CallDepthExceeded,
                "routine call depth exceeded the limit",
            )
            .with_span(call.span));
        }
        let routine = &self.module.routines[call.routine];

        // Build the callee frame: defaults, then copy in arguments.
        let mut callee: Vec<Value> = routine
            .slot_types
            .iter()
            .map(|t| default_value(&self.module.analyzed.types, *t))
            .collect();
        for (i, arg) in call.args.iter().enumerate() {
            callee[i] = match arg {
                CArg::Value(e) => self.eval(e, store, frame, sink, depth)?,
                CArg::Ref(place) => {
                    let r = self.resolve_place(place, store, frame, sink, depth)?;
                    read_resolved(&r, store, frame)?.clone()
                }
            };
        }

        self.exec_block(&routine.body, store, &mut callee, sink, depth + 1)?;

        // Copy out `var` parameters.
        for (i, arg) in call.args.iter().enumerate() {
            if let CArg::Ref(place) = arg {
                let out = callee[i].clone();
                let r = self.resolve_place(place, store, frame, sink, depth)?;
                *write_resolved(&r, store, frame)? = out;
            }
        }

        Ok(routine.result_slot.map(|slot| callee[slot].clone()))
    }

    /// A control-statement condition: strictly boolean; undefined raises
    /// `UndefinedControl` in partial mode (§5.3).
    fn control_bool(&self, v: &Value, span: estelle_ast::Span) -> RtResult<bool> {
        scalar::control_bool(self.policy, v, span)
    }
}
