//! The IR interpreter.
//!
//! Executes compiled statements against a mutable [`Store`] (globals +
//! heap) and a per-invocation frame. Output statements go to an
//! [`OutputSink`]; a sink may reject an output, which aborts the
//! enclosing transition body — the trace analyzer uses this to fail a
//! search branch as soon as a generated interaction cannot be matched
//! against the trace.
//!
//! Undefined values follow one of two policies (paper §5.1):
//! * [`UndefinedPolicy::Error`] — full-trace analysis: using an undefined
//!   value is a specification bug and raises a runtime error;
//! * [`UndefinedPolicy::Propagate`] — partial-trace analysis: undefined
//!   propagates through operators (Kleene logic for booleans) and guards
//!   that evaluate to undefined are assumed true. Control statements whose
//!   condition is undefined raise [`crate::RuntimeErrorKind::UndefinedControl`],
//!   pointing at the §5.3 normal-form transformation.

mod eval;
mod exec;
pub(crate) mod place;
pub(crate) mod scalar;

pub use eval::eval_const_expr;

use crate::compile::CompiledModule;
use crate::env::OutputSink;
use crate::error::RtResult;
use crate::heap::Heap;
use crate::ir::CExpr;
use crate::value::Value;

/// How undefined values behave during evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UndefinedPolicy {
    /// Using an undefined value is an error (full-trace analysis).
    #[default]
    Error,
    /// Undefined propagates; guards on undefined are true (§5.1).
    Propagate,
}

/// The mutable part of a machine state the interpreter works on.
pub struct Store<'a> {
    pub globals: &'a mut Vec<Value>,
    pub heap: &'a mut Heap,
}

/// Interpreter limits, preventing non-terminating specifications from
/// hanging the search.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    pub max_loop_iterations: u64,
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_loop_iterations: 1_000_000,
            // Each Estelle call level costs several Rust frames in the
            // interpreter; 64 keeps unoptimized test-thread stacks (2 MiB)
            // safe while far exceeding what protocol specs need.
            max_call_depth: 64,
        }
    }
}

/// One interpretation context over a compiled module.
pub struct Interp<'m> {
    pub module: &'m CompiledModule,
    pub policy: UndefinedPolicy,
    pub limits: Limits,
}

impl<'m> Interp<'m> {
    pub fn new(module: &'m CompiledModule, policy: UndefinedPolicy) -> Self {
        Interp {
            module,
            policy,
            limits: Limits::default(),
        }
    }

    /// Evaluate a `provided` guard: undefined counts as true under the
    /// propagate policy, per the paper's rule for partial traces.
    pub fn eval_guard(
        &self,
        guard: &CExpr,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
    ) -> RtResult<bool> {
        let v = self.eval(guard, store, frame, sink, 0)?;
        scalar::guard_bool(self.policy, v)
    }
}

/// True if the expression contains a routine call (whose side effects make
/// it unsafe to evaluate as a guard against live state).
pub fn expr_has_calls(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Read(_) => false,
        CExpr::Field(b, _) | CExpr::Deref(b) => expr_has_calls(b),
        CExpr::Index { base, index, .. } => expr_has_calls(base) || expr_has_calls(index),
        CExpr::Unary(_, x, _) => expr_has_calls(x),
        CExpr::Binary(_, a, b, _) => expr_has_calls(a) || expr_has_calls(b),
        CExpr::Call(_) => true,
        CExpr::SetCtor(elems, _) => elems.iter().any(|el| match el {
            crate::ir::CSetElem::Single(x) => expr_has_calls(x),
            crate::ir::CSetElem::Range(a, b) => expr_has_calls(a) || expr_has_calls(b),
        }),
    }
}
