//! Expression evaluation.

use super::{Interp, Store, UndefinedPolicy};
use crate::env::{NullEnv, OutputSink};
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::heap::Heap;
use crate::ir::{CExpr, CSetElem, Slot};
use crate::value::{SmallSet, Value};
use estelle_ast::{BinOp, Span, UnOp};

impl<'m> Interp<'m> {
    pub(super) fn eval(
        &self,
        e: &CExpr,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        match e {
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Read(Slot::Global(i)) => store
                .globals
                .get(*i)
                .cloned()
                .ok_or_else(|| RuntimeError::internal("global slot out of range")),
            CExpr::Read(Slot::Local(i)) => frame
                .get(*i)
                .cloned()
                .ok_or_else(|| RuntimeError::internal("frame slot out of range")),
            CExpr::Field(base, pos) => {
                let b = self.eval(base, store, frame, sink, depth)?;
                match b {
                    Value::Record(mut vs) => {
                        if *pos < vs.len() {
                            Ok(vs.swap_remove(*pos))
                        } else {
                            Err(RuntimeError::internal("field position out of range"))
                        }
                    }
                    Value::Undefined => Ok(Value::Undefined),
                    other => Err(RuntimeError::internal(format!(
                        "field access on non-record {}",
                        other
                    ))),
                }
            }
            CExpr::Index {
                base,
                index,
                lo,
                len,
            } => {
                let b = self.eval(base, store, frame, sink, depth)?;
                let iv = self.eval(index, store, frame, sink, depth)?;
                let ord = self.require_ordinal(&iv, Span::DUMMY)?;
                let off = ord - lo;
                if off < 0 || off as usize >= *len {
                    return Err(RuntimeError::bounds(format!(
                        "index {} outside bounds {}..{}",
                        ord,
                        lo,
                        lo + *len as i64 - 1
                    )));
                }
                match b {
                    Value::Array(mut vs) => Ok(vs.swap_remove(off as usize)),
                    Value::Undefined => Ok(Value::Undefined),
                    other => Err(RuntimeError::internal(format!(
                        "indexing non-array {}",
                        other
                    ))),
                }
            }
            CExpr::Deref(base) => {
                let b = self.eval(base, store, frame, sink, depth)?;
                match b {
                    Value::Pointer(Some(href)) => Ok(store.heap.get(href)?.clone()),
                    Value::Pointer(None) => {
                        Err(RuntimeError::dangling("dereference of nil"))
                    }
                    Value::Undefined => self.undefined_or(
                        "dereference of an undefined pointer",
                        RuntimeErrorKind::UndefinedValue,
                    ),
                    other => Err(RuntimeError::internal(format!(
                        "dereference of non-pointer {}",
                        other
                    ))),
                }
            }
            CExpr::Unary(op, operand, span) => {
                let v = self.eval(operand, store, frame, sink, depth)?;
                self.eval_unary(*op, v, *span)
            }
            CExpr::Binary(op, l, r, span) => {
                self.eval_binary(*op, l, r, *span, store, frame, sink, depth)
            }
            CExpr::Call(call) => {
                let result = self.exec_call(call, store, frame, sink, depth)?;
                match result {
                    Some(v) => Ok(v),
                    None => Err(RuntimeError::internal(
                        "function call returned no value (or output rejected inside a guard)",
                    )),
                }
            }
            CExpr::SetCtor(elems, span) => {
                let mut s = SmallSet::empty();
                for el in elems {
                    match el {
                        CSetElem::Single(x) => {
                            let v = self.eval(x, store, frame, sink, depth)?;
                            s.insert(self.require_ordinal(&v, *span)?);
                        }
                        CSetElem::Range(a, b) => {
                            let av = self.eval(a, store, frame, sink, depth)?;
                            let bv = self.eval(b, store, frame, sink, depth)?;
                            let (a, b) = (
                                self.require_ordinal(&av, *span)?,
                                self.require_ordinal(&bv, *span)?,
                            );
                            for v in a..=b {
                                s.insert(v);
                            }
                        }
                    }
                }
                Ok(Value::Set(s))
            }
        }
    }

    fn eval_unary(&self, op: UnOp, v: Value, span: Span) -> RtResult<Value> {
        if matches!(v, Value::Undefined) {
            return self.undefined_or(
                "operand of a unary operator is undefined",
                RuntimeErrorKind::UndefinedValue,
            );
        }
        match (op, v) {
            (UnOp::Neg, Value::Int(i)) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| RuntimeError::new(RuntimeErrorKind::Overflow, "negation overflow")),
            (UnOp::Plus, Value::Int(i)) => Ok(Value::Int(i)),
            (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (op, v) => Err(RuntimeError::internal(format!(
                "unary {} on {}",
                op, v
            ))
            .with_span(span)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_binary(
        &self,
        op: BinOp,
        l: &CExpr,
        r: &CExpr,
        span: Span,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        // Boolean operators get Kleene logic under the propagate policy and
        // short-circuiting under both policies.
        if matches!(op, BinOp::And | BinOp::Or) {
            return self.eval_logic(op, l, r, span, store, frame, sink, depth);
        }
        let lv = self.eval(l, store, frame, sink, depth)?;
        let rv = self.eval(r, store, frame, sink, depth)?;
        if matches!(lv, Value::Undefined) || matches!(rv, Value::Undefined) {
            return self.undefined_or(
                "operand of a binary operator is undefined",
                RuntimeErrorKind::UndefinedValue,
            );
        }
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let (Value::Int(a), Value::Int(b)) = (&lv, &rv) else {
                    return Err(RuntimeError::internal(format!(
                        "arithmetic on {} and {}",
                        lv, rv
                    ))
                    .with_span(span));
                };
                let (a, b) = (*a, *b);
                let out = match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(RuntimeError::new(
                                RuntimeErrorKind::DivisionByZero,
                                "div by zero",
                            )
                            .with_span(span));
                        }
                        // Pascal `div` truncates toward zero.
                        Some(a.wrapping_div(b))
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(RuntimeError::new(
                                RuntimeErrorKind::DivisionByZero,
                                "mod by zero",
                            )
                            .with_span(span));
                        }
                        Some(a.wrapping_rem(b))
                    }
                    _ => unreachable!(),
                };
                out.map(Value::Int).ok_or_else(|| {
                    RuntimeError::new(RuntimeErrorKind::Overflow, "arithmetic overflow")
                        .with_span(span)
                })
            }
            BinOp::Eq => Ok(Value::Bool(values_equal(&lv, &rv))),
            BinOp::Ne => Ok(Value::Bool(!values_equal(&lv, &rv))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let (Some(a), Some(b)) = (lv.ordinal(), rv.ordinal()) else {
                    return Err(RuntimeError::internal(format!(
                        "ordering comparison on {} and {}",
                        lv, rv
                    ))
                    .with_span(span));
                };
                Ok(Value::Bool(match op {
                    BinOp::Lt => a < b,
                    BinOp::Le => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                }))
            }
            BinOp::In => {
                let Some(a) = lv.ordinal() else {
                    return Err(RuntimeError::internal(format!(
                        "`in` with non-ordinal {}",
                        lv
                    ))
                    .with_span(span));
                };
                let Value::Set(s) = &rv else {
                    return Err(RuntimeError::internal(format!(
                        "`in` with non-set {}",
                        rv
                    ))
                    .with_span(span));
                };
                Ok(Value::Bool(s.contains(a)))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_logic(
        &self,
        op: BinOp,
        l: &CExpr,
        r: &CExpr,
        span: Span,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        let lv = self.eval(l, store, frame, sink, depth)?;
        let lb = self.as_tribool(&lv, span)?;
        // Short-circuit on the decisive value.
        match (op, lb) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let rv = self.eval(r, store, frame, sink, depth)?;
        let rb = self.as_tribool(&rv, span)?;
        let out = match (op, lb, rb) {
            (BinOp::And, Some(a), Some(b)) => Some(a && b),
            (BinOp::Or, Some(a), Some(b)) => Some(a || b),
            // Kleene: `? and false` is false, `? or true` is true.
            (BinOp::And, None, Some(false)) | (BinOp::And, Some(false), None) => Some(false),
            (BinOp::Or, None, Some(true)) | (BinOp::Or, Some(true), None) => Some(true),
            _ => None,
        };
        Ok(match out {
            Some(b) => Value::Bool(b),
            None => Value::Undefined,
        })
    }

    /// Interpret a value as a three-valued boolean. Under the error policy
    /// an undefined value is rejected outright.
    fn as_tribool(&self, v: &Value, span: Span) -> RtResult<Option<bool>> {
        match v {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Undefined => match self.policy {
                UndefinedPolicy::Propagate => Ok(None),
                UndefinedPolicy::Error => Err(RuntimeError::undefined(
                    "boolean operand is undefined",
                )
                .with_span(span)),
            },
            other => Err(RuntimeError::internal(format!(
                "boolean operator on {}",
                other
            ))
            .with_span(span)),
        }
    }

    pub(super) fn require_ordinal(&self, v: &Value, span: Span) -> RtResult<i64> {
        match v {
            Value::Undefined => Err(match self.policy {
                UndefinedPolicy::Error => {
                    RuntimeError::undefined("undefined value where an ordinal is required")
                        .with_span(span)
                }
                UndefinedPolicy::Propagate => RuntimeError::undefined_control(
                    "an undefined value reached an index or range position; \
                     apply the normal-form transformation for partial traces",
                )
                .with_span(span),
            }),
            other => other.ordinal().ok_or_else(|| {
                RuntimeError::internal(format!("expected ordinal, found {}", other)).with_span(span)
            }),
        }
    }

    /// Build `Undefined` under the propagate policy, or an error of `kind`
    /// under the error policy.
    fn undefined_or(&self, msg: &str, kind: RuntimeErrorKind) -> RtResult<Value> {
        match self.policy {
            UndefinedPolicy::Propagate => Ok(Value::Undefined),
            UndefinedPolicy::Error => Err(RuntimeError::new(kind, msg)),
        }
    }
}

/// Structural equality for the `=` operator. Pointer equality is by
/// reference; sets by membership; composites elementwise.
pub(super) fn values_equal(a: &Value, b: &Value) -> bool {
    a == b
}

/// Evaluate a closed constant expression with no state (used by tests and
/// tooling to fold trace parameter literals).
pub fn eval_const_expr(module: &crate::compile::CompiledModule, e: &CExpr) -> RtResult<Value> {
    let mut globals = Vec::new();
    let mut heap = Heap::new();
    let mut store = Store {
        globals: &mut globals,
        heap: &mut heap,
    };
    let mut frame = Vec::new();
    let mut sink = NullEnv::default();
    let interp = Interp::new(module, UndefinedPolicy::Error);
    interp.eval(e, &mut store, &mut frame, &mut sink, 0)
}
