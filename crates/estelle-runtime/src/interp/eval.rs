//! Expression evaluation.
//!
//! Operator and coercion semantics live in [`super::scalar`], shared with
//! the bytecode VM; this module owns only the tree traversal.

use super::{scalar, Interp, Store};
use crate::env::{NullEnv, OutputSink};
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::heap::Heap;
use crate::ir::{CExpr, CSetElem, Slot};
use crate::value::{SmallSet, Value};
use estelle_ast::{BinOp, Span, UnOp};

impl<'m> Interp<'m> {
    pub(super) fn eval(
        &self,
        e: &CExpr,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        match e {
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Read(Slot::Global(i)) => store
                .globals
                .get(*i)
                .cloned()
                .ok_or_else(|| RuntimeError::internal("global slot out of range")),
            CExpr::Read(Slot::Local(i)) => frame
                .get(*i)
                .cloned()
                .ok_or_else(|| RuntimeError::internal("frame slot out of range")),
            CExpr::Field(base, pos) => {
                let b = self.eval(base, store, frame, sink, depth)?;
                match b {
                    Value::Record(mut vs) => {
                        if *pos < vs.len() {
                            Ok(vs.swap_remove(*pos))
                        } else {
                            Err(RuntimeError::internal("field position out of range"))
                        }
                    }
                    Value::Undefined => Ok(Value::Undefined),
                    other => Err(RuntimeError::internal(format!(
                        "field access on non-record {}",
                        other
                    ))),
                }
            }
            CExpr::Index {
                base,
                index,
                lo,
                len,
            } => {
                let b = self.eval(base, store, frame, sink, depth)?;
                let iv = self.eval(index, store, frame, sink, depth)?;
                let ord = self.require_ordinal(&iv, Span::DUMMY)?;
                let off = ord - lo;
                if off < 0 || off as usize >= *len {
                    return Err(RuntimeError::bounds(format!(
                        "index {} outside bounds {}..{}",
                        ord,
                        lo,
                        lo + *len as i64 - 1
                    )));
                }
                match b {
                    Value::Array(mut vs) => Ok(vs.swap_remove(off as usize)),
                    Value::Undefined => Ok(Value::Undefined),
                    other => Err(RuntimeError::internal(format!(
                        "indexing non-array {}",
                        other
                    ))),
                }
            }
            CExpr::Deref(base) => {
                let b = self.eval(base, store, frame, sink, depth)?;
                match b {
                    Value::Pointer(Some(href)) => Ok(store.heap.get(href)?.clone()),
                    Value::Pointer(None) => {
                        Err(RuntimeError::dangling("dereference of nil"))
                    }
                    Value::Undefined => scalar::undefined_or(
                        self.policy,
                        "dereference of an undefined pointer",
                        RuntimeErrorKind::UndefinedValue,
                    ),
                    other => Err(RuntimeError::internal(format!(
                        "dereference of non-pointer {}",
                        other
                    ))),
                }
            }
            CExpr::Unary(op, operand, span) => {
                let v = self.eval(operand, store, frame, sink, depth)?;
                self.eval_unary(*op, v, *span)
            }
            CExpr::Binary(op, l, r, span) => {
                self.eval_binary(*op, l, r, *span, store, frame, sink, depth)
            }
            CExpr::Call(call) => {
                let result = self.exec_call(call, store, frame, sink, depth)?;
                match result {
                    Some(v) => Ok(v),
                    None => Err(RuntimeError::internal(
                        "function call returned no value (or output rejected inside a guard)",
                    )),
                }
            }
            CExpr::SetCtor(elems, span) => {
                let mut s = SmallSet::empty();
                for el in elems {
                    match el {
                        CSetElem::Single(x) => {
                            let v = self.eval(x, store, frame, sink, depth)?;
                            s.insert(self.require_ordinal(&v, *span)?);
                        }
                        CSetElem::Range(a, b) => {
                            let av = self.eval(a, store, frame, sink, depth)?;
                            let bv = self.eval(b, store, frame, sink, depth)?;
                            let (a, b) = (
                                self.require_ordinal(&av, *span)?,
                                self.require_ordinal(&bv, *span)?,
                            );
                            for v in a..=b {
                                s.insert(v);
                            }
                        }
                    }
                }
                Ok(Value::Set(s))
            }
        }
    }

    fn eval_unary(&self, op: UnOp, v: Value, span: Span) -> RtResult<Value> {
        scalar::apply_unary(self.policy, op, v, span)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_binary(
        &self,
        op: BinOp,
        l: &CExpr,
        r: &CExpr,
        span: Span,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        // Boolean operators get Kleene logic under the propagate policy and
        // short-circuiting under both policies.
        if matches!(op, BinOp::And | BinOp::Or) {
            let and = op == BinOp::And;
            let lv = self.eval(l, store, frame, sink, depth)?;
            if let Some(decided) = scalar::logic_short(self.policy, and, &lv, span)? {
                return Ok(Value::Bool(decided));
            }
            let rv = self.eval(r, store, frame, sink, depth)?;
            return scalar::logic_join(self.policy, and, &lv, &rv, span);
        }
        let lv = self.eval(l, store, frame, sink, depth)?;
        let rv = self.eval(r, store, frame, sink, depth)?;
        scalar::apply_binary(self.policy, op, &lv, &rv, span)
    }

    pub(super) fn require_ordinal(&self, v: &Value, span: Span) -> RtResult<i64> {
        scalar::require_ordinal(self.policy, v, span)
    }
}

/// Evaluate a closed constant expression with no state (used by tests and
/// tooling to fold trace parameter literals).
pub fn eval_const_expr(module: &crate::compile::CompiledModule, e: &CExpr) -> RtResult<Value> {
    let mut globals = Vec::new();
    let mut heap = Heap::new();
    let mut store = Store {
        globals: &mut globals,
        heap: &mut heap,
    };
    let mut frame = Vec::new();
    let mut sink = NullEnv::default();
    let interp = Interp::new(module, super::UndefinedPolicy::Error);
    interp.eval(e, &mut store, &mut frame, &mut sink, 0)
}
