//! Policy-dependent scalar semantics shared by the two executors.
//!
//! The tree-walking interpreter ([`super::Interp`]) and the bytecode VM
//! ([`crate::vm`]) must agree *bit-for-bit* on every value they produce and
//! every error they raise — the trace analyzer's `--exec` A/B contract.
//! Everything here is therefore a free function parameterized by the
//! [`UndefinedPolicy`], and both executors delegate to it instead of
//! carrying private copies of the rules: operator semantics, Kleene
//! triboolean logic, ordinal coercions, control conditions and the
//! `provided`-guard interpretation all live in exactly one place.

use super::UndefinedPolicy;
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::value::Value;
use estelle_ast::{BinOp, Span, UnOp};

/// Interpret a value as a three-valued boolean. Under the error policy an
/// undefined value is rejected outright.
pub(crate) fn as_tribool(
    policy: UndefinedPolicy,
    v: &Value,
    span: Span,
) -> RtResult<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Undefined => match policy {
            UndefinedPolicy::Propagate => Ok(None),
            UndefinedPolicy::Error => {
                Err(RuntimeError::undefined("boolean operand is undefined").with_span(span))
            }
        },
        other => Err(
            RuntimeError::internal(format!("boolean operator on {}", other)).with_span(span),
        ),
    }
}

/// Coerce a value to its ordinal, with the policy-specific undefined
/// diagnostics of index/range positions.
pub(crate) fn require_ordinal(policy: UndefinedPolicy, v: &Value, span: Span) -> RtResult<i64> {
    match v {
        Value::Undefined => Err(match policy {
            UndefinedPolicy::Error => {
                RuntimeError::undefined("undefined value where an ordinal is required")
                    .with_span(span)
            }
            UndefinedPolicy::Propagate => RuntimeError::undefined_control(
                "an undefined value reached an index or range position; \
                 apply the normal-form transformation for partial traces",
            )
            .with_span(span),
        }),
        other => other.ordinal().ok_or_else(|| {
            RuntimeError::internal(format!("expected ordinal, found {}", other)).with_span(span)
        }),
    }
}

/// Build `Undefined` under the propagate policy, or an error of `kind`
/// under the error policy.
pub(crate) fn undefined_or(
    policy: UndefinedPolicy,
    msg: &str,
    kind: RuntimeErrorKind,
) -> RtResult<Value> {
    match policy {
        UndefinedPolicy::Propagate => Ok(Value::Undefined),
        UndefinedPolicy::Error => Err(RuntimeError::new(kind, msg)),
    }
}

/// Apply a unary operator to an evaluated operand.
pub(crate) fn apply_unary(
    policy: UndefinedPolicy,
    op: UnOp,
    v: Value,
    span: Span,
) -> RtResult<Value> {
    if matches!(v, Value::Undefined) {
        return undefined_or(
            policy,
            "operand of a unary operator is undefined",
            RuntimeErrorKind::UndefinedValue,
        );
    }
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => i
            .checked_neg()
            .map(Value::Int)
            .ok_or_else(|| RuntimeError::new(RuntimeErrorKind::Overflow, "negation overflow")),
        (UnOp::Plus, Value::Int(i)) => Ok(Value::Int(i)),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (op, v) => {
            Err(RuntimeError::internal(format!("unary {} on {}", op, v)).with_span(span))
        }
    }
}

/// Int-int fast path for the non-logical binary operators. Semantically
/// identical to routing two `Value::Int`s through [`apply_binary`] — same
/// checked arithmetic, same errors, same spans — but monomorphic on `i64`,
/// so the VM's hot arithmetic/comparison loop skips the operand `match`
/// and the `Value` destructuring entirely. Both executors stay bit-for-bit
/// equal because [`apply_binary`] itself delegates here.
#[inline]
pub(crate) fn apply_binary_ints(op: BinOp, a: i64, b: i64, span: Span) -> RtResult<Value> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::DivisionByZero,
                            "div by zero",
                        )
                        .with_span(span));
                    }
                    // Pascal `div` truncates toward zero.
                    Some(a.wrapping_div(b))
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::DivisionByZero,
                            "mod by zero",
                        )
                        .with_span(span));
                    }
                    Some(a.wrapping_rem(b))
                }
                _ => unreachable!(),
            };
            out.map(Value::Int).ok_or_else(|| {
                RuntimeError::new(RuntimeErrorKind::Overflow, "arithmetic overflow")
                    .with_span(span)
            })
        }
        BinOp::Eq => Ok(Value::Bool(a == b)),
        BinOp::Ne => Ok(Value::Bool(a != b)),
        BinOp::Lt => Ok(Value::Bool(a < b)),
        BinOp::Le => Ok(Value::Bool(a <= b)),
        BinOp::Gt => Ok(Value::Bool(a > b)),
        BinOp::Ge => Ok(Value::Bool(a >= b)),
        BinOp::In => Err(RuntimeError::internal("`in` with non-set operand").with_span(span)),
        BinOp::And | BinOp::Or => unreachable!("logic operators use logic_join"),
    }
}

/// Apply a non-logical binary operator to two evaluated operands. (`and`
/// and `or` never reach this: they short-circuit in the executors and
/// combine through [`logic_join`].)
pub(crate) fn apply_binary(
    policy: UndefinedPolicy,
    op: BinOp,
    lv: &Value,
    rv: &Value,
    span: Span,
) -> RtResult<Value> {
    if matches!(lv, Value::Undefined) || matches!(rv, Value::Undefined) {
        return undefined_or(
            policy,
            "operand of a binary operator is undefined",
            RuntimeErrorKind::UndefinedValue,
        );
    }
    if let (Value::Int(a), Value::Int(b)) = (lv, rv) {
        if !matches!(op, BinOp::In) {
            return apply_binary_ints(op, *a, *b, span);
        }
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            Err(RuntimeError::internal(format!("arithmetic on {} and {}", lv, rv))
                .with_span(span))
        }
        BinOp::Eq => Ok(Value::Bool(values_equal(lv, rv))),
        BinOp::Ne => Ok(Value::Bool(!values_equal(lv, rv))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (Some(a), Some(b)) = (lv.ordinal(), rv.ordinal()) else {
                return Err(RuntimeError::internal(format!(
                    "ordering comparison on {} and {}",
                    lv, rv
                ))
                .with_span(span));
            };
            Ok(Value::Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }))
        }
        BinOp::In => {
            let Some(a) = lv.ordinal() else {
                return Err(RuntimeError::internal(format!("`in` with non-ordinal {}", lv))
                    .with_span(span));
            };
            let Value::Set(s) = rv else {
                return Err(
                    RuntimeError::internal(format!("`in` with non-set {}", rv)).with_span(span)
                );
            };
            Ok(Value::Bool(s.contains(a)))
        }
        BinOp::And | BinOp::Or => unreachable!("logic operators use logic_join"),
    }
}

/// Was the left operand of `and`/`or` already decisive? Short-circuit
/// check applied after the left side is evaluated but before the right
/// side is touched — identical in both executors.
pub(crate) fn logic_short(
    policy: UndefinedPolicy,
    and: bool,
    lv: &Value,
    span: Span,
) -> RtResult<Option<bool>> {
    let lb = as_tribool(policy, lv, span)?;
    Ok(match (and, lb) {
        (true, Some(false)) => Some(false),
        (false, Some(true)) => Some(true),
        _ => None,
    })
}

/// Combine both evaluated operands of `and`/`or` under Kleene logic.
pub(crate) fn logic_join(
    policy: UndefinedPolicy,
    and: bool,
    lv: &Value,
    rv: &Value,
    span: Span,
) -> RtResult<Value> {
    let lb = as_tribool(policy, lv, span)?;
    let rb = as_tribool(policy, rv, span)?;
    let out = match (and, lb, rb) {
        (true, Some(a), Some(b)) => Some(a && b),
        (false, Some(a), Some(b)) => Some(a || b),
        // Kleene: `? and false` is false, `? or true` is true.
        (true, None, Some(false)) | (true, Some(false), None) => Some(false),
        (false, None, Some(true)) | (false, Some(true), None) => Some(true),
        _ => None,
    };
    Ok(match out {
        Some(b) => Value::Bool(b),
        None => Value::Undefined,
    })
}

/// A control-statement condition: strictly boolean; undefined raises
/// `UndefinedControl` in partial mode (§5.3).
pub(crate) fn control_bool(policy: UndefinedPolicy, v: &Value, span: Span) -> RtResult<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Undefined => Err(match policy {
            UndefinedPolicy::Error => {
                RuntimeError::undefined("condition is undefined").with_span(span)
            }
            UndefinedPolicy::Propagate => RuntimeError::undefined_control(
                "condition on an undefined value; partial-trace analysis \
                 requires the §5.3 normal-form transformation",
            )
            .with_span(span),
        }),
        other => {
            Err(RuntimeError::internal(format!("non-boolean condition {}", other)).with_span(span))
        }
    }
}

/// A `case` scrutinee's ordinal, with the §5.3 diagnostics.
pub(crate) fn case_ordinal(policy: UndefinedPolicy, v: &Value, span: Span) -> RtResult<i64> {
    match v {
        Value::Undefined => Err(match policy {
            UndefinedPolicy::Error => {
                RuntimeError::undefined("case scrutinee is undefined").with_span(span)
            }
            UndefinedPolicy::Propagate => RuntimeError::undefined_control(
                "case on an undefined value; partial-trace analysis \
                 requires the §5.3 normal-form transformation",
            )
            .with_span(span),
        }),
        other => other
            .ordinal()
            .ok_or_else(|| RuntimeError::internal("case scrutinee not ordinal").with_span(span)),
    }
}

/// Interpret an evaluated `provided` guard: undefined counts as true under
/// the propagate policy, per the paper's rule for partial traces.
pub(crate) fn guard_bool(policy: UndefinedPolicy, v: Value) -> RtResult<bool> {
    match v {
        Value::Bool(b) => Ok(b),
        Value::Undefined => match policy {
            UndefinedPolicy::Propagate => Ok(true),
            UndefinedPolicy::Error => Err(RuntimeError::undefined(
                "provided clause evaluated an undefined value",
            )),
        },
        other => Err(RuntimeError::internal(format!(
            "guard evaluated to non-boolean {}",
            other
        ))),
    }
}

/// Structural equality for the `=` operator. Pointer equality is by
/// reference; sets by membership; composites elementwise.
pub(crate) fn values_equal(a: &Value, b: &Value) -> bool {
    a == b
}
