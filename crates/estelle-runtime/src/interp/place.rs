//! Place (l-value) resolution.
//!
//! A [`CPlace`] resolves to a *root* (global slot, frame slot or heap cell)
//! plus a path of positions through nested arrays/records. Resolution
//! evaluates index expressions and checks bounds; navigation then borrows
//! the target value for reading or writing.

use super::{Interp, Store};
use crate::env::OutputSink;
use crate::error::{RtResult, RuntimeError};
use crate::heap::HeapRef;
use crate::ir::{CPlace, Slot};
use crate::value::Value;

/// Where a resolved place lives.
#[derive(Clone, Debug)]
pub(crate) enum Root {
    Global(usize),
    Local(usize),
    Heap(HeapRef),
}

/// A fully resolved place: root storage plus element positions.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedPlace {
    pub root: Root,
    pub path: Vec<usize>,
}

impl<'m> Interp<'m> {
    /// Resolve a place, evaluating indices and following pointers.
    pub(super) fn resolve_place(
        &self,
        place: &CPlace,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<ResolvedPlace> {
        match place {
            CPlace::Var(Slot::Global(i)) => Ok(ResolvedPlace {
                root: Root::Global(*i),
                path: Vec::new(),
            }),
            CPlace::Var(Slot::Local(i)) => Ok(ResolvedPlace {
                root: Root::Local(*i),
                path: Vec::new(),
            }),
            CPlace::Field(base, pos) => {
                let mut r = self.resolve_place(base, store, frame, sink, depth)?;
                r.path.push(*pos);
                Ok(r)
            }
            CPlace::Index {
                base,
                index,
                lo,
                len,
                span,
            } => {
                let mut r = self.resolve_place(base, store, frame, sink, depth)?;
                let iv = self.eval(index, store, frame, sink, depth)?;
                let ord = self.require_ordinal(&iv, *span)?;
                let off = ord - lo;
                if off < 0 || off as usize >= *len {
                    return Err(RuntimeError::bounds(format!(
                        "index {} outside bounds {}..{}",
                        ord,
                        lo,
                        lo + *len as i64 - 1
                    ))
                    .with_span(*span));
                }
                r.path.push(off as usize);
                Ok(r)
            }
            CPlace::Deref(base, span) => {
                let r = self.resolve_place(base, store, frame, sink, depth)?;
                let v = read_resolved(&r, store, frame)?;
                match v {
                    Value::Pointer(Some(href)) => Ok(ResolvedPlace {
                        root: Root::Heap(*href),
                        path: Vec::new(),
                    }),
                    Value::Pointer(None) => {
                        Err(RuntimeError::dangling("dereference of nil").with_span(*span))
                    }
                    Value::Undefined => Err(RuntimeError::undefined(
                        "dereference of an undefined pointer",
                    )
                    .with_span(*span)),
                    other => Err(RuntimeError::internal(format!(
                        "dereference of non-pointer value {}",
                        other
                    ))
                    .with_span(*span)),
                }
            }
        }
    }

    /// Read a place's current value (cloned).
    pub(super) fn read_place(
        &self,
        place: &CPlace,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<Value> {
        let r = self.resolve_place(place, store, frame, sink, depth)?;
        read_resolved(&r, store, frame).cloned()
    }

    /// Overwrite a place with `value`.
    pub(super) fn write_place(
        &self,
        place: &CPlace,
        value: Value,
        store: &mut Store<'_>,
        frame: &mut Vec<Value>,
        sink: &mut dyn OutputSink,
        depth: usize,
    ) -> RtResult<()> {
        let r = self.resolve_place(place, store, frame, sink, depth)?;
        let target = write_resolved(&r, store, frame)?;
        *target = value;
        Ok(())
    }
}

/// Navigate to the value a resolved place denotes.
pub(crate) fn read_resolved<'v>(
    r: &ResolvedPlace,
    store: &'v Store<'_>,
    frame: &'v [Value],
) -> RtResult<&'v Value> {
    let mut v: &Value = match &r.root {
        Root::Global(i) => store
            .globals
            .get(*i)
            .ok_or_else(|| RuntimeError::internal("global slot out of range"))?,
        Root::Local(i) => frame
            .get(*i)
            .ok_or_else(|| RuntimeError::internal("frame slot out of range"))?,
        Root::Heap(href) => store.heap.get(*href)?,
    };
    for &pos in &r.path {
        v = match v {
            Value::Array(vs) | Value::Record(vs) => vs
                .get(pos)
                .ok_or_else(|| RuntimeError::internal("place path out of range"))?,
            Value::Undefined => {
                return Err(RuntimeError::undefined(
                    "component access inside an undefined composite",
                ))
            }
            other => {
                return Err(RuntimeError::internal(format!(
                    "place path through non-composite {}",
                    other
                )))
            }
        };
    }
    Ok(v)
}

/// Navigate to the mutable value a resolved place denotes.
pub(crate) fn write_resolved<'v>(
    r: &ResolvedPlace,
    store: &'v mut Store<'_>,
    frame: &'v mut [Value],
) -> RtResult<&'v mut Value> {
    let mut v: &mut Value = match &r.root {
        Root::Global(i) => store
            .globals
            .get_mut(*i)
            .ok_or_else(|| RuntimeError::internal("global slot out of range"))?,
        Root::Local(i) => frame
            .get_mut(*i)
            .ok_or_else(|| RuntimeError::internal("frame slot out of range"))?,
        Root::Heap(href) => store.heap.get_mut(*href)?,
    };
    for &pos in &r.path {
        v = match v {
            Value::Array(vs) | Value::Record(vs) => vs
                .get_mut(pos)
                .ok_or_else(|| RuntimeError::internal("place path out of range"))?,
            Value::Undefined => {
                return Err(RuntimeError::undefined(
                    "component assignment inside an undefined composite",
                ))
            }
            other => {
                return Err(RuntimeError::internal(format!(
                    "place path through non-composite {}",
                    other
                )))
            }
        };
    }
    Ok(v)
}
