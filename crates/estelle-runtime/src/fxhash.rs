//! A fast non-cryptographic streaming hasher (FxHash-style multiply-xor).
//!
//! The trace analyzer hashes whole machine states on every *Save* (the
//! snapshot-interning cache) and on every node under the visited-set
//! extension, and the heap hashes chunks of cells to maintain its cached
//! content digests. SipHash's security margin would be pure overhead in
//! all three places; collisions are survivable anyway — every consumer
//! verifies candidate hits by full equality comparison.

use std::hash::Hasher;

#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn digest<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(digest(&42u64), digest(&42u64));
        assert_eq!(digest(&"hello"), digest(&"hello"));
        assert_eq!(digest(&vec![1u32, 2, 3]), digest(&vec![1u32, 2, 3]));
    }

    #[test]
    fn different_values_hash_different() {
        assert_ne!(digest(&1u64), digest(&2u64));
        assert_ne!(digest(&"ab"), digest(&"ba"));
        // Length is mixed into the trailing partial word.
        assert_ne!(digest(&[0u8; 3][..]), digest(&[0u8; 4][..]));
    }
}
