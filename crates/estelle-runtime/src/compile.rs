//! The compiler: lowers an [`AnalyzedModule`] to the executable IR.
//!
//! This is the *Dingo* analog. Where Dingo emitted C++ classes linked
//! against a run-time library, we lower to the slot-addressed IR in
//! [`crate::ir`] and interpret it — the machinery the paper's trace
//! analysis actually exercises (generate / update / save / restore) is
//! identical.
//!
//! Lowering performs:
//! * name → slot resolution (globals, frame locals, `when` parameters,
//!   `any` bindings);
//! * constant folding (module constants, enum literals, arithmetic);
//! * record-field → position and array-bounds caching;
//! * expansion of `any` clauses into one [`CompiledTransition`] per value
//!   combination — this is why the paper's LAPD reaches "over 800"
//!   compiled transitions from far fewer declarations.

use crate::error::{RtResult, RuntimeError};
use crate::ir::*;
use crate::value::{SmallSet, Value};
use estelle_ast::{BinOp, Expr, ExprKind, ForDirection, Stmt, StmtKind, UnOp};
use estelle_frontend::sema::model::{AnalyzedModule, ConstValue, StateId};
use estelle_frontend::sema::types::{Type, TypeId, TY_BOOLEAN, TY_INTEGER};
use std::collections::HashMap;

/// A fully compiled, executable module.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// The analyzed source model (types, IP signatures, state names …),
    /// kept for the analyzer's diagnostics and trace rendering.
    pub analyzed: AnalyzedModule,
    pub routines: Vec<CompiledRoutine>,
    pub init_to: StateId,
    pub init_block: Vec<CStmt>,
    pub transitions: Vec<CompiledTransition>,
    /// Global slot types, aligned with `analyzed.vars`.
    pub globals: Vec<TypeId>,
}

impl CompiledModule {
    /// Number of compiled transitions (after state-list and `any`
    /// expansion) — the figure the paper quotes for spec size.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }
}

/// Compile an analyzed module. Failures indicate compiler bugs (semantic
/// analysis already validated the module) or limits (e.g. `any` products).
pub fn compile(analyzed: AnalyzedModule) -> RtResult<CompiledModule> {
    let globals: Vec<TypeId> = analyzed.vars.iter().map(|v| v.ty).collect();

    let mut routines = Vec::new();
    for r in &analyzed.routines {
        routines.push(compile_routine(&analyzed, r)?);
    }

    // The initialize block runs with an empty frame.
    let cx = Cx {
        m: &analyzed,
        frame: HashMap::new(),
        consts: HashMap::new(),
    };
    let init_block = cx.lower_block(&analyzed.initialize.block)?;
    let init_to = analyzed.initialize.to;

    let mut transitions = Vec::new();
    for (decl_index, t) in analyzed.transitions.iter().enumerate() {
        compile_transition(&analyzed, decl_index, t, &mut transitions)?;
    }

    Ok(CompiledModule {
        routines,
        init_to,
        init_block,
        transitions,
        globals,
        analyzed,
    })
}

/// Hard cap on `any` expansion per declaration, defending against
/// accidental cross-product blowups.
const MAX_ANY_EXPANSION: usize = 4096;

fn compile_routine(
    m: &AnalyzedModule,
    r: &estelle_frontend::sema::model::RoutineInfo,
) -> RtResult<CompiledRoutine> {
    let mut frame = HashMap::new();
    let mut slot_types = Vec::new();
    for p in &r.params {
        frame.insert(p.name.clone(), (slot_types.len(), p.ty));
        slot_types.push(p.ty);
    }
    for (n, t) in &r.locals {
        frame.insert(n.clone(), (slot_types.len(), *t));
        slot_types.push(*t);
    }
    let result_slot = r.result.map(|res| {
        let slot = slot_types.len();
        frame.insert(r.name.to_ascii_lowercase(), (slot, res));
        slot_types.push(res);
        slot
    });
    let cx = Cx {
        m,
        frame,
        consts: r.consts.clone(),
    };
    let body = cx.lower_block(&r.body)?;
    Ok(CompiledRoutine {
        name: r.name.clone(),
        params: r.params.len(),
        by_ref: r.params.iter().map(|p| p.by_ref).collect(),
        frame_size: slot_types.len(),
        result_slot,
        slot_types,
        body,
    })
}

fn compile_transition(
    m: &AnalyzedModule,
    decl_index: usize,
    t: &estelle_frontend::sema::model::TransitionInfo,
    out: &mut Vec<CompiledTransition>,
) -> RtResult<()> {
    // Frame layout: [any bindings..., when parameters...].
    let mut frame = HashMap::new();
    let mut slot_types = Vec::new();
    let mut any_types = Vec::new();
    for (name, ty) in &t.any {
        frame.insert(name.clone(), (slot_types.len(), *ty));
        slot_types.push(*ty);
        any_types.push(*ty);
    }
    let when = match t.when {
        None => None,
        Some((ip, idx)) => {
            let sig = &m.ip(ip).inputs[idx];
            for (pname, pty) in &sig.params {
                frame.insert(pname.clone(), (slot_types.len(), *pty));
                slot_types.push(*pty);
            }
            Some((ip.0 as usize, idx, sig.params.len()))
        }
    };

    let cx = Cx {
        m,
        frame,
        consts: HashMap::new(),
    };
    let provided = t.provided.as_ref().map(|p| cx.lower_expr(p)).transpose()?;
    let body = cx.lower_block(&t.block)?;

    // Expand `any` clauses into concrete bindings.
    let mut domains = Vec::new();
    let mut total: usize = 1;
    for (_, ty) in &t.any {
        let (lo, hi) = m
            .types
            .ordinal_range(*ty)
            .ok_or_else(|| RuntimeError::internal("`any` domain not finite"))?;
        let n = (hi - lo + 1) as usize;
        total = total.saturating_mul(n);
        domains.push((lo, hi));
    }
    if total > MAX_ANY_EXPANSION {
        return Err(RuntimeError::internal(format!(
            "`any` expansion of transition `{}` would create {} instances (limit {})",
            t.name, total, MAX_ANY_EXPANSION
        )));
    }

    let mut bindings = vec![Vec::new()];
    for (lo, hi) in &domains {
        let mut next = Vec::with_capacity(bindings.len() * (*hi - *lo + 1) as usize);
        for b in &bindings {
            for v in *lo..=*hi {
                let mut nb = b.clone();
                nb.push(v);
                next.push(nb);
            }
        }
        bindings = next;
    }

    for binding in bindings {
        let name = if binding.is_empty() {
            t.name.clone()
        } else {
            let parts: Vec<String> = t
                .any
                .iter()
                .zip(&binding)
                .map(|((n, _), v)| format!("{}={}", n, v))
                .collect();
            format!("{}[{}]", t.name, parts.join(","))
        };
        out.push(CompiledTransition {
            decl_index,
            name,
            from: t.from.clone(),
            to: t.to,
            when,
            provided: provided.clone(),
            priority: t.priority,
            any_bindings: binding,
            any_types: any_types.clone(),
            frame_size: slot_types.len(),
            slot_types: slot_types.clone(),
            body: body.clone(),
            span: t.span,
        });
    }
    Ok(())
}

/// Expression typing produced during lowering; mirrors the checker's
/// classification of the polymorphic literals.
#[derive(Clone, Copy, Debug)]
enum ETy {
    Of(TypeId),
    Nil,
    EmptySet,
}

/// Lowering context: the module tables plus the current frame.
struct Cx<'a> {
    m: &'a AnalyzedModule,
    /// name → (frame slot, type)
    frame: HashMap<String, (usize, TypeId)>,
    /// extra constants (routine-local)
    consts: HashMap<String, ConstValue>,
}

fn const_to_value(v: ConstValue) -> Value {
    match v {
        ConstValue::Int(i) => Value::Int(i),
        ConstValue::Bool(b) => Value::Bool(b),
        ConstValue::Enum(t, o) => Value::Enum(t, o),
    }
}

impl<'a> Cx<'a> {
    fn internal(&self, msg: impl Into<String>) -> RuntimeError {
        RuntimeError::internal(msg)
    }

    fn lower_block(&self, stmts: &[Stmt]) -> RtResult<Vec<CStmt>> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            if let Some(c) = self.lower_stmt(s)? {
                out.push(c);
            }
        }
        Ok(out)
    }

    fn lower_stmt(&self, s: &Stmt) -> RtResult<Option<CStmt>> {
        Ok(Some(match &s.kind {
            StmtKind::Empty => return Ok(None),
            StmtKind::Assign { target, value } => {
                let (place, _) = self.lower_place(target)?;
                let (value, _) = self.lower_expr_typed(value)?;
                CStmt::Assign(place, value, s.span)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond)?;
                let t = self.lower_stmt_as_block(then_branch)?;
                let e = match else_branch {
                    Some(b) => self.lower_stmt_as_block(b)?,
                    None => Vec::new(),
                };
                CStmt::If(c, t, e, s.span)
            }
            StmtKind::While { cond, body } => CStmt::While(
                self.lower_expr(cond)?,
                self.lower_stmt_as_block(body)?,
                s.span,
            ),
            StmtKind::Repeat { body, cond } => CStmt::Repeat(
                self.lower_block(body)?,
                self.lower_expr(cond)?,
                s.span,
            ),
            StmtKind::For {
                var,
                from,
                dir,
                to,
                body,
            } => {
                let (place, _) = self.lower_name_place(var)?;
                CStmt::For {
                    var: place,
                    from: self.lower_expr(from)?,
                    down: *dir == ForDirection::Down,
                    to: self.lower_expr(to)?,
                    body: self.lower_stmt_as_block(body)?,
                    span: s.span,
                }
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                let sc = self.lower_expr(scrutinee)?;
                let mut carms = Vec::new();
                for arm in arms {
                    let mut labels = Vec::new();
                    for l in &arm.labels {
                        let (e, _) = self.lower_expr_typed(l)?;
                        match e {
                            CExpr::Const(v) => labels.push(v.ordinal().ok_or_else(|| {
                                self.internal("case label is not ordinal")
                            })?),
                            _ => return Err(self.internal("case label is not constant")),
                        }
                    }
                    carms.push((labels, self.lower_stmt_as_block(&arm.body)?));
                }
                let else_arm = match else_arm {
                    Some(b) => Some(self.lower_block(b)?),
                    None => None,
                };
                CStmt::Case {
                    scrutinee: sc,
                    arms: carms,
                    else_arm,
                    span: s.span,
                }
            }
            StmtKind::Compound(stmts) => {
                // Flatten: compound statements have no scope of their own.
                let inner = self.lower_block(stmts)?;
                if inner.is_empty() {
                    return Ok(None);
                }
                // Represent as an always-true `if` to avoid a dedicated
                // variant; cheap and keeps the IR small.
                CStmt::If(CExpr::Const(Value::Bool(true)), inner, Vec::new(), s.span)
            }
            StmtKind::Output {
                ip,
                interaction,
                args,
            } => {
                let ip_id = self
                    .m
                    .lookup_ip(ip.key())
                    .ok_or_else(|| self.internal("unknown ip post-sema"))?;
                let idx = self
                    .m
                    .ip(ip_id)
                    .output_index(interaction.key())
                    .ok_or_else(|| self.internal("unknown interaction post-sema"))?;
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<RtResult<Vec<_>>>()?;
                CStmt::Output {
                    ip: ip_id.0 as usize,
                    interaction: idx,
                    args,
                    span: s.span,
                }
            }
            StmtKind::ProcCall { name, args } => {
                let call = self.lower_call(name, args, s.span)?;
                CStmt::Call(call)
            }
            StmtKind::New(target) => {
                let (place, ty) = self.lower_place(target)?;
                let pointee = match self.m.types.get(self.m.types.base_of(ty)) {
                    Type::Pointer { target } => *target,
                    _ => return Err(self.internal("new on non-pointer post-sema")),
                };
                CStmt::New(place, pointee, s.span)
            }
            StmtKind::Dispose(target) => {
                let (place, _) = self.lower_place(target)?;
                CStmt::Dispose(place, s.span)
            }
        }))
    }

    fn lower_stmt_as_block(&self, s: &Stmt) -> RtResult<Vec<CStmt>> {
        // Unwrap compound statements directly into a block.
        if let StmtKind::Compound(stmts) = &s.kind {
            return self.lower_block(stmts);
        }
        Ok(self.lower_stmt(s)?.into_iter().collect())
    }

    fn lower_call(&self, name: &estelle_ast::Ident, args: &[Expr], span: estelle_ast::Span) -> RtResult<CCall> {
        let rid = self
            .m
            .routine_index
            .get(name.key())
            .copied()
            .ok_or_else(|| self.internal("unknown routine post-sema"))?;
        let routine = self.m.routine(rid);
        let mut cargs = Vec::with_capacity(args.len());
        for (p, a) in routine.params.iter().zip(args) {
            if p.by_ref {
                let (place, _) = self.lower_place(a)?;
                cargs.push(CArg::Ref(place));
            } else {
                cargs.push(CArg::Value(self.lower_expr(a)?));
            }
        }
        Ok(CCall {
            routine: rid.0 as usize,
            args: cargs,
            span,
        })
    }

    fn lower_expr(&self, e: &Expr) -> RtResult<CExpr> {
        Ok(self.lower_expr_typed(e)?.0)
    }

    fn lower_expr_typed(&self, e: &Expr) -> RtResult<(CExpr, ETy)> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((CExpr::Const(Value::Int(*v)), ETy::Of(TY_INTEGER))),
            ExprKind::BoolLit(b) => Ok((CExpr::Const(Value::Bool(*b)), ETy::Of(TY_BOOLEAN))),
            ExprKind::NilLit => Ok((CExpr::Const(Value::Pointer(None)), ETy::Nil)),
            ExprKind::Name(n) => {
                if let Some(&(slot, ty)) = self.frame.get(n.key()) {
                    return Ok((CExpr::Read(Slot::Local(slot)), ETy::Of(ty)));
                }
                if let Some(v) = self.consts.get(n.key()) {
                    return Ok((CExpr::Const(const_to_value(*v)), self.const_ety(*v)));
                }
                if let Some(&vid) = self.m.var_index.get(n.key()) {
                    let ty = self.m.var(vid).ty;
                    return Ok((CExpr::Read(Slot::Global(vid.0 as usize)), ETy::Of(ty)));
                }
                if let Some(v) = self.m.consts.get(n.key()) {
                    return Ok((CExpr::Const(const_to_value(*v)), self.const_ety(*v)));
                }
                if let Some(&(ty, ord)) = self.m.enum_literals.get(n.key()) {
                    return Ok((CExpr::Const(Value::Enum(ty, ord)), ETy::Of(ty)));
                }
                // Parameterless function call.
                if let Some(&rid) = self.m.routine_index.get(n.key()) {
                    let routine = self.m.routine(rid);
                    if let Some(res) = routine.result {
                        return Ok((
                            CExpr::Call(CCall {
                                routine: rid.0 as usize,
                                args: Vec::new(),
                                span: n.span,
                            }),
                            ETy::Of(res),
                        ));
                    }
                }
                Err(self.internal(format!("unresolved name `{}` post-sema", n)))
            }
            ExprKind::Field(base, field) => {
                let (b, bt) = self.lower_expr_typed(base)?;
                let ETy::Of(bt) = bt else {
                    return Err(self.internal("field access on literal"));
                };
                let (pos, fty) = self.field_position(bt, field.key())?;
                Ok((CExpr::Field(Box::new(b), pos), ETy::Of(fty)))
            }
            ExprKind::Index(base, idx) => {
                let (b, bt) = self.lower_expr_typed(base)?;
                let ETy::Of(bt) = bt else {
                    return Err(self.internal("index on literal"));
                };
                let (lo, len, elem) = self.array_info(bt)?;
                let i = self.lower_expr(idx)?;
                Ok((
                    CExpr::Index {
                        base: Box::new(b),
                        index: Box::new(i),
                        lo,
                        len,
                    },
                    ETy::Of(elem),
                ))
            }
            ExprKind::Deref(base) => {
                let (b, bt) = self.lower_expr_typed(base)?;
                let ETy::Of(bt) = bt else {
                    return Err(self.internal("deref of literal"));
                };
                let target = match self.m.types.get(self.m.types.base_of(bt)) {
                    Type::Pointer { target } => *target,
                    _ => return Err(self.internal("deref of non-pointer post-sema")),
                };
                Ok((CExpr::Deref(Box::new(b)), ETy::Of(target)))
            }
            ExprKind::Unary(op, operand) => {
                let v = self.lower_expr(operand)?;
                // Fold constants.
                if let CExpr::Const(c) = &v {
                    match (op, c) {
                        (UnOp::Neg, Value::Int(i)) => {
                            return Ok((CExpr::Const(Value::Int(-i)), ETy::Of(TY_INTEGER)))
                        }
                        (UnOp::Plus, Value::Int(i)) => {
                            return Ok((CExpr::Const(Value::Int(*i)), ETy::Of(TY_INTEGER)))
                        }
                        (UnOp::Not, Value::Bool(b)) => {
                            return Ok((CExpr::Const(Value::Bool(!b)), ETy::Of(TY_BOOLEAN)))
                        }
                        _ => {}
                    }
                }
                let ty = if *op == UnOp::Not {
                    TY_BOOLEAN
                } else {
                    TY_INTEGER
                };
                Ok((
                    CExpr::Unary(*op, Box::new(v), e.span),
                    ETy::Of(ty),
                ))
            }
            ExprKind::Binary(op, l, r) => {
                let (lv, _) = self.lower_expr_typed(l)?;
                let (rv, _) = self.lower_expr_typed(r)?;
                let ty = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => TY_INTEGER,
                    _ => TY_BOOLEAN,
                };
                // Fold integer arithmetic on constants.
                if let (CExpr::Const(Value::Int(a)), CExpr::Const(Value::Int(b))) = (&lv, &rv) {
                    let folded = match op {
                        BinOp::Add => a.checked_add(*b).map(Value::Int),
                        BinOp::Sub => a.checked_sub(*b).map(Value::Int),
                        BinOp::Mul => a.checked_mul(*b).map(Value::Int),
                        BinOp::Lt => Some(Value::Bool(a < b)),
                        BinOp::Le => Some(Value::Bool(a <= b)),
                        BinOp::Gt => Some(Value::Bool(a > b)),
                        BinOp::Ge => Some(Value::Bool(a >= b)),
                        BinOp::Eq => Some(Value::Bool(a == b)),
                        BinOp::Ne => Some(Value::Bool(a != b)),
                        _ => None,
                    };
                    if let Some(v) = folded {
                        return Ok((CExpr::Const(v), ETy::Of(ty)));
                    }
                }
                Ok((
                    CExpr::Binary(*op, Box::new(lv), Box::new(rv), e.span),
                    ETy::Of(ty),
                ))
            }
            ExprKind::Call(name, args) => {
                let call = self.lower_call(name, args, e.span)?;
                let res = self
                    .m
                    .routine(estelle_frontend::sema::model::RoutineId(
                        call.routine as u32,
                    ))
                    .result
                    .ok_or_else(|| self.internal("procedure used as function post-sema"))?;
                Ok((CExpr::Call(call), ETy::Of(res)))
            }
            ExprKind::SetCtor(elems) => {
                let mut celems = Vec::new();
                let mut all_const = true;
                for el in elems {
                    match el {
                        estelle_ast::expr::SetElem::Single(x) => {
                            let c = self.lower_expr(x)?;
                            all_const &= matches!(c, CExpr::Const(_));
                            celems.push(CSetElem::Single(c));
                        }
                        estelle_ast::expr::SetElem::Range(a, b) => {
                            let ca = self.lower_expr(a)?;
                            let cb = self.lower_expr(b)?;
                            all_const &=
                                matches!(ca, CExpr::Const(_)) && matches!(cb, CExpr::Const(_));
                            celems.push(CSetElem::Range(ca, cb));
                        }
                    }
                }
                if all_const {
                    // Fold fully constant constructors.
                    let mut s = SmallSet::empty();
                    for el in &celems {
                        match el {
                            CSetElem::Single(CExpr::Const(v)) => {
                                s.insert(v.ordinal().ok_or_else(|| {
                                    self.internal("non-ordinal set element")
                                })?);
                            }
                            CSetElem::Range(CExpr::Const(a), CExpr::Const(b)) => {
                                let (a, b) = (
                                    a.ordinal().ok_or_else(|| {
                                        self.internal("non-ordinal set element")
                                    })?,
                                    b.ordinal().ok_or_else(|| {
                                        self.internal("non-ordinal set element")
                                    })?,
                                );
                                for v in a..=b {
                                    s.insert(v);
                                }
                            }
                            _ => unreachable!("all_const checked"),
                        }
                    }
                    return Ok((CExpr::Const(Value::Set(s)), ETy::EmptySet));
                }
                Ok((CExpr::SetCtor(celems, e.span), ETy::EmptySet))
            }
        }
    }

    fn lower_place(&self, e: &Expr) -> RtResult<(CPlace, TypeId)> {
        match &e.kind {
            ExprKind::Name(n) => self.lower_name_place(n),
            ExprKind::Field(base, field) => {
                let (b, bt) = self.lower_place(base)?;
                let (pos, fty) = self.field_position(bt, field.key())?;
                Ok((CPlace::Field(Box::new(b), pos), fty))
            }
            ExprKind::Index(base, idx) => {
                let (b, bt) = self.lower_place(base)?;
                let (lo, len, elem) = self.array_info(bt)?;
                let i = self.lower_expr(idx)?;
                Ok((
                    CPlace::Index {
                        base: Box::new(b),
                        index: Box::new(i),
                        lo,
                        len,
                        span: e.span,
                    },
                    elem,
                ))
            }
            ExprKind::Deref(base) => {
                let (b, bt) = self.lower_place(base)?;
                let target = match self.m.types.get(self.m.types.base_of(bt)) {
                    Type::Pointer { target } => *target,
                    _ => return Err(self.internal("deref of non-pointer post-sema")),
                };
                Ok((CPlace::Deref(Box::new(b), e.span), target))
            }
            _ => Err(self.internal("assignment target is not a place post-sema")),
        }
    }

    fn lower_name_place(&self, n: &estelle_ast::Ident) -> RtResult<(CPlace, TypeId)> {
        if let Some(&(slot, ty)) = self.frame.get(n.key()) {
            return Ok((CPlace::Var(Slot::Local(slot)), ty));
        }
        if let Some(&vid) = self.m.var_index.get(n.key()) {
            return Ok((
                CPlace::Var(Slot::Global(vid.0 as usize)),
                self.m.var(vid).ty,
            ));
        }
        Err(self.internal(format!("unresolved variable `{}` post-sema", n)))
    }

    fn field_position(&self, record_ty: TypeId, field: &str) -> RtResult<(usize, TypeId)> {
        match self.m.types.get(self.m.types.base_of(record_ty)) {
            Type::Record { fields } => fields
                .iter()
                .position(|(name, _)| name == field)
                .map(|pos| (pos, fields[pos].1))
                .ok_or_else(|| self.internal("unknown record field post-sema")),
            _ => Err(self.internal("field access on non-record post-sema")),
        }
    }

    fn array_info(&self, array_ty: TypeId) -> RtResult<(i64, usize, TypeId)> {
        match *self.m.types.get(self.m.types.base_of(array_ty)) {
            Type::Array { lo, hi, elem, .. } => Ok((lo, (hi - lo + 1) as usize, elem)),
            _ => Err(self.internal("indexing non-array post-sema")),
        }
    }

    fn const_ety(&self, v: ConstValue) -> ETy {
        match v {
            ConstValue::Int(_) => ETy::Of(TY_INTEGER),
            ConstValue::Bool(_) => ETy::Of(TY_BOOLEAN),
            ConstValue::Enum(t, _) => ETy::Of(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_frontend::analyze;

    fn compiled(src: &str) -> CompiledModule {
        compile(analyze(src).expect("analyzes")).expect("compiles")
    }

    #[test]
    fn any_expansion_multiplies_transitions() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                var n : integer;
                state S;
                initialize to S begin n := 0 end;
                trans
                from S to S any i : 0..3 do any j : 0..1 do begin n := i + j end;
            end;
            end.
        "#;
        let m = compiled(src);
        assert_eq!(m.transition_count(), 8);
        assert_eq!(m.transitions[0].any_bindings, vec![0, 0]);
        assert_eq!(m.transitions[7].any_bindings, vec![3, 1]);
        assert!(m.transitions[5].name.contains('['));
    }

    #[test]
    fn when_params_get_frame_slots() {
        let src = r#"
            specification s;
            channel C(a, b); by a: put(x : integer; y : boolean); end;
            module M process; ip P : C(b); end;
            body MB for M;
                var n : integer;
                state S;
                initialize to S begin n := 0 end;
                trans
                from S to S when P.put provided y begin n := x end;
            end;
            end.
        "#;
        let m = compiled(src);
        let t = &m.transitions[0];
        assert_eq!(t.when, Some((0, 0, 2)));
        assert_eq!(t.frame_size, 2);
        assert!(t.provided.is_some());
    }

    #[test]
    fn constant_folding_in_expressions() {
        let src = r#"
            specification s;
            const width = 4;
            module M process; end;
            body MB for M;
                var n : integer;
                state S;
                initialize to S begin n := width * 2 + 1 end;
            end;
            end.
        "#;
        let m = compiled(src);
        match &m.init_block[0] {
            CStmt::Assign(_, CExpr::Const(Value::Int(9)), _) => {}
            other => panic!("expected folded constant, got {:?}", other),
        }
    }

    #[test]
    fn globals_align_with_vars() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                var a : integer; b : boolean;
                state S;
                initialize to S begin a := 1; b := true end;
            end;
            end.
        "#;
        let m = compiled(src);
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0], TY_INTEGER);
        assert_eq!(m.globals[1], TY_BOOLEAN);
    }

    #[test]
    fn statelist_preserved_not_expanded() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1, S2, S3;
                initialize to S1 begin end;
                trans
                from S1, S2, S3 to S1 priority 1 begin end;
            end;
            end.
        "#;
        let m = compiled(src);
        assert_eq!(m.transition_count(), 1);
        assert_eq!(m.transitions[0].from.len(), 3);
    }
}
