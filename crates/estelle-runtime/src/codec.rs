//! Stable binary encoding of runtime state.
//!
//! The trace analyzer's durable checkpoints (see the `tango` crate's
//! checkpoint codec) must serialize [`MachineState`] — control state,
//! module variables, dynamic memory — so a limit-stopped analysis can be
//! resumed by a *different process*, possibly after the original one was
//! killed. This module provides the byte-level primitives and the
//! encode/decode of everything the runtime owns. It is deliberately
//! hand-rolled (no external serialization crates, matching the repo's
//! no-dependency rule) and **checksum-free**: integrity, versioning and
//! atomicity are the responsibility of the enclosing file format, which
//! frames these bytes in checksummed sections.
//!
//! Encoding conventions: all integers little-endian and fixed-width
//! (`u8`/`u32`/`u64`/`i64`), lengths as `u32` or `u64`, strings as
//! `u32` length + UTF-8 bytes, `Option`/enum variants as one tag byte.
//! The encoding is *stable*: changing it requires bumping the enclosing
//! checkpoint format's version number, never silently reinterpreting
//! bytes.
//!
//! Decoding is **total**: any byte sequence either decodes or returns a
//! typed [`CodecError`] — out-of-range tags, truncated input and
//! inconsistent internal lengths are errors, never panics, so a corrupt
//! checkpoint that slips past the outer checksums still cannot take the
//! process down.

use crate::heap::Heap;
use crate::machine::MachineState;
use crate::value::{SmallSet, Value};
use estelle_frontend::sema::model::StateId;
use estelle_frontend::sema::types::TypeId;
use std::fmt;

/// Why a decode failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The bytes are structurally invalid (unknown tag, length
    /// inconsistency, non-UTF-8 string …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated input while decoding {}", context)
            }
            CodecError::Malformed(m) => write!(f, "malformed encoding: {}", m),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` travels as `u64` so 32- and 64-bit readers agree.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over a byte slice for decoding. Every read is bounds-checked
/// and returns [`CodecError::Truncated`] past the end.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed(format!(
                "bad boolean byte {} in {}",
                other, context
            ))),
        }
    }

    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_i64(&mut self, context: &'static str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.get_u64(context)?;
        usize::try_from(v)
            .map_err(|_| CodecError::Malformed(format!("{} does not fit usize in {}", v, context)))
    }

    /// A `u32`-prefixed length, additionally sanity-checked against the
    /// bytes actually remaining so a corrupt length cannot trigger a
    /// huge allocation before the inevitable truncation error.
    pub fn get_len(
        &mut self,
        per_item_floor: usize,
        context: &'static str,
    ) -> Result<usize, CodecError> {
        let n = self.get_u32(context)? as usize;
        if n.saturating_mul(per_item_floor.max(1)) > self.remaining() {
            return Err(CodecError::Truncated { context });
        }
        Ok(n)
    }

    pub fn get_str(&mut self, context: &'static str) -> Result<String, CodecError> {
        let n = self.get_len(1, context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed(format!("non-UTF-8 string in {}", context)))
    }

    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, context)
    }
}

// Value variant tags. Appending is fine; renumbering requires a version
// bump of the enclosing checkpoint format.
const V_UNDEFINED: u8 = 0;
const V_INT: u8 = 1;
const V_BOOL: u8 = 2;
const V_ENUM: u8 = 3;
const V_SET: u8 = 4;
const V_ARRAY: u8 = 5;
const V_RECORD: u8 = 6;
const V_NIL: u8 = 7;
const V_POINTER: u8 = 8;

/// Encode one runtime value.
pub fn encode_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Undefined => w.put_u8(V_UNDEFINED),
        Value::Int(i) => {
            w.put_u8(V_INT);
            w.put_i64(*i);
        }
        Value::Bool(b) => {
            w.put_u8(V_BOOL);
            w.put_bool(*b);
        }
        Value::Enum(ty, ord) => {
            w.put_u8(V_ENUM);
            w.put_u32(ty.0);
            w.put_i64(*ord);
        }
        Value::Set(s) => {
            w.put_u8(V_SET);
            w.put_u32(s.len() as u32);
            for m in s.iter() {
                w.put_i64(m);
            }
        }
        Value::Array(vs) => {
            w.put_u8(V_ARRAY);
            w.put_u32(vs.len() as u32);
            for e in vs {
                encode_value(w, e);
            }
        }
        Value::Record(vs) => {
            w.put_u8(V_RECORD);
            w.put_u32(vs.len() as u32);
            for e in vs {
                encode_value(w, e);
            }
        }
        Value::Pointer(None) => w.put_u8(V_NIL),
        Value::Pointer(Some(r)) => {
            let (index, generation) = r.raw_parts();
            w.put_u8(V_POINTER);
            w.put_u32(index);
            w.put_u32(generation);
        }
    }
}

/// Decode one runtime value.
pub fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, CodecError> {
    Ok(match r.get_u8("value tag")? {
        V_UNDEFINED => Value::Undefined,
        V_INT => Value::Int(r.get_i64("integer value")?),
        V_BOOL => Value::Bool(r.get_bool("boolean value")?),
        V_ENUM => {
            let ty = TypeId(r.get_u32("enum type")?);
            Value::Enum(ty, r.get_i64("enum ordinal")?)
        }
        V_SET => {
            let n = r.get_len(8, "set members")?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(r.get_i64("set member")?);
            }
            Value::Set(SmallSet::from_iter(members))
        }
        V_ARRAY => {
            let n = r.get_len(1, "array elements")?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r)?);
            }
            Value::Array(vs)
        }
        V_RECORD => {
            let n = r.get_len(1, "record fields")?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r)?);
            }
            Value::Record(vs)
        }
        V_NIL => Value::Pointer(None),
        V_POINTER => {
            let index = r.get_u32("pointer index")?;
            let generation = r.get_u32("pointer generation")?;
            Value::Pointer(Some(crate::heap::HeapRef::from_raw_parts(index, generation)))
        }
        other => {
            return Err(CodecError::Malformed(format!(
                "unknown value tag {}",
                other
            )))
        }
    })
}

/// Encode a complete machine state (§2.3: control state, module
/// variables, dynamic memory).
pub fn encode_state(w: &mut ByteWriter, st: &MachineState) {
    w.put_u32(st.control.0);
    w.put_u32(st.globals.len() as u32);
    for g in &st.globals {
        encode_value(w, g);
    }
    st.heap.encode(w);
}

/// Decode a machine state. The result is structurally valid (the heap's
/// free list is consistent) but semantically unchecked against any
/// specification — callers resuming a search must validate shapes
/// (transition indices, IP counts) against their compiled module.
pub fn decode_state(r: &mut ByteReader<'_>) -> Result<MachineState, CodecError> {
    let control = StateId(r.get_u32("control state")?);
    let n = r.get_len(1, "globals")?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(decode_value(r)?);
    }
    let heap = Heap::decode(r)?;
    Ok(MachineState {
        control,
        globals,
        heap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn roundtrip_value(v: &Value) -> Value {
        let mut w = ByteWriter::new();
        encode_value(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = decode_value(&mut r).expect("decodes");
        assert!(r.is_done(), "no trailing bytes");
        out
    }

    #[test]
    fn primitive_values_roundtrip() {
        for v in [
            Value::Undefined,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Bool(true),
            Value::Enum(TypeId(7), 3),
            Value::Pointer(None),
            Value::Set(SmallSet::from_iter([3, -1, 8])),
        ] {
            assert_eq!(roundtrip_value(&v), v);
        }
    }

    #[test]
    fn composite_values_roundtrip() {
        let v = Value::Record(vec![
            Value::Array(vec![Value::Int(1), Value::Undefined]),
            Value::Set(SmallSet::from_iter([2, 2, 5])),
            Value::Record(vec![]),
        ]);
        assert_eq!(roundtrip_value(&v), v);
    }

    #[test]
    fn pointer_values_roundtrip_through_a_heap() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(9));
        let v = Value::Pointer(Some(r));
        let back = roundtrip_value(&v);
        assert_eq!(back, v);
        // The decoded ref still dereferences in the original heap.
        match back {
            Value::Pointer(Some(r2)) => assert_eq!(h.get(r2).unwrap(), &Value::Int(9)),
            other => panic!("expected pointer, got {:?}", other),
        }
    }

    #[test]
    fn machine_state_roundtrips_with_heap_structure() {
        let m = Machine::from_source(
            r#"
            specification s;
            module M process; end;
            body MB for M;
                var n : integer;
                state S;
                initialize to S begin n := 41 end;
            end;
            end.
            "#,
        )
        .unwrap();
        let mut st = m.initial_state().unwrap();
        // Build heap structure with a hole so the free list matters.
        let a = st.heap.alloc(Value::Int(1));
        let b = st.heap.alloc(Value::Array(vec![Value::Int(2); 3]));
        st.heap.dispose(a).unwrap();
        st.globals[0] = Value::Int(41);

        let mut w = ByteWriter::new();
        encode_state(&mut w, &st);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut back = decode_state(&mut r).expect("state decodes");
        assert!(r.is_done());

        assert_eq!(back, st);
        assert_eq!(back.heap.live(), st.heap.live());
        assert_eq!(back.heap.slots(), st.heap.slots());
        // The dangling ref stays dead, the live one stays live.
        assert!(back.heap.get(a).is_err());
        assert_eq!(back.heap.get(b).unwrap(), st.heap.get(b).unwrap());
        // Free-list order survives: the next allocation reuses the same
        // slot with the same bumped generation in both heaps.
        let r1 = st.heap.alloc(Value::Int(5));
        let r2 = back.heap.alloc(Value::Int(5));
        assert_eq!(r1, r2);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut w = ByteWriter::new();
        encode_value(&mut w, &Value::Array(vec![Value::Int(3); 4]));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                decode_value(&mut r).is_err(),
                "prefix of length {} must not decode",
                cut
            );
        }
    }

    #[test]
    fn unknown_tag_is_malformed() {
        let bytes = [0xEEu8];
        let mut r = ByteReader::new(&bytes);
        match decode_value(&mut r) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("tag")),
            other => panic!("expected Malformed, got {:?}", other),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A set claiming u32::MAX members in a 5-byte buffer.
        let mut w = ByteWriter::new();
        w.put_u8(V_SET);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_value(&mut r),
            Err(CodecError::Truncated { .. })
        ));
    }
}
