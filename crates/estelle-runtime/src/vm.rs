//! The bytecode VM: a non-recursive register-machine loop over
//! [`crate::bytecode::Chunk`]s.
//!
//! One flat `loop { match op }` replaces the tree-walker's nested
//! recursion: Estelle routine calls push a [`CallRet`] onto an explicit
//! stack instead of a Rust frame, so call depth costs no native stack and
//! the whole execution of a guard, transition body or routine is a single
//! Rust frame. All policy-dependent semantics route through
//! [`crate::interp::scalar`] and all l-value navigation through
//! `interp::place` — shared with the tree-walker, which is what makes the
//! `--exec` A/B contract (bit-identical values, errors, and emission
//! order) hold by construction rather than by testing alone.
//!
//! Register and place-register windows live in a [`VmScratch`] that is
//! reused across runs via a thread-local ([`with_scratch`]); a machine
//! step performs no per-run allocation beyond the Estelle frame itself.

use crate::bytecode::{Chunk, ExecProgram, FusedSrc, Op};
use crate::env::{OutputSink, QueueHead};
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::interp::place::{read_resolved, write_resolved, ResolvedPlace, Root};
use crate::interp::{scalar, Limits, Store, UndefinedPolicy};
use crate::value::{SmallSet, Value};
use estelle_ast::{BinOp, Span};
use std::cell::RefCell;

/// A suspended caller, parked while its callee chunk runs.
struct CallRet {
    chunk: usize,
    pc: usize,
    reg_base: usize,
    place_base: usize,
    /// The caller's Estelle frame, swapped back in on `Ret`.
    locals: Vec<Value>,
    routine: u32,
}

/// A returned callee frame, parked between `Ret` and `DropRet` so the
/// caller can copy out `var` parameters and take the function result.
struct RetFrame {
    frame: Vec<Value>,
    routine: u32,
}

/// Reusable VM working memory: register and place windows for the whole
/// (Estelle) call stack, plus the per-generate queue-head cache.
#[derive(Default)]
pub struct VmScratch {
    regs: Vec<Value>,
    places: Vec<ResolvedPlace>,
    calls: Vec<CallRet>,
    rets: Vec<RetFrame>,
    /// Per-IP queue heads cached by the compiled *Generate* so every
    /// candidate sharing an IP compares against one environment query.
    pub(crate) heads: Vec<Option<QueueHead>>,
}

thread_local! {
    static SCRATCH: RefCell<Option<Box<VmScratch>>> = RefCell::new(Some(Box::default()));
}

/// Run `f` with the thread's reusable scratch. Re-entrant calls (which the
/// machine never makes, but a nested test harness might) degrade to a
/// fresh allocation instead of aliasing.
pub fn with_scratch<R>(f: impl FnOnce(&mut VmScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut sc = cell.borrow_mut().take().unwrap_or_default();
        let r = f(&mut sc);
        *cell.borrow_mut() = Some(sc);
        r
    })
}

fn take(v: &mut Value) -> Value {
    std::mem::replace(v, Value::Undefined)
}

fn blank_place() -> ResolvedPlace {
    ResolvedPlace {
        root: Root::Global(0),
        path: Vec::new(),
    }
}

/// One VM execution context over a compiled program.
pub struct Vm<'p> {
    pub program: &'p ExecProgram,
    pub policy: UndefinedPolicy,
    pub limits: Limits,
}

impl<'p> Vm<'p> {
    pub fn new(program: &'p ExecProgram, policy: UndefinedPolicy) -> Self {
        Vm {
            program,
            policy,
            limits: Limits::default(),
        }
    }

    /// Execute a top-level chunk (guard, transition body, or initialize)
    /// with the given Estelle frame. Returns the chunk's result value for
    /// guard chunks, `None` for statement chunks.
    pub fn run(
        &self,
        chunk_id: usize,
        locals: Vec<Value>,
        store: &mut Store<'_>,
        sink: &mut dyn OutputSink,
        s: &mut VmScratch,
    ) -> RtResult<Option<Value>> {
        s.calls.clear();
        s.rets.clear();

        let mut chunk: &Chunk = &self.program.chunks[chunk_id];
        let mut cur_chunk = chunk_id;
        let mut pc: usize = 0;
        let mut reg_base: usize = 0;
        let mut place_base: usize = 0;
        let mut locals = locals;

        if s.regs.len() < chunk.n_regs as usize {
            s.regs.resize(chunk.n_regs as usize, Value::Undefined);
        }
        if s.places.len() < chunk.n_places as usize {
            s.places.resize_with(chunk.n_places as usize, blank_place);
        }

        let policy = self.policy;
        loop {
            let op = &chunk.code[pc];
            pc += 1;
            match op {
                Op::Const { dst, k } => {
                    s.regs[reg_base + *dst as usize] = chunk.consts[*k as usize].clone();
                }
                Op::ReadG { dst, slot } => {
                    s.regs[reg_base + *dst as usize] = store
                        .globals
                        .get(*slot as usize)
                        .cloned()
                        .ok_or_else(|| RuntimeError::internal("global slot out of range"))?;
                }
                Op::ReadL { dst, slot } => {
                    s.regs[reg_base + *dst as usize] = locals
                        .get(*slot as usize)
                        .cloned()
                        .ok_or_else(|| RuntimeError::internal("frame slot out of range"))?;
                }
                Op::Field { dst, src, pos } => {
                    let b = take(&mut s.regs[reg_base + *src as usize]);
                    s.regs[reg_base + *dst as usize] = match b {
                        Value::Record(mut vs) => {
                            if (*pos as usize) < vs.len() {
                                vs.swap_remove(*pos as usize)
                            } else {
                                return Err(RuntimeError::internal(
                                    "field position out of range",
                                ));
                            }
                        }
                        Value::Undefined => Value::Undefined,
                        other => {
                            return Err(RuntimeError::internal(format!(
                                "field access on non-record {}",
                                other
                            )))
                        }
                    };
                }
                Op::Index {
                    dst,
                    base,
                    idx,
                    lo,
                    len,
                } => {
                    let ord = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *idx as usize],
                        Span::DUMMY,
                    )?;
                    let off = ord - lo;
                    if off < 0 || off as usize >= *len as usize {
                        return Err(RuntimeError::bounds(format!(
                            "index {} outside bounds {}..{}",
                            ord,
                            lo,
                            lo + *len as i64 - 1
                        )));
                    }
                    let b = take(&mut s.regs[reg_base + *base as usize]);
                    s.regs[reg_base + *dst as usize] = match b {
                        Value::Array(mut vs) => vs.swap_remove(off as usize),
                        Value::Undefined => Value::Undefined,
                        other => {
                            return Err(RuntimeError::internal(format!(
                                "indexing non-array {}",
                                other
                            )))
                        }
                    };
                }
                Op::Deref { dst, src } => {
                    let b = take(&mut s.regs[reg_base + *src as usize]);
                    s.regs[reg_base + *dst as usize] = match b {
                        Value::Pointer(Some(href)) => store.heap.get(href)?.clone(),
                        Value::Pointer(None) => {
                            return Err(RuntimeError::dangling("dereference of nil"))
                        }
                        Value::Undefined => scalar::undefined_or(
                            policy,
                            "dereference of an undefined pointer",
                            RuntimeErrorKind::UndefinedValue,
                        )?,
                        other => {
                            return Err(RuntimeError::internal(format!(
                                "dereference of non-pointer {}",
                                other
                            )))
                        }
                    };
                }
                Op::Unary { dst, src, op, span } => {
                    let v = take(&mut s.regs[reg_base + *src as usize]);
                    s.regs[reg_base + *dst as usize] =
                        scalar::apply_unary(policy, *op, v, *span)?;
                }
                Op::Binary {
                    dst,
                    a,
                    b,
                    op,
                    span,
                } => {
                    // Int-int fast path: same checked semantics as
                    // `apply_binary` (which itself delegates), minus the
                    // operand matching and policy checks it would redo.
                    let out = if let (Value::Int(x), Value::Int(y)) = (
                        &s.regs[reg_base + *a as usize],
                        &s.regs[reg_base + *b as usize],
                    ) {
                        if matches!(op, BinOp::In) {
                            scalar::apply_binary(
                                policy,
                                *op,
                                &s.regs[reg_base + *a as usize],
                                &s.regs[reg_base + *b as usize],
                                *span,
                            )?
                        } else {
                            scalar::apply_binary_ints(*op, *x, *y, *span)?
                        }
                    } else {
                        scalar::apply_binary(
                            policy,
                            *op,
                            &s.regs[reg_base + *a as usize],
                            &s.regs[reg_base + *b as usize],
                            *span,
                        )?
                    };
                    s.regs[reg_base + *dst as usize] = out;
                }
                Op::BinFused {
                    dst,
                    a,
                    b,
                    asrc,
                    bsrc,
                    op,
                    span,
                } => {
                    let load = |src: &FusedSrc,
                                store: &Store<'_>,
                                locals: &[Value],
                                chunk: &Chunk|
                     -> RtResult<Value> {
                        match src {
                            FusedSrc::Const(k) => Ok(chunk.consts[*k as usize].clone()),
                            FusedSrc::Global(slot) => store
                                .globals
                                .get(*slot as usize)
                                .cloned()
                                .ok_or_else(|| {
                                    RuntimeError::internal("global slot out of range")
                                }),
                            FusedSrc::Local(slot) => {
                                locals.get(*slot as usize).cloned().ok_or_else(|| {
                                    RuntimeError::internal("frame slot out of range")
                                })
                            }
                        }
                    };
                    let av = load(asrc, store, &locals, chunk)?;
                    let bv = load(bsrc, store, &locals, chunk)?;
                    // Operand registers are written exactly as the unfused
                    // load sequence would (fusion rejects aliased windows),
                    // so the register file matches op-for-op — including
                    // on the error edge of the operator below.
                    s.regs[reg_base + *a as usize] = av;
                    s.regs[reg_base + *b as usize] = bv;
                    let out = if let (Value::Int(x), Value::Int(y)) = (
                        &s.regs[reg_base + *a as usize],
                        &s.regs[reg_base + *b as usize],
                    ) {
                        if matches!(op, BinOp::In) {
                            scalar::apply_binary(
                                policy,
                                *op,
                                &s.regs[reg_base + *a as usize],
                                &s.regs[reg_base + *b as usize],
                                *span,
                            )?
                        } else {
                            scalar::apply_binary_ints(*op, *x, *y, *span)?
                        }
                    } else {
                        scalar::apply_binary(
                            policy,
                            *op,
                            &s.regs[reg_base + *a as usize],
                            &s.regs[reg_base + *b as usize],
                            *span,
                        )?
                    };
                    s.regs[reg_base + *dst as usize] = out;
                }
                Op::LogicShort {
                    dst,
                    src,
                    and,
                    span,
                    target,
                } => {
                    if let Some(decided) = scalar::logic_short(
                        policy,
                        *and,
                        &s.regs[reg_base + *src as usize],
                        *span,
                    )? {
                        s.regs[reg_base + *dst as usize] = Value::Bool(decided);
                        pc = *target as usize;
                    }
                }
                Op::LogicJoin {
                    dst,
                    a,
                    b,
                    and,
                    span,
                } => {
                    let out = scalar::logic_join(
                        policy,
                        *and,
                        &s.regs[reg_base + *a as usize],
                        &s.regs[reg_base + *b as usize],
                        *span,
                    )?;
                    s.regs[reg_base + *dst as usize] = out;
                }
                Op::SetNew { dst } => {
                    s.regs[reg_base + *dst as usize] = Value::Set(SmallSet::empty());
                }
                Op::SetInsert { set, src, span } => {
                    let ord = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *src as usize],
                        *span,
                    )?;
                    match &mut s.regs[reg_base + *set as usize] {
                        Value::Set(sv) => sv.insert(ord),
                        _ => return Err(RuntimeError::internal("set register not a set")),
                    }
                }
                Op::SetRange { set, a, b, span } => {
                    let lo = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *a as usize],
                        *span,
                    )?;
                    let hi = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *b as usize],
                        *span,
                    )?;
                    match &mut s.regs[reg_base + *set as usize] {
                        Value::Set(sv) => {
                            for v in lo..=hi {
                                sv.insert(v);
                            }
                        }
                        _ => return Err(RuntimeError::internal("set register not a set")),
                    }
                }
                Op::Jump { target } => {
                    pc = *target as usize;
                }
                Op::BranchBool {
                    src,
                    jump_if,
                    target,
                    span,
                } => {
                    let c = scalar::control_bool(
                        policy,
                        &s.regs[reg_base + *src as usize],
                        *span,
                    )?;
                    if c == *jump_if {
                        pc = *target as usize;
                    }
                }
                Op::IncCheck {
                    counter,
                    kind,
                    span,
                } => {
                    let r = &mut s.regs[reg_base + *counter as usize];
                    let Value::Int(n) = r else {
                        return Err(RuntimeError::internal("loop counter not an integer"));
                    };
                    *n += 1;
                    if *n as u64 > self.limits.max_loop_iterations {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::LoopLimitExceeded,
                            kind.limit_message(),
                        )
                        .with_span(*span));
                    }
                }
                Op::ForPrep {
                    from,
                    to,
                    i,
                    limit,
                    template,
                    span,
                } => {
                    let iv = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *from as usize],
                        *span,
                    )?;
                    let lv = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *to as usize],
                        *span,
                    )?;
                    s.regs[reg_base + *template as usize] =
                        take(&mut s.regs[reg_base + *from as usize]);
                    s.regs[reg_base + *i as usize] = Value::Int(iv);
                    s.regs[reg_base + *limit as usize] = Value::Int(lv);
                }
                Op::ForCheck {
                    i,
                    limit,
                    down,
                    exit,
                } => {
                    let (Value::Int(iv), Value::Int(lv)) = (
                        &s.regs[reg_base + *i as usize],
                        &s.regs[reg_base + *limit as usize],
                    ) else {
                        return Err(RuntimeError::internal("for counter not an integer"));
                    };
                    if (*down && iv < lv) || (!*down && iv > lv) {
                        pc = *exit as usize;
                    }
                }
                Op::ForMake { dst, i, template } => {
                    let Value::Int(ord) = s.regs[reg_base + *i as usize] else {
                        return Err(RuntimeError::internal("for counter not an integer"));
                    };
                    s.regs[reg_base + *dst as usize] =
                        match &s.regs[reg_base + *template as usize] {
                            Value::Enum(t, _) => Value::Enum(*t, ord),
                            Value::Bool(_) => Value::Bool(ord != 0),
                            _ => Value::Int(ord),
                        };
                }
                Op::ForStep { i, down } => {
                    let Value::Int(iv) = &mut s.regs[reg_base + *i as usize] else {
                        return Err(RuntimeError::internal("for counter not an integer"));
                    };
                    *iv = if *down {
                        iv.wrapping_sub(1)
                    } else {
                        iv.wrapping_add(1)
                    };
                }
                Op::Case { src, table, span } => {
                    let ord = scalar::case_ordinal(
                        policy,
                        &s.regs[reg_base + *src as usize],
                        *span,
                    )?;
                    let t = &chunk.cases[*table as usize];
                    let mut target = t.default;
                    for (labels, at) in &t.arms {
                        if labels.contains(&ord) {
                            target = *at;
                            break;
                        }
                    }
                    pc = target as usize;
                }
                Op::CheckDef { src, span } => {
                    if matches!(s.regs[reg_base + *src as usize], Value::Undefined)
                        && policy == UndefinedPolicy::Error
                    {
                        return Err(RuntimeError::undefined("output parameter is undefined")
                            .with_span(*span));
                    }
                }
                Op::Output {
                    ip,
                    interaction,
                    first,
                    n,
                    span,
                } => {
                    let base = reg_base + *first as usize;
                    let params: Vec<Value> =
                        (0..*n as usize).map(|i| take(&mut s.regs[base + i])).collect();
                    if !sink.emit(*ip as usize, *interaction as usize, params) {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::OutputRejected,
                            "output rejected by the trace matcher",
                        )
                        .with_span(*span));
                    }
                }
                Op::PlaceG { p, slot } => {
                    let pl = &mut s.places[place_base + *p as usize];
                    pl.root = Root::Global(*slot as usize);
                    pl.path.clear();
                }
                Op::PlaceL { p, slot } => {
                    let pl = &mut s.places[place_base + *p as usize];
                    pl.root = Root::Local(*slot as usize);
                    pl.path.clear();
                }
                Op::PlaceField { p, pos } => {
                    s.places[place_base + *p as usize].path.push(*pos as usize);
                }
                Op::PlaceIndex {
                    p,
                    idx,
                    lo,
                    len,
                    span,
                } => {
                    let ord = scalar::require_ordinal(
                        policy,
                        &s.regs[reg_base + *idx as usize],
                        *span,
                    )?;
                    let off = ord - lo;
                    if off < 0 || off as usize >= *len as usize {
                        return Err(RuntimeError::bounds(format!(
                            "index {} outside bounds {}..{}",
                            ord,
                            lo,
                            lo + *len as i64 - 1
                        ))
                        .with_span(*span));
                    }
                    s.places[place_base + *p as usize].path.push(off as usize);
                }
                Op::PlaceDeref { p, span } => {
                    let pl = &s.places[place_base + *p as usize];
                    let v = read_resolved(pl, store, &locals)?;
                    let href = match v {
                        Value::Pointer(Some(href)) => *href,
                        Value::Pointer(None) => {
                            return Err(
                                RuntimeError::dangling("dereference of nil").with_span(*span)
                            )
                        }
                        Value::Undefined => {
                            return Err(RuntimeError::undefined(
                                "dereference of an undefined pointer",
                            )
                            .with_span(*span))
                        }
                        other => {
                            return Err(RuntimeError::internal(format!(
                                "dereference of non-pointer value {}",
                                other
                            ))
                            .with_span(*span))
                        }
                    };
                    let pl = &mut s.places[place_base + *p as usize];
                    pl.root = Root::Heap(href);
                    pl.path.clear();
                }
                Op::ReadPlace { dst, p } => {
                    let v =
                        read_resolved(&s.places[place_base + *p as usize], store, &locals)?
                            .clone();
                    s.regs[reg_base + *dst as usize] = v;
                }
                Op::WritePlace { p, src } => {
                    let v = take(&mut s.regs[reg_base + *src as usize]);
                    *write_resolved(
                        &s.places[place_base + *p as usize],
                        store,
                        &mut locals,
                    )? = v;
                }
                Op::Call { site } => {
                    if s.calls.len() >= self.limits.max_call_depth {
                        return Err(RuntimeError::new(
                            RuntimeErrorKind::CallDepthExceeded,
                            "routine call depth exceeded the limit",
                        )
                        .with_span(chunk.calls[*site as usize].span));
                    }
                    let cs = &chunk.calls[*site as usize];
                    let routine = &self.program.routines[cs.routine as usize];
                    let mut callee = routine.frame_template.clone();
                    for (i, &r) in cs.args.iter().enumerate() {
                        callee[i] = take(&mut s.regs[reg_base + r as usize]);
                    }
                    let callee_chunk = &self.program.chunks[routine.chunk];
                    let new_reg_base = reg_base + chunk.n_regs as usize;
                    let new_place_base = place_base + chunk.n_places as usize;
                    if s.regs.len() < new_reg_base + callee_chunk.n_regs as usize {
                        s.regs
                            .resize(new_reg_base + callee_chunk.n_regs as usize, Value::Undefined);
                    }
                    if s.places.len() < new_place_base + callee_chunk.n_places as usize {
                        s.places.resize_with(
                            new_place_base + callee_chunk.n_places as usize,
                            blank_place,
                        );
                    }
                    s.calls.push(CallRet {
                        chunk: cur_chunk,
                        pc,
                        reg_base,
                        place_base,
                        locals: std::mem::replace(&mut locals, callee),
                        routine: cs.routine,
                    });
                    cur_chunk = routine.chunk;
                    chunk = callee_chunk;
                    pc = 0;
                    reg_base = new_reg_base;
                    place_base = new_place_base;
                }
                Op::Ret => {
                    let fr = s
                        .calls
                        .pop()
                        .ok_or_else(|| RuntimeError::internal("return outside a call"))?;
                    s.rets.push(RetFrame {
                        frame: std::mem::replace(&mut locals, fr.locals),
                        routine: fr.routine,
                    });
                    cur_chunk = fr.chunk;
                    chunk = &self.program.chunks[cur_chunk];
                    pc = fr.pc;
                    reg_base = fr.reg_base;
                    place_base = fr.place_base;
                }
                Op::CopyOut { p, slot } => {
                    let parked = s
                        .rets
                        .last()
                        .ok_or_else(|| RuntimeError::internal("copy-out without a call"))?;
                    let out = parked.frame[*slot as usize].clone();
                    *write_resolved(
                        &s.places[place_base + *p as usize],
                        store,
                        &mut locals,
                    )? = out;
                }
                Op::TakeResult { dst } => {
                    let parked = s
                        .rets
                        .last_mut()
                        .ok_or_else(|| RuntimeError::internal("take-result without a call"))?;
                    let slot = self.program.routines[parked.routine as usize]
                        .result_slot
                        .ok_or_else(|| {
                            RuntimeError::internal(
                                "function call returned no value (or output rejected inside a guard)",
                            )
                        })?;
                    s.regs[reg_base + *dst as usize] = take(&mut parked.frame[slot]);
                }
                Op::DropRet => {
                    s.rets.pop();
                }
                Op::Alloc { dst, template } => {
                    let fresh = store.heap.alloc(chunk.consts[*template as usize].clone());
                    s.regs[reg_base + *dst as usize] = Value::Pointer(Some(fresh));
                }
                Op::Dispose { src, span } => {
                    match take(&mut s.regs[reg_base + *src as usize]) {
                        Value::Pointer(Some(href)) => store.heap.dispose(href)?,
                        Value::Pointer(None) => {
                            return Err(
                                RuntimeError::dangling("dispose of nil").with_span(*span)
                            )
                        }
                        Value::Undefined => {
                            return Err(RuntimeError::undefined(
                                "dispose of an undefined pointer",
                            )
                            .with_span(*span))
                        }
                        other => {
                            return Err(RuntimeError::internal(format!(
                                "dispose of non-pointer {}",
                                other
                            ))
                            .with_span(*span))
                        }
                    }
                }
                Op::Halt => {
                    return Ok(chunk
                        .result
                        .map(|r| take(&mut s.regs[reg_base + r as usize])));
                }
            }
        }
    }
}
