//! Executable EFSM model for Estelle specifications — the *Dingo* analog.
//!
//! Where NIST's Dingo generated C++ implementations from the Pet static
//! model, this crate compiles an analyzed module into a slot-addressed IR
//! and interprets it. It provides exactly the machinery backtracking trace
//! analysis needs (paper §2.2): **generate** fireable transitions,
//! **update** (fire) one, **save** and **restore** the composite TAM state
//! of §2.3 (FSM state, module variables, dynamic memory).
//!
//! ```
//! use estelle_runtime::Machine;
//!
//! let machine = Machine::from_source(r#"
//!     specification counter;
//!     channel C(env, m); by env: tick; by m: report(n : integer); end;
//!     module M process; ip P : C(m); end;
//!     body MB for M;
//!         var n : integer;
//!         state Run;
//!         initialize to Run begin n := 0 end;
//!         trans
//!         from Run to Run when P.tick begin
//!             n := n + 1;
//!             output P.report(n);
//!         end;
//!     end;
//!     end.
//! "#).expect("valid spec");
//! let state = machine.initial_state().expect("initializes");
//! assert_eq!(machine.module.transition_count(), 1);
//! # let _ = state;
//! ```

pub mod bytecode;
pub mod codec;
pub mod compile;
pub mod env;
pub mod error;
pub mod fxhash;
pub mod graph;
pub mod heap;
pub mod interp;
pub mod ir;
pub mod machine;
pub mod normal_form;
pub mod value;
pub mod vm;

pub use bytecode::{DispatchIndex, ExecProgram, PgoHints};
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use compile::{compile, CompiledModule};
pub use env::{InputSource, OutputSink, QueueHead};
pub use error::{RtResult, RuntimeError, RuntimeErrorKind};
pub use fxhash::FxHasher;
pub use heap::{Heap, HeapRef, CHUNK_CELLS};
pub use interp::UndefinedPolicy;
pub use machine::{
    BuildError, ExecMode, FireOutcome, Fireable, Generated, Machine, MachineState,
    AUTO_COMPILED_MIN_TRANSITIONS,
};
pub use value::Value;
