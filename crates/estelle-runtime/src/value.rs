//! Runtime values.
//!
//! Every Estelle variable, interaction parameter and heap cell holds a
//! [`Value`]. Following the paper's §5.1, values carry an explicit
//! *undefined* state: freshly created storage is [`Value::Undefined`] until
//! assigned. In full-trace analysis using an undefined value is an error
//! (an uninitialized-variable bug in the specification); in partial-trace
//! analysis undefined propagates through expressions and compares equal to
//! everything, exactly as §5.1 prescribes.

use crate::heap::HeapRef;
use estelle_frontend::sema::types::{Type, TypeId, TypeTable};
use std::fmt;

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Hash)]
pub enum Value {
    /// Storage that was never assigned (or deliberately unknown during
    /// partial-trace analysis).
    Undefined,
    Int(i64),
    Bool(bool),
    /// An enum value: the ordinal within its (nominal) enum type.
    Enum(TypeId, i64),
    /// A Pascal set: the ordinals of its members.
    Set(SmallSet),
    /// `array [lo..hi] of T`, stored dense; index arithmetic uses the
    /// type's `lo` kept in the compiled IR.
    Array(Vec<Value>),
    /// Record fields in declaration order.
    Record(Vec<Value>),
    /// A pointer: `None` is `nil`.
    Pointer(Option<HeapRef>),
}

/// A small ordered set of ordinals, sufficient for Pascal set values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct SmallSet(Vec<i64>);

impl SmallSet {
    pub fn empty() -> Self {
        SmallSet(Vec::new())
    }

    #[allow(clippy::should_implement_trait)] // dedup-sorting constructor
    pub fn from_iter(iter: impl IntoIterator<Item = i64>) -> Self {
        let mut v: Vec<i64> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        SmallSet(v)
    }

    pub fn insert(&mut self, v: i64) {
        if let Err(pos) = self.0.binary_search(&v) {
            self.0.insert(pos, v);
        }
    }

    pub fn contains(&self, v: i64) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.0.iter().copied()
    }
}

impl Value {
    /// True if this value is (or contains, for composites) an undefined
    /// component.
    pub fn has_undefined(&self) -> bool {
        match self {
            Value::Undefined => true,
            Value::Array(vs) | Value::Record(vs) => vs.iter().any(Value::has_undefined),
            _ => false,
        }
    }

    /// Undefined-tolerant comparison used when matching generated output
    /// interactions against traced interactions: an undefined parameter is
    /// "equal to all values to which it is compared" (paper §5.1).
    pub fn matches(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, _) | (_, Value::Undefined) => true,
            (Value::Array(a), Value::Array(b)) | (Value::Record(a), Value::Record(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.matches(y))
            }
            (a, b) => a == b,
        }
    }

    /// The value's ordinal, if it is an ordinal value.
    pub fn ordinal(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            Value::Enum(_, v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate heap footprint of the value in bytes: the inline
    /// enum size plus everything owned out-of-line (set members, array
    /// and record elements). Feeds the analyzer's snapshot-memory budget,
    /// so it only needs to be proportional, not exact.
    pub fn approx_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Set(s) => inline + s.len() * std::mem::size_of::<i64>(),
            Value::Array(vs) | Value::Record(vs) => {
                inline + vs.iter().map(Value::approx_bytes).sum::<usize>()
            }
            _ => inline,
        }
    }

    /// Short description used in diagnostics and trace rendering.
    pub fn describe(&self) -> String {
        match self {
            Value::Undefined => "?".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Enum(_, v) => format!("#{}", v),
            Value::Set(s) => format!(
                "[{}]",
                s.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Value::Array(vs) => format!(
                "({})",
                vs.iter().map(Value::describe).collect::<Vec<_>>().join(", ")
            ),
            Value::Record(vs) => format!(
                "{{{}}}",
                vs.iter().map(Value::describe).collect::<Vec<_>>().join(", ")
            ),
            Value::Pointer(None) => "nil".to_string(),
            Value::Pointer(Some(r)) => format!("^{}", r),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// The default (freshly allocated) value of a type: scalars are undefined,
/// composites are built recursively, sets start empty.
pub fn default_value(types: &TypeTable, ty: TypeId) -> Value {
    match types.get(ty) {
        Type::Unresolved => Value::Undefined,
        Type::Integer | Type::Boolean | Type::Enum { .. } | Type::Subrange { .. } => {
            Value::Undefined
        }
        Type::Array { lo, hi, elem, .. } => {
            let n = (hi - lo + 1) as usize;
            Value::Array(vec![default_value(types, *elem); n])
        }
        Type::Record { fields } => Value::Record(
            fields
                .iter()
                .map(|(_, t)| default_value(types, *t))
                .collect(),
        ),
        Type::SetOf { .. } => Value::Set(SmallSet::empty()),
        Type::Pointer { .. } => Value::Undefined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_frontend::sema::types::{TypeTable, TY_BOOLEAN, TY_INTEGER};

    #[test]
    fn small_set_behaves_like_a_set() {
        let mut s = SmallSet::empty();
        s.insert(5);
        s.insert(1);
        s.insert(5);
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(3));
        assert_eq!(s, SmallSet::from_iter([5, 1, 1]));
    }

    #[test]
    fn undefined_matches_everything() {
        assert!(Value::Undefined.matches(&Value::Int(42)));
        assert!(Value::Int(42).matches(&Value::Undefined));
        assert!(!Value::Int(42).matches(&Value::Int(43)));
    }

    #[test]
    fn composite_matching_is_elementwise() {
        let a = Value::Record(vec![Value::Int(1), Value::Undefined]);
        let b = Value::Record(vec![Value::Int(1), Value::Bool(true)]);
        let c = Value::Record(vec![Value::Int(2), Value::Bool(true)]);
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
    }

    #[test]
    fn default_values_by_type() {
        let mut types = TypeTable::new();
        assert_eq!(default_value(&types, TY_INTEGER), Value::Undefined);
        let arr = types.intern(Type::Array {
            index: TY_INTEGER,
            lo: 0,
            hi: 2,
            elem: TY_BOOLEAN,
        });
        match default_value(&types, arr) {
            Value::Array(vs) => {
                assert_eq!(vs.len(), 3);
                assert!(vs.iter().all(|v| *v == Value::Undefined));
            }
            other => panic!("expected array, got {:?}", other),
        }
        let set = types.intern(Type::SetOf {
            base: TY_BOOLEAN,
            lo: 0,
            hi: 1,
        });
        assert_eq!(default_value(&types, set), Value::Set(SmallSet::empty()));
    }

    #[test]
    fn has_undefined_recurses() {
        let v = Value::Array(vec![Value::Int(1), Value::Record(vec![Value::Undefined])]);
        assert!(v.has_undefined());
        let w = Value::Array(vec![Value::Int(1)]);
        assert!(!w.has_undefined());
    }
}
