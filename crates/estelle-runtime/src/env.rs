//! The machine's environment: where inputs come from and outputs go.
//!
//! The executable machine is agnostic about *why* it is being run. The
//! trace analyzer implements these traits to consume trace inputs and
//! verify trace outputs (with relative-order checking); the
//! implementation-generation mode implements them to feed scripted inputs
//! and log outputs to a trace file.

use crate::value::Value;

/// What the head of an input queue looks like to the machine.
#[derive(Clone, Debug, PartialEq)]
pub enum QueueHead {
    /// A consumable interaction: its index within the IP's input signatures
    /// and its parameter values.
    Message {
        interaction: usize,
        params: Vec<Value>,
    },
    /// No input available now and none can appear later (static trace
    /// exhausted, or consumption currently blocked by order checking).
    Empty,
    /// No input available now, but the trace is dynamic and may grow — the
    /// node being generated becomes a PG-node (paper §3.1.1).
    EmptyMayGrow,
    /// This IP's inputs are not observed (partial trace, §5.2): any `when`
    /// clause on it is satisfiable with fabricated undefined parameters.
    Unobserved,
}

/// Supplies input interactions to the machine, one FIFO queue per IP.
pub trait InputSource {
    /// Inspect the head of `ip`'s input queue without consuming it.
    fn head(&self, ip: usize) -> QueueHead;

    /// Consume the interaction previously returned by [`InputSource::head`].
    /// Called exactly once per fired input transition.
    fn consume(&mut self, ip: usize);
}

/// Receives output interactions emitted by `output` statements.
pub trait OutputSink {
    /// Called for each executed `output ip.interaction(args)`. Returning
    /// `false` aborts the transition body: the trace analyzer uses this to
    /// fail a branch as soon as a generated output cannot be matched.
    fn emit(&mut self, ip: usize, interaction: usize, params: Vec<Value>) -> bool;
}

/// A full machine environment: input queues plus an output sink. The
/// trace analyzer's environment implements both halves over one cursor
/// state, which is why `fire` takes a single object.
pub trait MachineEnv: InputSource + OutputSink {}

impl<T: InputSource + OutputSink + ?Sized> MachineEnv for T {}

/// An environment with no inputs and a sink that accepts everything;
/// useful for executing `initialize` blocks and in tests.
#[derive(Default, Debug)]
pub struct NullEnv {
    /// Outputs collected by the sink half.
    pub outputs: Vec<(usize, usize, Vec<Value>)>,
}

impl InputSource for NullEnv {
    fn head(&self, _ip: usize) -> QueueHead {
        QueueHead::Empty
    }

    fn consume(&mut self, _ip: usize) {
        panic!("NullEnv has no inputs to consume");
    }
}

impl OutputSink for NullEnv {
    fn emit(&mut self, ip: usize, interaction: usize, params: Vec<Value>) -> bool {
        self.outputs.push((ip, interaction, params));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_env_collects_outputs() {
        let mut env = NullEnv::default();
        assert!(env.emit(0, 1, vec![Value::Int(3)]));
        assert_eq!(env.outputs.len(), 1);
        assert_eq!(env.head(0), QueueHead::Empty);
    }
}
