//! The executable machine: the four operations trace analysis needs.
//!
//! The paper (§2.2) lists them: **Generate** the fireable transitions from
//! the current state, **Update** (fire) a transition, **Save** the state
//! and **Restore** it. Save/restore are `MachineState::clone` and plain
//! assignment — the state is a value (§2.3: FSM state, module variables,
//! dynamic memory); queue cursors live with the trace analyzer that owns
//! the trace.

use crate::bytecode::{compile_program, ExecProgram};
use crate::compile::{compile, CompiledModule};
use crate::env::{InputSource, NullEnv, OutputSink, QueueHead};
use crate::error::{RtResult, RuntimeError, RuntimeErrorKind};
use crate::interp::{expr_has_calls, Interp, Store, UndefinedPolicy};
use crate::value::{default_value, Value};
use crate::vm::{self, Vm};
use estelle_frontend::sema::model::StateId;
use estelle_frontend::sema::types::{Type, TypeId};
use estelle_frontend::{analyze, FrontendError};
use std::fmt;
use std::sync::Arc;

/// Errors from building a machine out of Estelle source.
#[derive(Debug)]
pub enum BuildError {
    Frontend(FrontendError),
    Compile(RuntimeError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Frontend(e) => write!(f, "{}", e),
            BuildError::Compile(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for BuildError {}

/// The saved/restored TAM state (§2.3): control state, module variables
/// and dynamic memory. The paper's *Save* operation is [`MachineState::snapshot`];
/// `clone` is equivalent since the heap shares its chunks copy-on-write.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineState {
    pub control: StateId,
    pub globals: Vec<Value>,
    pub heap: crate::heap::Heap,
}

impl MachineState {
    /// A rough size measure used by the search statistics (the paper's
    /// §3.2 memory discussion).
    pub fn size_estimate(&self) -> usize {
        self.globals.len() + self.heap.slots()
    }

    /// The paper's *Save*: a snapshot that can later be handed back to the
    /// search as *Restore*. Cheap — globals are copied (small: one `Value`
    /// per module variable) and the heap's chunk table is copied, while
    /// the chunks themselves stay shared copy-on-write. Cost is
    /// O(globals + touched chunks), not O(whole state).
    pub fn snapshot(&self) -> MachineState {
        self.clone()
    }

    /// The pre-COW *Save*: a snapshot whose dynamic memory is eagerly
    /// deep-copied, sharing nothing. Kept as the `--cow=off` baseline the
    /// benchmark record A/Bs against.
    pub fn deep_snapshot(&self) -> MachineState {
        let mut s = self.clone();
        s.heap.unshare();
        s
    }

    /// Approximate footprint of one saved snapshot in bytes (globals and
    /// dynamic memory, including out-of-line storage). The trace
    /// analyzer's memory budget charges each saved search node this much.
    ///
    /// Storage is charged exactly once: [`Value::approx_bytes`] never
    /// follows a [`Value::Pointer`] into the heap (a global holding a heap
    /// reference contributes only its inline pointer size), and the cells
    /// it points at are charged by [`crate::heap::Heap::approx_bytes`]
    /// alone — so pointer-linked structures are not double-counted no
    /// matter how many globals or cells reference them.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.globals.iter().map(Value::approx_bytes).sum::<usize>()
            + self.heap.approx_bytes()
    }
}

/// One fireable transition found by *Generate*.
#[derive(Clone, Debug)]
pub struct Fireable {
    /// Index into [`CompiledModule::transitions`].
    pub trans: usize,
    /// Parameter values of the consumed input interaction (empty for
    /// spontaneous transitions).
    pub params: Vec<Value>,
    /// True when the input was fabricated for an unobserved IP (partial
    /// traces, §5.2): firing must not consume from the real queue.
    pub fabricated: bool,
}

/// The result of *Generate*.
#[derive(Clone, Debug, Default)]
pub struct Generated {
    pub fireable: Vec<Fireable>,
    /// True if some `when` transition was blocked only by a dynamic input
    /// queue that may still grow — the paper's "incomplete transition
    /// list", making this node a PG-node (§3.1.1).
    pub incomplete: bool,
}

/// Outcome of *Update* (fire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FireOutcome {
    /// The transition executed and all outputs were accepted.
    Completed,
    /// An output could not be matched against the trace: the branch fails
    /// and the caller should restore the pre-fire state.
    OutputRejected,
}

/// Which executor runs guards, transition bodies and initialize blocks.
///
/// Both modes are bit-identical in every observable: fireable sets and
/// their order, state updates, emitted outputs, verdicts and errors
/// (`tests/compiled_exec.rs` enforces this differentially). They differ
/// only in speed: `Compiled` lowers the tree IR to register bytecode once
/// at machine construction and dispatches *Generate* through a
/// by-control-state transition index, while `Interp` walks the tree IR and
/// linearly scans every transition declaration — kept as the reference
/// executor and A/B baseline (`--exec=interp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Pick per spec from the compile-time cost model (the default): the
    /// bytecode VM for specs with at least
    /// [`AUTO_COMPILED_MIN_TRANSITIONS`] compiled transitions, the tree
    /// walker below that. On small specs the VM's fixed per-step overhead
    /// (scratch setup, chunk dispatch) exceeds what the dispatch index
    /// saves, and the tree walker wins — `BENCH_tps.json` is the record.
    /// The choice depends only on the spec, so a resumed checkpoint run
    /// re-selects the same executor.
    #[default]
    Auto,
    /// Bytecode VM + dispatch index.
    Compiled,
    /// Tree-walking reference interpreter with linear transition scan.
    Interp,
}

/// [`ExecMode::Auto`]'s cost-model threshold: specs with at least this
/// many compiled transitions (post `any`-expansion) run the bytecode VM.
/// Calibrated against `BENCH_tps.json`: the crossover sits between the
/// 21-transition LAPD table (tree walker faster) and the 50-declaration
/// synthetic spec (VM ≥2× faster).
pub const AUTO_COMPILED_MIN_TRANSITIONS: usize = 48;

impl ExecMode {
    /// Stable lowercase name used by CLI flags and benchmark records.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Auto => "auto",
            ExecMode::Compiled => "compiled",
            ExecMode::Interp => "interp",
        }
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ExecMode::Auto),
            "compiled" => Ok(ExecMode::Compiled),
            "interp" => Ok(ExecMode::Interp),
            other => Err(format!(
                "unknown exec mode `{}` (expected `auto`, `compiled` or `interp`)",
                other
            )),
        }
    }
}

/// An executable single-module Estelle specification. The compiled module
/// and bytecode program are shared (`Arc`), so policy- and exec-adjusted
/// views are cheap to create.
pub struct Machine {
    pub module: Arc<CompiledModule>,
    pub policy: UndefinedPolicy,
    pub exec: ExecMode,
    /// Bytecode + dispatch index, built once per underlying module and
    /// shared by every view (an interp-mode view keeps the `Arc` so
    /// switching modes never recompiles).
    pub program: Arc<ExecProgram>,
}

impl Machine {
    pub fn new(module: CompiledModule) -> Self {
        let program = Arc::new(compile_program(&module));
        Machine {
            module: Arc::new(module),
            policy: UndefinedPolicy::Error,
            exec: ExecMode::default(),
            program,
        }
    }

    /// A second handle onto the same compiled module with a different
    /// undefined-value policy (full-trace vs. partial-trace analysis).
    pub fn policy_view(&self, policy: UndefinedPolicy) -> Machine {
        Machine {
            module: Arc::clone(&self.module),
            policy,
            exec: self.exec,
            program: Arc::clone(&self.program),
        }
    }

    /// A second handle onto the same compiled module with a different
    /// executor (`--exec` A/B testing).
    pub fn exec_view(&self, exec: ExecMode) -> Machine {
        Machine {
            module: Arc::clone(&self.module),
            policy: self.policy,
            exec,
            program: Arc::clone(&self.program),
        }
    }

    /// Parse, analyze and compile Estelle source into a machine.
    pub fn from_source(source: &str) -> Result<Self, BuildError> {
        let analyzed = analyze(source).map_err(BuildError::Frontend)?;
        let module = compile(analyzed).map_err(BuildError::Compile)?;
        Ok(Machine::new(module))
    }

    /// Use the partial-trace undefined policy (§5).
    pub fn with_policy(mut self, policy: UndefinedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The executor this machine actually runs: [`ExecMode::Auto`]
    /// resolves per spec through the cost model, explicit modes pass
    /// through. Deterministic for a given spec, so checkpoint resume
    /// re-selects the same executor.
    pub fn resolved_exec(&self) -> ExecMode {
        match self.exec {
            ExecMode::Auto => {
                if self.module.transitions.len() >= AUTO_COMPILED_MIN_TRANSITIONS {
                    ExecMode::Compiled
                } else {
                    ExecMode::Interp
                }
            }
            other => other,
        }
    }

    /// Apply validated profile feedback to the shared bytecode program
    /// (see [`ExecProgram::apply_pgo`]). Views already split off keep the
    /// unoptimized program; views created afterwards share the optimized
    /// one.
    pub fn apply_pgo(&mut self, hints: &crate::bytecode::PgoHints) {
        Arc::make_mut(&mut self.program).apply_pgo(hints);
    }

    fn interp(&self) -> Interp<'_> {
        Interp::new(&self.module, self.policy)
    }

    /// Run the `initialize` transition and return the initial state.
    /// Outputs in the initialize block go to `sink`.
    pub fn initial_state_with(&self, sink: &mut dyn OutputSink) -> RtResult<MachineState> {
        let mut globals: Vec<Value> = self
            .module
            .globals
            .iter()
            .map(|t| default_value(&self.module.analyzed.types, *t))
            .collect();
        let mut heap = crate::heap::Heap::new();
        {
            let mut store = Store {
                globals: &mut globals,
                heap: &mut heap,
            };
            match self.resolved_exec() {
                ExecMode::Interp => {
                    let mut frame = Vec::new();
                    self.interp().exec_block(
                        &self.module.init_block,
                        &mut store,
                        &mut frame,
                        sink,
                        0,
                    )?;
                }
                ExecMode::Compiled | ExecMode::Auto => {
                    let v = Vm::new(&self.program, self.policy);
                    vm::with_scratch(|s| {
                        v.run(self.program.init, Vec::new(), &mut store, sink, s)
                    })?;
                }
            }
        }
        Ok(MachineState {
            control: self.module.init_to,
            globals,
            heap,
        })
    }

    /// [`Machine::initial_state_with`] discarding initialize outputs.
    pub fn initial_state(&self) -> RtResult<MachineState> {
        let mut sink = NullEnv::default();
        self.initial_state_with(&mut sink)
    }

    /// An initial state whose control state is overridden — used by the
    /// initial-state search option (§2.4.1): variables and dynamic memory
    /// stay "as set by the initialize transition block".
    pub fn initial_state_at(&self, control: StateId) -> RtResult<MachineState> {
        let mut st = self.initial_state()?;
        st.control = control;
        Ok(st)
    }

    /// *Generate*: list the fireable transitions from `st` given the
    /// inputs currently offered by `input`. Applies Estelle priority
    /// filtering (among enabled transitions only the best priority class
    /// fires).
    pub fn generate(
        &self,
        st: &mut MachineState,
        input: &dyn InputSource,
    ) -> RtResult<Generated> {
        let mut out = Generated::default();
        self.generate_into(st, input, &mut out)?;
        Ok(out)
    }

    /// Allocation-friendly *Generate*: clears and refills `out` so a
    /// search loop can reuse one `Generated` (and the `Vec` capacity
    /// inside it) across every expansion instead of allocating per call.
    pub fn generate_into(
        &self,
        st: &mut MachineState,
        input: &dyn InputSource,
        out: &mut Generated,
    ) -> RtResult<()> {
        out.fireable.clear();
        out.incomplete = false;
        match self.resolved_exec() {
            ExecMode::Interp => self.generate_interp(st, input, out)?,
            ExecMode::Compiled | ExecMode::Auto => self.generate_compiled(st, input, out)?,
        }

        // Priority filtering: keep only the smallest priority value.
        if let Some(best) = out
            .fireable
            .iter()
            .map(|f| self.module.transitions[f.trans].priority)
            .min()
        {
            out.fireable
                .retain(|f| self.module.transitions[f.trans].priority == best);
        }
        // Stable order with fabricated inputs last: depth-first searches
        // try transitions explained by *observed* events before inventing
        // interactions on unobserved IPs, which keeps partial-trace
        // analysis (§5) from diving into unbounded fabrication chains.
        // (Sorting a run with no fabricated entries is the common case;
        // skip the pass entirely then.)
        if out.fireable.iter().any(|f| f.fabricated) {
            out.fireable.sort_by_key(|f| f.fabricated);
        }
        Ok(())
    }

    /// Reference *Generate*: tree-walking guards over a linear scan of
    /// every transition declaration.
    fn generate_interp(
        &self,
        st: &mut MachineState,
        input: &dyn InputSource,
        out: &mut Generated,
    ) -> RtResult<()> {
        let interp = self.interp();

        for (i, t) in self.module.transitions.iter().enumerate() {
            if !t.from.contains(&st.control) {
                continue;
            }
            // Resolve the input clause first.
            let (params, fabricated) = match t.when {
                None => (Vec::new(), false),
                Some((ip, interaction, nparams)) => match input.head(ip) {
                    QueueHead::Message {
                        interaction: head_interaction,
                        params,
                    } if head_interaction == interaction => (params, false),
                    QueueHead::Message { .. } | QueueHead::Empty => continue,
                    QueueHead::EmptyMayGrow => {
                        out.incomplete = true;
                        continue;
                    }
                    QueueHead::Unobserved => (vec![Value::Undefined; nparams], true),
                },
            };

            // Evaluate the guard with the transition frame (any bindings +
            // input parameters).
            if let Some(guard) = &t.provided {
                let mut frame = self.transition_frame(t, &params);
                let enabled = if expr_has_calls(guard) {
                    // Guards containing function calls may have side
                    // effects; evaluate against a scratch copy.
                    let mut globals = st.globals.clone();
                    let mut heap = st.heap.clone();
                    let mut store = Store {
                        globals: &mut globals,
                        heap: &mut heap,
                    };
                    let mut sink = NullEnv::default();
                    interp.eval_guard(guard, &mut store, &mut frame, &mut sink)?
                } else {
                    let mut store = Store {
                        globals: &mut st.globals,
                        heap: &mut st.heap,
                    };
                    let mut sink = NullEnv::default();
                    interp.eval_guard(guard, &mut store, &mut frame, &mut sink)?
                };
                if !enabled {
                    continue;
                }
            }

            out.fireable.push(Fireable {
                trans: i,
                params,
                fabricated,
            });
        }
        Ok(())
    }

    /// Compiled *Generate*: walk only the dispatch-index bucket for the
    /// current control state (declaration order is preserved inside a
    /// bucket, so the fireable list is element-for-element identical to
    /// the linear scan's), cache one queue head per IP for the whole
    /// call, and evaluate guards on the bytecode VM.
    fn generate_compiled(
        &self,
        st: &mut MachineState,
        input: &dyn InputSource,
        out: &mut Generated,
    ) -> RtResult<()> {
        let program = &self.program;
        let v = Vm::new(program, self.policy);
        vm::with_scratch(|s| {
            let mut heads = std::mem::take(&mut s.heads);
            heads.clear();
            heads.resize(self.module.analyzed.ips.len(), None);
            let entries = program.dispatch.candidates(st.control);
            let mut result =
                self.generate_candidates(&v, s, &mut heads, st, input, out, entries);
            if program.dispatch.reordered {
                match &result {
                    Ok(()) => {
                        // A PGO-reordered bucket probes candidates out of
                        // declaration order; restore it on the fireable
                        // list so the observable result matches the
                        // linear scan element-for-element.
                        out.fireable.sort_by_key(|f| f.trans);
                    }
                    Err(_) => {
                        // A guard error must surface from the *first*
                        // declaration that raises it. Guard evaluation
                        // never commits state changes (call-carrying
                        // guards run on scratch copies), so replaying the
                        // bucket in declaration order reproduces the
                        // linear scan's error exactly.
                        out.fireable.clear();
                        out.incomplete = false;
                        let mut decl = entries.to_vec();
                        decl.sort_by_key(|e| e.trans);
                        result =
                            self.generate_candidates(&v, s, &mut heads, st, input, out, &decl);
                    }
                }
            }
            s.heads = heads;
            result
        })
    }

    /// One pass over a candidate list for [`Machine::generate_compiled`]:
    /// resolve each entry's `when` clause against the cached queue heads,
    /// evaluate its guard (quick shape → conjunction plan → bytecode
    /// chunk, cheapest first), and push the enabled candidates in list
    /// order.
    #[allow(clippy::too_many_arguments)]
    fn generate_candidates(
        &self,
        v: &Vm<'_>,
        s: &mut vm::VmScratch,
        heads: &mut [Option<QueueHead>],
        st: &mut MachineState,
        input: &dyn InputSource,
        out: &mut Generated,
        entries: &[crate::bytecode::DispatchEntry],
    ) -> RtResult<()> {
        for e in entries {
            let i = e.trans as usize;
            let (params, fabricated) = match e.when {
                None => (Vec::new(), false),
                Some((ip, interaction, nparams)) => {
                    let head =
                        heads[ip as usize].get_or_insert_with(|| input.head(ip as usize));
                    match head {
                        QueueHead::Message {
                            interaction: head_interaction,
                            params,
                        } if *head_interaction == interaction as usize => {
                            (params.clone(), false)
                        }
                        QueueHead::Message { .. } | QueueHead::Empty => continue,
                        QueueHead::EmptyMayGrow => {
                            out.incomplete = true;
                            continue;
                        }
                        QueueHead::Unobserved => {
                            (vec![Value::Undefined; nparams as usize], true)
                        }
                    }
                }
            };

            if let Some(g) = &self.program.guards[i] {
                // Trivial guard shapes evaluate against the globals
                // directly — no frame, no store, no VM loop entry. This
                // is where the dispatch index pays off on big tables:
                // the common `v = k` clause costs one comparison per
                // candidate.
                if let Some(q) = &g.quick {
                    use crate::bytecode::QuickGuard;
                    let value = match q {
                        QuickGuard::Const(v) => v.clone(),
                        QuickGuard::Global { slot } => st
                            .globals
                            .get(*slot as usize)
                            .cloned()
                            .ok_or_else(|| {
                                RuntimeError::internal("global slot out of range")
                            })?,
                        QuickGuard::GlobalOpConst {
                            slot,
                            op,
                            k,
                            swapped,
                            span,
                        } => {
                            let gv = st.globals.get(*slot as usize).ok_or_else(|| {
                                RuntimeError::internal("global slot out of range")
                            })?;
                            // Int-int compares — the dominant shape of
                            // padded transition tables — skip the Value
                            // destructuring in `apply_binary`.
                            match (gv, k) {
                                (Value::Int(g0), Value::Int(k0))
                                    if !matches!(op, estelle_ast::BinOp::In) =>
                                {
                                    let (x, y) =
                                        if *swapped { (*k0, *g0) } else { (*g0, *k0) };
                                    crate::interp::scalar::apply_binary_ints(
                                        *op, x, y, *span,
                                    )?
                                }
                                _ => {
                                    let (l, r) = if *swapped { (k, gv) } else { (gv, k) };
                                    crate::interp::scalar::apply_binary(
                                        self.policy,
                                        *op,
                                        l,
                                        r,
                                        *span,
                                    )?
                                }
                            }
                        }
                    };
                    if !crate::interp::scalar::guard_bool(self.policy, value)? {
                        continue;
                    }
                    out.fireable.push(Fireable {
                        trans: i,
                        params,
                        fabricated,
                    });
                    continue;
                }
                // Conjunction plans short-circuit `and` chains VM-free
                // when every referenced global is defined; otherwise
                // fall through to the chunk for exact source-order
                // undefined semantics.
                if let Some(cj) = &g.conj {
                    if let Some(enabled) = conj_eval(cj, &st.globals, self.policy) {
                        if !enabled {
                            continue;
                        }
                        out.fireable.push(Fireable {
                            trans: i,
                            params,
                            fabricated,
                        });
                        continue;
                    }
                }
                // Frameless guards (frozen `any` bindings folded to
                // constants, no surviving slot reads) skip the
                // per-candidate frame allocation entirely.
                let frame = if g.needs_frame {
                    self.transition_frame(&self.module.transitions[i], &params)
                } else {
                    Vec::new()
                };
                let mut sink = NullEnv::default();
                let value = if g.has_calls {
                    // Guards containing function calls may have side
                    // effects; evaluate against a scratch copy (same
                    // rule as the tree-walker).
                    let mut globals = st.globals.clone();
                    let mut heap = st.heap.clone();
                    let mut store = Store {
                        globals: &mut globals,
                        heap: &mut heap,
                    };
                    v.run(g.chunk, frame, &mut store, &mut sink, s)?
                } else {
                    let mut store = Store {
                        globals: &mut st.globals,
                        heap: &mut st.heap,
                    };
                    v.run(g.chunk, frame, &mut store, &mut sink, s)?
                };
                let value = value.ok_or_else(|| {
                    RuntimeError::internal("guard chunk produced no result")
                })?;
                if !crate::interp::scalar::guard_bool(self.policy, value)? {
                    continue;
                }
            }

            out.fireable.push(Fireable {
                trans: i,
                params,
                fabricated,
            });
        }
        Ok(())
    }

    /// *Update*: fire `f`, consuming its input, executing the block and
    /// emitting outputs to the environment's sink half. On
    /// [`FireOutcome::OutputRejected`] the state is left partially updated;
    /// the caller restores a saved state.
    pub fn fire(
        &self,
        st: &mut MachineState,
        f: &Fireable,
        env: &mut dyn crate::env::MachineEnv,
    ) -> RtResult<FireOutcome> {
        let t = &self.module.transitions[f.trans];
        if let Some((ip, _, _)) = t.when {
            if !f.fabricated {
                env.consume(ip);
            }
        }
        let mut frame = self.transition_frame(t, &f.params);
        let result = {
            let mut store = Store {
                globals: &mut st.globals,
                heap: &mut st.heap,
            };
            match self.resolved_exec() {
                ExecMode::Interp => {
                    self.interp()
                        .exec_block(&t.body, &mut store, &mut frame, env, 0)
                }
                ExecMode::Compiled | ExecMode::Auto => {
                    let v = Vm::new(&self.program, self.policy);
                    vm::with_scratch(|s| {
                        v.run(self.program.bodies[f.trans], frame, &mut store, env, s)
                    })
                    .map(|_| ())
                }
            }
        };
        match result {
            Ok(()) => {
                if let Some(to) = t.to {
                    st.control = to;
                }
                Ok(FireOutcome::Completed)
            }
            Err(e) if e.kind == RuntimeErrorKind::OutputRejected => {
                Ok(FireOutcome::OutputRejected)
            }
            Err(e) => Err(e),
        }
    }

    /// Build a transition's frame: `any` bindings, then input parameters,
    /// padded with defaults.
    fn transition_frame(
        &self,
        t: &crate::ir::CompiledTransition,
        params: &[Value],
    ) -> Vec<Value> {
        let mut frame: Vec<Value> = Vec::with_capacity(t.frame_size);
        for (i, &ord) in t.any_bindings.iter().enumerate() {
            frame.push(ordinal_to_value(
                &self.module.analyzed.types,
                t.any_types[i],
                ord,
            ));
        }
        frame.extend(params.iter().cloned());
        while frame.len() < t.frame_size {
            let ty = t.slot_types[frame.len()];
            frame.push(default_value(&self.module.analyzed.types, ty));
        }
        frame
    }

    /// Names of the compiled transitions, for display and statistics.
    pub fn transition_name(&self, index: usize) -> &str {
        &self.module.transitions[index].name
    }

    /// A transition's when-clause observable as `(IP name, interaction
    /// name)`; `None` for spontaneous transitions. Used by the telemetry
    /// event stream to tag fire events with the trace event they consume.
    pub fn transition_observable(&self, index: usize) -> Option<(&str, &str)> {
        let m = &self.module.analyzed;
        self.module.transitions[index]
            .when
            .map(|(ip, interaction, _)| {
                (
                    m.ips[ip].name.as_str(),
                    m.ips[ip].inputs[interaction].name.as_str(),
                )
            })
    }

    /// Number of compiled transitions (sizes telemetry's per-transition
    /// profile).
    pub fn transition_count(&self) -> usize {
        self.module.transitions.len()
    }
}

/// Evaluate a [`crate::bytecode::ConjGuard`] plan against the globals:
/// `Some(enabled)` when every referenced slot is defined and every term
/// evaluates cleanly to a boolean — in that regime the terms are total
/// and their order (PGO re-sorts them cheapest-first) is unobservable.
/// `None` sends the caller to the full chunk, which replays the guard in
/// exact source order for undefined operands and error cases.
fn conj_eval(
    cj: &crate::bytecode::ConjGuard,
    globals: &[Value],
    policy: UndefinedPolicy,
) -> Option<bool> {
    for &slot in &cj.slots {
        match globals.get(slot as usize) {
            Some(Value::Undefined) | None => return None,
            Some(_) => {}
        }
    }
    use crate::bytecode::QuickGuard;
    for t in &cj.terms {
        let holds = match t {
            QuickGuard::Const(Value::Bool(b)) => *b,
            QuickGuard::Const(_) => return None,
            QuickGuard::Global { slot } => match &globals[*slot as usize] {
                Value::Bool(b) => *b,
                _ => return None,
            },
            QuickGuard::GlobalOpConst {
                slot,
                op,
                k,
                swapped,
                span,
            } => {
                let gv = &globals[*slot as usize];
                let r = match (gv, k) {
                    (Value::Int(g0), Value::Int(k0))
                        if !matches!(op, estelle_ast::BinOp::In) =>
                    {
                        let (x, y) = if *swapped { (*k0, *g0) } else { (*g0, *k0) };
                        crate::interp::scalar::apply_binary_ints(*op, x, y, *span)
                    }
                    _ => {
                        let (l, r) = if *swapped { (k, gv) } else { (gv, k) };
                        crate::interp::scalar::apply_binary(policy, *op, l, r, *span)
                    }
                };
                match r {
                    Ok(Value::Bool(b)) => b,
                    _ => return None,
                }
            }
        };
        if !holds {
            return Some(false);
        }
    }
    Some(true)
}

/// Reify an ordinal as a value of the given scalar type.
pub fn ordinal_to_value(
    types: &estelle_frontend::sema::types::TypeTable,
    ty: TypeId,
    ord: i64,
) -> Value {
    match types.get(types.base_of(ty)) {
        Type::Boolean => Value::Bool(ord != 0),
        Type::Enum { .. } => Value::Enum(types.base_of(ty), ord),
        _ => Value::Int(ord),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PINGPONG: &str = r#"
        specification pingpong;
        channel C(peer, me);
            by peer: ping(n : integer);
            by me: pong(n : integer);
        end;
        module M process; ip P : C(me); end;
        body MB for M;
            var total : integer;
            state Idle;
            initialize to Idle begin total := 0 end;
            trans
            from Idle to Idle when P.ping provided n >= 0 name Tping:
            begin
                total := total + n;
                output P.pong(total);
            end;
        end;
        end.
    "#;

    /// A scripted single-IP environment for tests: FIFO input, recorded
    /// outputs, optional rejection of all outputs.
    struct Script {
        msgs: Vec<(usize, Vec<Value>)>,
        pos: usize,
        outputs: Vec<(usize, usize, Vec<Value>)>,
        reject_outputs: bool,
    }

    impl Script {
        fn new(msgs: Vec<(usize, Vec<Value>)>) -> Self {
            Script {
                msgs,
                pos: 0,
                outputs: Vec::new(),
                reject_outputs: false,
            }
        }
    }

    impl InputSource for Script {
        fn head(&self, ip: usize) -> QueueHead {
            assert_eq!(ip, 0);
            match self.msgs.get(self.pos) {
                Some((interaction, params)) => QueueHead::Message {
                    interaction: *interaction,
                    params: params.clone(),
                },
                None => QueueHead::Empty,
            }
        }
        fn consume(&mut self, _ip: usize) {
            self.pos += 1;
        }
    }

    impl OutputSink for Script {
        fn emit(&mut self, ip: usize, interaction: usize, params: Vec<Value>) -> bool {
            if self.reject_outputs {
                return false;
            }
            self.outputs.push((ip, interaction, params));
            true
        }
    }

    #[test]
    fn generate_fire_cycle() {
        let m = Machine::from_source(PINGPONG).expect("builds");
        let mut st = m.initial_state().expect("initializes");
        assert_eq!(st.globals[0], Value::Int(0));

        let mut env = Script::new(vec![(0, vec![Value::Int(3)]), (0, vec![Value::Int(4)])]);

        let g = m.generate(&mut st, &env).unwrap();
        assert_eq!(g.fireable.len(), 1);
        assert!(!g.incomplete);

        let out = m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(out, FireOutcome::Completed);
        assert_eq!(st.globals[0], Value::Int(3));
        assert_eq!(env.outputs, vec![(0, 0, vec![Value::Int(3)])]);

        let g = m.generate(&mut st, &env).unwrap();
        m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(st.globals[0], Value::Int(7));
    }

    #[test]
    fn guard_blocks_firing() {
        let m = Machine::from_source(PINGPONG).unwrap();
        let mut st = m.initial_state().unwrap();
        let env = Script::new(vec![(0, vec![Value::Int(-1)])]);
        let g = m.generate(&mut st, &env).unwrap();
        assert!(g.fireable.is_empty());
    }

    #[test]
    fn save_restore_is_clone() {
        let m = Machine::from_source(PINGPONG).unwrap();
        let mut st = m.initial_state().unwrap();
        let saved = st.clone();
        let mut env = Script::new(vec![(0, vec![Value::Int(5)])]);
        let g = m.generate(&mut st, &env).unwrap();
        m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(st.globals[0], Value::Int(5));
        st = saved;
        assert_eq!(st.globals[0], Value::Int(0));
    }

    #[test]
    fn rejected_output_reports_outcome() {
        let m = Machine::from_source(PINGPONG).unwrap();
        let mut st = m.initial_state().unwrap();
        let mut env = Script::new(vec![(0, vec![Value::Int(1)])]);
        env.reject_outputs = true;
        let g = m.generate(&mut st, &env).unwrap();
        let out = m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(out, FireOutcome::OutputRejected);
    }

    #[test]
    fn initial_state_at_overrides_control_only() {
        let m = Machine::from_source(PINGPONG).unwrap();
        let st = m.initial_state_at(StateId(0)).unwrap();
        assert_eq!(st.control, StateId(0));
        assert_eq!(st.globals[0], Value::Int(0));
    }

    #[test]
    fn approx_bytes_charges_pointer_targets_once() {
        let mut heap = crate::heap::Heap::new();
        let r = heap.alloc(Value::Array(vec![Value::Int(1); 8]));
        // Two globals point at the same cell: each contributes only its
        // inline pointer; the pointee is charged once, by the heap.
        let st = MachineState {
            control: StateId(0),
            globals: vec![Value::Pointer(Some(r)), Value::Pointer(Some(r))],
            heap,
        };
        let expected = std::mem::size_of::<MachineState>()
            + 2 * std::mem::size_of::<Value>()
            + st.heap.approx_bytes();
        assert_eq!(st.approx_bytes(), expected);

        // Dropping one referencing global removes exactly one inline
        // pointer from the estimate — nothing heap-side was tied to it.
        let mut one = st.clone();
        one.globals.pop();
        assert_eq!(one.approx_bytes(), expected - std::mem::size_of::<Value>());
    }

    #[test]
    fn snapshot_shares_heap_and_deep_snapshot_does_not() {
        let m = Machine::from_source(PINGPONG).unwrap();
        let mut st = m.initial_state().unwrap();
        st.heap.alloc(Value::Int(7));

        let snap = st.snapshot();
        assert_eq!(st.heap.shared_chunks(), 1, "COW snapshot shares chunks");
        assert_eq!(snap, st);

        let deep = st.deep_snapshot();
        assert_eq!(deep.heap.shared_chunks(), 0, "deep snapshot owns chunks");
        assert_eq!(deep, st);

        // Mutating the live state never leaks into either snapshot.
        let mut env = Script::new(vec![(0, vec![Value::Int(5)])]);
        let g = m.generate(&mut st, &env).unwrap();
        m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(st.globals[0], Value::Int(5));
        assert_eq!(snap.globals[0], Value::Int(0));
        assert_eq!(deep.globals[0], Value::Int(0));
    }

    #[test]
    fn priority_filters_fireable_set() {
        let src = r#"
            specification prio;
            module M process; end;
            body MB for M;
                var n : integer;
                state S;
                initialize to S begin n := 0 end;
                trans
                from S to S priority 5 name Low: begin n := 1 end;
                from S to S priority 1 name High: begin n := 2 end;
            end;
            end.
        "#;
        let m = Machine::from_source(src).unwrap();
        let mut st = m.initial_state().unwrap();
        let input = NullEnv::default();
        let g = m.generate(&mut st, &input).unwrap();
        assert_eq!(g.fireable.len(), 1);
        assert_eq!(m.transition_name(g.fireable[0].trans), "High");
    }
}
