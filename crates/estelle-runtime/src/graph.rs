//! Graphviz export of the compiled EFSM.
//!
//! Renders the compiled transition system as a `dot` digraph: one node
//! per FSM state (the initial state double-circled), one edge per
//! compiled transition, labelled with its name, input clause, guard
//! presence and the interactions its body can emit. Useful for reviewing
//! a specification before trusting it as a trace-analysis oracle:
//!
//! ```sh
//! tango graph spec.est | dot -Tsvg > spec.svg
//! ```

use crate::compile::CompiledModule;
use crate::ir::CStmt;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render the module as Graphviz `dot` text.
pub fn to_dot(module: &CompiledModule) -> String {
    render(module, None)
}

/// Render the module with a per-transition heat overlay: `weights` maps
/// each compiled transition id to a hotness in `[0, 1]` (edge color
/// interpolates gray → red and the pen widens with heat), and
/// `annotations` adds one extra label line per transition (empty strings
/// are skipped). Both slices are indexed by compiled transition id;
/// missing entries render unheated. `exec_mode` names the executor that
/// produced the profile (`"compiled"` or `"interp"`) and is stamped into
/// the graph caption so A/B overlays are never confused for one another.
/// This is the profile overlay behind `tango analyze --profile-dot`.
pub fn to_dot_with_heat(
    module: &CompiledModule,
    weights: &[f64],
    annotations: &[String],
    exec_mode: &str,
) -> String {
    render(module, Some((weights, annotations, exec_mode)))
}

fn render(module: &CompiledModule, heat: Option<(&[f64], &[String], &str)>) -> String {
    let m = &module.analyzed;
    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(&m.module_name)).unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    if let Some((_, _, exec_mode)) = heat {
        writeln!(
            out,
            "  label=\"transition profile (exec={})\"; labelloc=t;",
            exec_mode.replace('"', "\\\"")
        )
        .unwrap();
    }
    writeln!(out, "  node [shape=circle, fontname=\"monospace\"];").unwrap();
    writeln!(out, "  edge [fontname=\"monospace\", fontsize=10];").unwrap();

    for (i, name) in m.states.iter().enumerate() {
        let shape = if i == module.init_to.0 as usize {
            "doublecircle"
        } else {
            "circle"
        };
        writeln!(out, "  s{} [label=\"{}\", shape={}];", i, name, shape).unwrap();
    }

    for (idx, t) in module.transitions.iter().enumerate() {
        let mut label = t.name.clone();
        if let Some((ip, interaction, _)) = t.when {
            write!(
                label,
                "\\nwhen {}.{}",
                m.ips[ip].name, m.ips[ip].inputs[interaction].name
            )
            .unwrap();
        }
        if t.provided.is_some() {
            label.push_str("\\n[guarded]");
        }
        let outputs = body_outputs(module, &t.body);
        if !outputs.is_empty() {
            write!(
                label,
                "\\n/ {}",
                outputs.into_iter().collect::<Vec<_>>().join(", ")
            )
            .unwrap();
        }
        let mut extra = String::new();
        if let Some((weights, annotations, _)) = heat {
            if let Some(a) = annotations.get(idx) {
                if !a.is_empty() {
                    write!(label, "\\n{}", a).unwrap();
                }
            }
            let w = weights.get(idx).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            write!(
                extra,
                ", color=\"{}\", penwidth={:.2}",
                heat_color(w),
                1.0 + 3.0 * w
            )
            .unwrap();
        }
        for &from in &t.from {
            let to = t.to.unwrap_or(from);
            writeln!(
                out,
                "  s{} -> s{} [label=\"{}\"{}];",
                from.0,
                to.0,
                label.replace('"', "\\\""),
                extra
            )
            .unwrap();
        }
    }

    out.push_str("}\n");
    out
}

/// Linear gray → red ramp for heat weight `w` in `[0, 1]`.
fn heat_color(w: f64) -> String {
    let lerp = |a: u8, b: u8| (a as f64 + w * (b as f64 - a as f64)).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(0xb0, 0xd6),
        lerp(0xb0, 0x27),
        lerp(0xb0, 0x28)
    )
}

/// `ip.interaction` pairs an IR block may emit, in stable order.
fn body_outputs(module: &CompiledModule, body: &[CStmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_outputs(module, body, &mut out);
    out
}

fn collect_outputs(module: &CompiledModule, body: &[CStmt], out: &mut BTreeSet<String>) {
    let m = &module.analyzed;
    for s in body {
        match s {
            CStmt::Output { ip, interaction, .. } => {
                out.insert(format!(
                    "{}.{}",
                    m.ips[*ip].name, m.ips[*ip].outputs[*interaction].name
                ));
            }
            CStmt::If(_, a, b, _) => {
                collect_outputs(module, a, out);
                collect_outputs(module, b, out);
            }
            CStmt::While(_, b, _) | CStmt::Repeat(b, _, _) => collect_outputs(module, b, out),
            CStmt::For { body, .. } => collect_outputs(module, body, out),
            CStmt::Case {
                arms, else_arm, ..
            } => {
                for (_, b) in arms {
                    collect_outputs(module, b, out);
                }
                if let Some(b) = else_arm {
                    collect_outputs(module, b, out);
                }
            }
            CStmt::Call(call) => {
                // Routines may emit too.
                collect_outputs(module, &module.routines[call.routine].body, out);
            }
            _ => {}
        }
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn dot_contains_states_and_labeled_edges() {
        let m = Machine::from_source(
            r#"
            specification g;
            channel C(env, m); by env: ping; by m: pong; end;
            module M process; ip P : C(m); end;
            body MB for M;
                var n : integer;
                state Idle, Busy;
                initialize to Idle begin n := 0 end;
                trans
                from Idle to Busy when P.ping provided n = 0 name Go:
                    begin output P.pong end;
                from Busy to Idle name Back:
                    begin n := 0; output P.pong end;
            end;
            end.
            "#,
        )
        .unwrap();
        let dot = to_dot(&m.module);
        assert!(dot.starts_with("digraph M {"));
        assert!(dot.contains("label=\"Idle\", shape=doublecircle"));
        assert!(dot.contains("label=\"Busy\", shape=circle"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("when P.ping"));
        assert!(dot.contains("[guarded]"));
        assert!(dot.contains("/ P.pong"));
    }

    #[test]
    fn outputs_inside_routines_are_attributed() {
        let m = Machine::from_source(
            r#"
            specification g;
            channel C(env, m); by env: ping; by m: pong; end;
            module M process; ip P : C(m); end;
            body MB for M;
                procedure reply; begin output P.pong end;
                state S;
                initialize to S begin end;
                trans
                from S to S when P.ping name Hit: begin reply end;
            end;
            end.
            "#,
        )
        .unwrap();
        let dot = to_dot(&m.module);
        assert!(dot.contains("/ P.pong"));
    }

    #[test]
    fn heat_overlay_colors_and_annotates_edges() {
        let m = Machine::from_source(
            r#"
            specification g;
            channel C(env, m); by env: ping; by m: pong; end;
            module M process; ip P : C(m); end;
            body MB for M;
                state Idle, Busy;
                initialize to Idle begin end;
                trans
                from Idle to Busy when P.ping name Go: begin output P.pong end;
                from Busy to Idle name Back: begin end;
            end;
            end.
            "#,
        )
        .unwrap();
        let dot = to_dot_with_heat(
            &m.module,
            &[1.0, 0.0],
            &["9 fired, 1 failed, 3.0ms".to_string(), String::new()],
            "compiled",
        );
        // Hottest edge: full red, widest pen, annotated label line.
        assert!(dot.contains("color=\"#d62728\", penwidth=4.00"), "{}", dot);
        assert!(dot.contains("9 fired, 1 failed, 3.0ms"), "{}", dot);
        // Cold edge: base gray, base pen, no annotation.
        assert!(dot.contains("color=\"#b0b0b0\", penwidth=1.00"), "{}", dot);
        // The caption names the executor that produced the profile.
        assert!(
            dot.contains("transition profile (exec=compiled)"),
            "{}",
            dot
        );
        // The plain exporter is unchanged by the overlay machinery.
        assert!(!to_dot(&m.module).contains("penwidth"));
        assert!(!to_dot(&m.module).contains("labelloc"));
    }

    #[test]
    fn to_same_renders_self_loop() {
        let m = Machine::from_source(
            r#"
            specification g;
            channel C(env, m); by env: tick; end;
            module M process; ip P : C(m); end;
            body MB for M;
                state A, B;
                initialize to A begin end;
                trans
                from A, B to same when P.tick name Loop: begin end;
            end;
            end.
            "#,
        )
        .unwrap();
        let dot = to_dot(&m.module);
        assert!(dot.contains("s0 -> s0"));
        assert!(dot.contains("s1 -> s1"));
    }
}
