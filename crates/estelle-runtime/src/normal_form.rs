//! The §5.3 normal-form transformation.
//!
//! Partial-trace analysis cannot execute control statements whose condition
//! is undefined. The paper's remedy is "a straightforward transformation of
//! the specification into a normal form \[16\] which eliminates `case` and
//! `if/then/else` statements by adding states and transitions": each
//! transition whose body branches is split into one transition per branch,
//! with the branch condition conjoined onto the `provided` clause — turning
//! data-dependent control flow into fireability nondeterminism, which the
//! backtracking search already handles (undefined `provided` clauses are
//! assumed true, §5.1).
//!
//! The transformation is applied on the syntax tree, so its result can be
//! pretty-printed, re-analyzed and compiled like any hand-written
//! specification.
//!
//! Soundness precondition: the lifted condition must be evaluated in the
//! *pre-transition* state, so a branch is only lifted when no statement
//! before it in the block can modify a variable the condition reads. Loops
//! (`while`/`repeat`/`for`) are not eliminable this way — the paper notes
//! supporting them "is impractical" — and are reported instead.

use estelle_ast::*;
use std::collections::HashSet;
use std::fmt;

/// Why a transition could not be normalized.
#[derive(Debug, Clone)]
pub struct NormalFormError {
    pub transition: String,
    pub reason: String,
    pub span: Span,
}

impl fmt::Display for NormalFormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot normalize transition `{}`: {}",
            self.transition, self.reason
        )
    }
}

impl std::error::Error for NormalFormError {}

/// Transform every module body of the specification.
pub fn normalize_specification(spec: &Specification) -> Result<Specification, NormalFormError> {
    let mut out = spec.clone();
    for body in &mut out.body.bodies {
        *body = normalize_body(body)?;
    }
    Ok(out)
}

/// Split branching transitions of one module body into branch-free ones.
pub fn normalize_body(body: &ModuleBody) -> Result<ModuleBody, NormalFormError> {
    let mut out = body.clone();
    let mut transitions = Vec::new();
    for t in &body.transitions {
        normalize_transition(t, &mut transitions)?;
    }
    out.transitions = transitions;
    Ok(out)
}

fn normalize_transition(
    t: &Transition,
    out: &mut Vec<Transition>,
) -> Result<(), NormalFormError> {
    let t_name = t
        .name
        .as_ref()
        .map(|n| n.text.clone())
        .unwrap_or_else(|| "<unnamed>".to_string());

    // Work queue of variants still possibly containing branches.
    let mut seed = t.clone();
    seed.block = flatten_block(&seed.block);
    let mut queue = vec![seed];
    let mut guard_iterations = 0usize;
    while let Some(variant) = queue.pop() {
        guard_iterations += 1;
        if guard_iterations > 4096 {
            return Err(NormalFormError {
                transition: t_name.clone(),
                reason: "normal-form expansion exceeded 4096 variants".to_string(),
                span: t.span,
            });
        }
        match split_first_branch(&variant, &t_name)? {
            None => out.push(variant),
            Some(variants) => queue.extend(variants),
        }
    }
    Ok(())
}

/// If the block contains a liftable `if`/`case`, produce one variant per
/// branch; `None` when the block is already branch-free.
fn split_first_branch(
    t: &Transition,
    t_name: &str,
) -> Result<Option<Vec<Transition>>, NormalFormError> {
    let Some(pos) = t.block.iter().position(|s| s.kind.is_control()) else {
        return Ok(None);
    };
    let stmt = &t.block[pos];

    // Reject loops: not expressible as guard strengthening.
    if matches!(
        stmt.kind,
        StmtKind::While { .. } | StmtKind::Repeat { .. } | StmtKind::For { .. }
    ) {
        return Err(NormalFormError {
            transition: t_name.to_string(),
            reason: "loops cannot be eliminated by the normal-form transformation"
                .to_string(),
            span: stmt.span,
        });
    }

    // Soundness: nothing before the branch may write what the condition
    // reads (and no routine call, whose effects we cannot see).
    let cond_reads = match &stmt.kind {
        StmtKind::If { cond, .. } => expr_names(cond),
        StmtKind::Case { scrutinee, .. } => expr_names(scrutinee),
        _ => unreachable!("only if/case reach here"),
    };
    for before in &t.block[..pos] {
        if stmt_may_write(before, &cond_reads) {
            return Err(NormalFormError {
                transition: t_name.to_string(),
                reason: format!(
                    "a statement before the branch may modify `{}`, which the \
                     branch condition reads",
                    cond_reads.iter().cloned().collect::<Vec<_>>().join("`, `")
                ),
                span: before.span,
            });
        }
    }

    let prefix = &t.block[..pos];
    let suffix = &t.block[pos + 1..];
    let mut variants = Vec::new();

    let mut push_variant = |extra_guard: Expr, branch_body: Vec<Stmt>| {
        let mut v = t.clone();
        v.provided = Some(match &t.provided {
            None => extra_guard,
            Some(p) => Expr::new(
                ExprKind::Binary(
                    BinOp::And,
                    Box::new(p.clone()),
                    Box::new(extra_guard),
                ),
                p.span,
            ),
        });
        let mut block = prefix.to_vec();
        block.extend(branch_body);
        block.extend_from_slice(suffix);
        v.block = flatten_block(&block);
        // Variant names keep the origin visible in diagnostics and stats.
        v.name = t
            .name
            .as_ref()
            .map(|n| Ident::new(format!("{}_nf{}", n.text, variants.len() + 1), n.span));
        variants.push(v);
    };

    match &stmt.kind {
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            push_variant(cond.clone(), vec![(**then_branch).clone()]);
            let not_cond = Expr::new(
                ExprKind::Unary(UnOp::Not, Box::new(cond.clone())),
                cond.span,
            );
            let else_body = match else_branch {
                Some(e) => vec![(**e).clone()],
                None => Vec::new(),
            };
            push_variant(not_cond, else_body);
        }
        StmtKind::Case {
            scrutinee,
            arms,
            else_arm,
        } => {
            let mut all_labels: Vec<Expr> = Vec::new();
            for arm in arms {
                // provided: scrutinee = l1 or scrutinee = l2 ...
                let guard = arm
                    .labels
                    .iter()
                    .map(|l| {
                        Expr::new(
                            ExprKind::Binary(
                                BinOp::Eq,
                                Box::new(scrutinee.clone()),
                                Box::new(l.clone()),
                            ),
                            l.span,
                        )
                    })
                    .reduce(|a, b| {
                        let span = a.span.to(b.span);
                        Expr::new(ExprKind::Binary(BinOp::Or, Box::new(a), Box::new(b)), span)
                    })
                    .expect("case arms have at least one label");
                all_labels.extend(arm.labels.iter().cloned());
                push_variant(guard, vec![arm.body.clone()]);
            }
            // The else (or implicit fall-through) variant: none of the
            // labels matched.
            let none_match = all_labels
                .iter()
                .map(|l| {
                    Expr::new(
                        ExprKind::Binary(
                            BinOp::Ne,
                            Box::new(scrutinee.clone()),
                            Box::new(l.clone()),
                        ),
                        l.span,
                    )
                })
                .reduce(|a, b| {
                    let span = a.span.to(b.span);
                    Expr::new(ExprKind::Binary(BinOp::And, Box::new(a), Box::new(b)), span)
                })
                .unwrap_or_else(|| Expr::new(ExprKind::BoolLit(true), stmt.span));
            let else_body = else_arm.clone().unwrap_or_default();
            push_variant(none_match, else_body);
        }
        _ => unreachable!(),
    }

    Ok(Some(variants))
}

/// Inline `begin ... end` groups so every branch sits at block top level
/// where the splitter can see it. Compound statements carry no scope in
/// Pascal, so flattening is semantics-preserving.
fn flatten_block(block: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(block.len());
    for s in block {
        match &s.kind {
            StmtKind::Compound(inner) => out.extend(flatten_block(inner)),
            StmtKind::Empty => {}
            _ => out.push(s.clone()),
        }
    }
    out
}

/// All root identifiers an expression reads.
fn expr_names(e: &Expr) -> HashSet<String> {
    struct Collect(HashSet<String>);
    impl visit::Visitor for Collect {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Name(n) = &e.kind {
                self.0.insert(n.key().to_string());
            }
            visit::walk_expr(self, e);
        }
    }
    let mut c = Collect(HashSet::new());
    visit::walk_expr(&mut c, e);
    if let ExprKind::Name(n) = &e.kind {
        c.0.insert(n.key().to_string());
    }
    c.0
}

/// Conservative: can executing `s` modify any of `names`?
fn stmt_may_write(s: &Stmt, names: &HashSet<String>) -> bool {
    match &s.kind {
        StmtKind::Empty | StmtKind::Output { .. } => false,
        StmtKind::Assign { target, .. } => root_name(target)
            .map(|n| names.contains(&n))
            .unwrap_or(true),
        // Routine calls and dynamic memory can alias anything we read
        // through pointers; stay conservative.
        StmtKind::ProcCall { .. } | StmtKind::New(_) | StmtKind::Dispose(_) => true,
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            stmt_may_write(then_branch, names)
                || else_branch
                    .as_deref()
                    .map(|e| stmt_may_write(e, names))
                    .unwrap_or(false)
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => stmt_may_write(body, names),
        StmtKind::Repeat { body, .. } => body.iter().any(|s| stmt_may_write(s, names)),
        StmtKind::Case { arms, else_arm, .. } => {
            arms.iter().any(|a| stmt_may_write(&a.body, names))
                || else_arm
                    .as_ref()
                    .map(|b| b.iter().any(|s| stmt_may_write(s, names)))
                    .unwrap_or(false)
        }
        StmtKind::Compound(stmts) => stmts.iter().any(|s| stmt_may_write(s, names)),
    }
}

/// The root identifier of an l-value, if it has one.
fn root_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Name(n) => Some(n.key().to_string()),
        ExprKind::Field(base, _) | ExprKind::Index(base, _) | ExprKind::Deref(base) => {
            root_name(base)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_frontend::parse_specification;

    fn spec_with(trans: &str) -> Specification {
        parse_specification(&format!(
            r#"
            specification s;
            channel C(a, b); by a: get(n : integer); by b: lo; hi; end;
            module M process; ip P : C(b); end;
            body MB for M;
                var x : integer;
                state S1, S2;
                initialize to S1 begin x := 0 end;
                trans
                {}
            end;
            end.
            "#,
            trans
        ))
        .expect("parses")
    }

    #[test]
    fn if_splits_into_two_guarded_transitions() {
        let spec = spec_with(
            "from S1 to S2 when P.get name T: begin \
               if n > 5 then output P.hi else output P.lo; \
               x := x + 1 \
             end;",
        );
        let norm = normalize_specification(&spec).expect("normalizes");
        let body = &norm.body.bodies[0];
        assert_eq!(body.transitions.len(), 2);
        for t in &body.transitions {
            assert!(t.provided.is_some());
            assert!(!t.block.iter().any(|s| s.kind.is_control()));
            assert_eq!(t.block.len(), 2); // branch body + x := x + 1
        }
        // The normalized spec must re-analyze cleanly.
        estelle_frontend::analyze_spec(&norm, Default::default()).expect("re-analyzes");
    }

    #[test]
    fn case_splits_per_arm_plus_else() {
        let spec = spec_with(
            "from S1 to S1 when P.get name T: begin \
               case n of 1 : output P.lo; 2, 3 : output P.hi else x := 9 end \
             end;",
        );
        let norm = normalize_specification(&spec).unwrap();
        // arm(1), arm(2,3), else → 3 transitions.
        assert_eq!(norm.body.bodies[0].transitions.len(), 3);
        estelle_frontend::analyze_spec(&norm, Default::default()).expect("re-analyzes");
    }

    #[test]
    fn nested_ifs_fully_flatten() {
        let spec = spec_with(
            "from S1 to S1 when P.get name T: begin \
               if n > 0 then begin if n > 10 then output P.hi else output P.lo end \
             end;",
        );
        let norm = normalize_specification(&spec).unwrap();
        let trans = &norm.body.bodies[0].transitions;
        assert!(trans.len() >= 3);
        assert!(trans
            .iter()
            .all(|t| !t.block.iter().any(|s| s.kind.is_control())));
    }

    #[test]
    fn write_before_branch_is_rejected() {
        let spec = spec_with(
            "from S1 to S1 when P.get name T: begin \
               x := n; \
               if x > 5 then output P.hi \
             end;",
        );
        let err = normalize_specification(&spec).unwrap_err();
        assert!(err.reason.contains("modify"));
    }

    #[test]
    fn loops_are_rejected() {
        let spec = spec_with(
            "from S1 to S1 when P.get name T: begin \
               while x > 0 do x := x - 1 \
             end;",
        );
        let err = normalize_specification(&spec).unwrap_err();
        assert!(err.reason.contains("loops"));
    }

    #[test]
    fn branch_free_specs_pass_through() {
        let spec = spec_with("from S1 to S2 when P.get name T: begin x := n end;");
        let norm = normalize_specification(&spec).unwrap();
        assert_eq!(norm.body.bodies[0].transitions.len(), 1);
    }
}
