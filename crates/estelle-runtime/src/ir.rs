//! The compiled intermediate representation.
//!
//! The compiler (the *Dingo* analog) lowers an analyzed module into this
//! slot-addressed IR: names are resolved to indices, record fields to field
//! positions, array bounds are cached, enum literals and constants are
//! folded into values. The interpreter executes the IR directly; nothing in
//! it requires name lookups at run time.

use crate::value::Value;
use estelle_ast::{BinOp, Span, UnOp};
use estelle_frontend::sema::model::StateId;
use estelle_frontend::sema::types::TypeId;

/// Where a scalar variable lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Module-level variable: index into the global store.
    Global(usize),
    /// Routine parameter/local, `when` parameter, `any` binding or for-loop
    /// variable of the current frame.
    Local(usize),
}

/// A compiled expression.
#[derive(Clone, Debug)]
pub enum CExpr {
    /// A folded constant or literal.
    Const(Value),
    Read(Slot),
    /// Record field by position.
    Field(Box<CExpr>, usize),
    /// `base[idx]`; `lo`/`len` are the array's cached bounds.
    Index {
        base: Box<CExpr>,
        index: Box<CExpr>,
        lo: i64,
        len: usize,
    },
    Deref(Box<CExpr>),
    Unary(UnOp, Box<CExpr>, Span),
    Binary(BinOp, Box<CExpr>, Box<CExpr>, Span),
    Call(CCall),
    /// Set constructor; elements evaluate to ordinals, ranges expand at
    /// evaluation time.
    SetCtor(Vec<CSetElem>, Span),
}

/// One element of a compiled set constructor.
#[derive(Clone, Debug)]
pub enum CSetElem {
    Single(CExpr),
    Range(CExpr, CExpr),
}

/// A compiled routine invocation (expression or statement position).
#[derive(Clone, Debug)]
pub struct CCall {
    pub routine: usize,
    pub args: Vec<CArg>,
    pub span: Span,
}

/// An actual argument.
#[derive(Clone, Debug)]
pub enum CArg {
    /// Pass by value.
    Value(CExpr),
    /// Pass by reference (`var` parameter): a place evaluated at call time.
    Ref(CPlace),
}

/// A compiled storage location (l-value).
#[derive(Clone, Debug)]
pub enum CPlace {
    Var(Slot),
    Field(Box<CPlace>, usize),
    Index {
        base: Box<CPlace>,
        index: Box<CExpr>,
        lo: i64,
        len: usize,
        span: Span,
    },
    Deref(Box<CPlace>, Span),
}

/// A compiled statement.
#[derive(Clone, Debug)]
pub enum CStmt {
    Assign(CPlace, CExpr, Span),
    If(CExpr, Vec<CStmt>, Vec<CStmt>, Span),
    While(CExpr, Vec<CStmt>, Span),
    Repeat(Vec<CStmt>, CExpr, Span),
    For {
        var: CPlace,
        from: CExpr,
        down: bool,
        to: CExpr,
        body: Vec<CStmt>,
        span: Span,
    },
    /// Labels are folded ordinals.
    Case {
        scrutinee: CExpr,
        arms: Vec<(Vec<i64>, Vec<CStmt>)>,
        else_arm: Option<Vec<CStmt>>,
        span: Span,
    },
    Output {
        ip: usize,
        interaction: usize,
        args: Vec<CExpr>,
        span: Span,
    },
    Call(CCall),
    /// `new(place)` — the pointee type drives default-value construction.
    New(CPlace, TypeId, Span),
    Dispose(CPlace, Span),
}

/// A compiled procedure/function.
#[derive(Clone, Debug)]
pub struct CompiledRoutine {
    pub name: String,
    /// Number of parameters; their frame slots are `0..params`.
    pub params: usize,
    /// Which parameters are by-reference.
    pub by_ref: Vec<bool>,
    /// Total frame size: params + locals (+ result slot for functions).
    pub frame_size: usize,
    /// Frame slot of the function result, if a function.
    pub result_slot: Option<usize>,
    /// Types of each frame slot, used to build default local values.
    pub slot_types: Vec<TypeId>,
    pub body: Vec<CStmt>,
}

/// A compiled transition: one `any`-binding instance of a declaration.
#[derive(Clone, Debug)]
pub struct CompiledTransition {
    /// Index of the source `TransitionInfo` declaration.
    pub decl_index: usize,
    /// Display name: the declaration name plus any `any` bindings, e.g.
    /// `T7[k=2]`.
    pub name: String,
    /// Source states; fireable only when the control state is a member.
    pub from: Vec<StateId>,
    /// `None` = `to same`.
    pub to: Option<StateId>,
    /// Input clause: (ip index, interaction index into that IP's inputs,
    /// number of parameters). The parameters are bound to frame slots
    /// `any_bindings.len() ..` in declaration order.
    pub when: Option<(usize, usize, usize)>,
    pub provided: Option<CExpr>,
    pub priority: u32,
    /// Frozen `any` values, bound to the first frame slots.
    pub any_bindings: Vec<i64>,
    /// Types of the `any` slots (for display only; bindings are ordinals).
    pub any_types: Vec<TypeId>,
    /// Frame size for executing this transition: any bindings + when params
    /// + for-loop temporaries.
    pub frame_size: usize,
    pub slot_types: Vec<TypeId>,
    pub body: Vec<CStmt>,
    pub span: Span,
}

impl CompiledTransition {
    /// True if the transition needs no input interaction (spontaneous).
    pub fn is_spontaneous(&self) -> bool {
        self.when.is_none()
    }
}
