//! Estelle dynamic memory.
//!
//! `new`/`dispose` allocate and free cells in a per-machine [`Heap`]. The
//! heap is part of the TAM state (paper §2.3): depth-first search must be
//! able to *save* and *restore* it around backtracking — the cost §3.2.2
//! identifies as the dominant one for MDFS.
//!
//! Storage is **chunked and copy-on-write**: cells live in fixed-size
//! chunks behind [`Arc`]s, so cloning a heap (the paper's *Save*) copies
//! only the chunk table — O(slots / CHUNK_CELLS) pointer bumps — and
//! shares every chunk with the original. A chunk is deep-copied lazily,
//! the first time a *write* (`alloc`, `dispose`, `get_mut`) lands in a
//! chunk that is still shared with some snapshot. A search that saves a
//! state and then touches three cells pays for one chunk, not for the
//! whole heap. [`Heap::unshare`] forces every chunk private again, which
//! is exactly the old eager deep-clone behaviour — the trace analyzer's
//! `--cow=off` A/B path.
//!
//! References carry a generation counter so a dangling pointer (use after
//! `dispose`) is detected deterministically instead of reading stale data.

use crate::error::{RtResult, RuntimeError};
use crate::fxhash::FxHasher;
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Cells per chunk. Small enough that a copy-on-write break after a
/// snapshot copies a handful of cells, large enough that the chunk table
/// stays short. 8 keeps the break cost near the "touched cells" ideal for
/// the pointer-linked protocol buffers the paper measures.
pub const CHUNK_CELLS: usize = 8;
const CHUNK_BITS: u32 = CHUNK_CELLS.trailing_zeros();
const CHUNK_MASK: u32 = CHUNK_CELLS as u32 - 1;

/// A checked reference into a [`Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HeapRef {
    index: u32,
    generation: u32,
}

impl fmt::Display for HeapRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}g{}", self.index, self.generation)
    }
}

impl HeapRef {
    /// The reference's raw (slot index, generation) pair, for the stable
    /// state codec. Safe to expose: a reconstructed ref is still checked
    /// against the cell's generation on every access.
    pub(crate) fn raw_parts(&self) -> (u32, u32) {
        (self.index, self.generation)
    }

    /// Rebuild a reference from its codec representation.
    pub(crate) fn from_raw_parts(index: u32, generation: u32) -> Self {
        HeapRef { index, generation }
    }
}

#[derive(Clone, Debug, Hash, PartialEq)]
enum Cell {
    Free { generation: u32 },
    Used { generation: u32, value: Value },
}

impl Cell {
    /// Bytes this cell's storage accounts for: its in-chunk slot plus
    /// whatever its value owns *out of line* (the value's inline portion
    /// already lives in the slot).
    fn approx_bytes(&self) -> usize {
        match self {
            Cell::Free { .. } => std::mem::size_of::<Cell>(),
            Cell::Used { value, .. } => {
                std::mem::size_of::<Cell>() + value.approx_bytes() - std::mem::size_of::<Value>()
            }
        }
    }
}

/// One storage chunk plus a cached content digest. The cache makes the
/// *whole-heap* hash and byte estimate — computed on every *Save* by the
/// trace analyzer's snapshot-interning store — O(chunks) instead of
/// O(cells): only chunks written since the last digest are rescanned,
/// which is the same "touched chunks" bound the copy-on-write clone gives
/// the state copy itself.
#[derive(Clone, Debug)]
struct Chunk {
    cells: Arc<Vec<Cell>>,
    /// Cached (content hash, approx bytes) of `cells`; cleared by writes.
    /// Caches travel with clones (same content ⇒ same digest) and never
    /// cross them: invalidating one heap's cache leaves the snapshots
    /// sharing the chunk untouched.
    meta: std::cell::Cell<Option<(u64, usize)>>,
}

impl Chunk {
    fn new() -> Self {
        Chunk {
            cells: Arc::new(Vec::with_capacity(CHUNK_CELLS)),
            meta: std::cell::Cell::new(None),
        }
    }

    /// The cached digest, recomputed only after a write invalidated it.
    fn meta(&self) -> (u64, usize) {
        if let Some(m) = self.meta.get() {
            return m;
        }
        let mut h = FxHasher::default();
        let mut bytes = 0;
        for cell in self.cells.iter() {
            cell.hash(&mut h);
            bytes += cell.approx_bytes();
        }
        let m = (h.finish(), bytes);
        self.meta.set(Some(m));
        m
    }

    /// Mutable cell access: clears the digest and breaks sharing.
    fn cells_mut(&mut self) -> &mut Vec<Cell> {
        self.meta.set(None);
        Arc::make_mut(&mut self.cells)
    }
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells) || self.cells == other.cells
    }
}

/// The dynamic-memory store of one machine state. Cloning snapshots it in
/// O(chunk-table) time; the snapshot and the original then share chunks
/// copy-on-write.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Heap {
    chunks: Vec<Chunk>,
    free: Vec<u32>,
    live: usize,
    /// Total cells across all chunks (the last chunk may be partial).
    total: usize,
}

/// Content hash via the per-chunk digest cache. Consistent with
/// `PartialEq`: equal heaps have equal cell contents, free lists and
/// counters, hence equal digests.
impl Hash for Heap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for chunk in &self.chunks {
            state.write_u64(chunk.meta().0);
        }
        self.free.hash(state);
        self.live.hash(state);
        self.total.hash(state);
    }
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live allocations.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (capacity measure for the §3.2.2
    /// save/restore cost discussion).
    pub fn slots(&self) -> usize {
        self.total
    }

    /// Number of storage chunks backing the heap.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks currently shared with at least one snapshot (a write into
    /// one of these pays a copy-on-write break).
    pub fn shared_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| Arc::strong_count(&c.cells) > 1)
            .count()
    }

    /// Force every chunk private, eagerly deep-copying any that are still
    /// shared with a snapshot. `clone()` + `unshare()` is the old eager
    /// deep-clone *Save* — kept as the `--cow=off` measurement baseline.
    /// Content is unchanged, so the cached chunk digests stay valid.
    pub fn unshare(&mut self) {
        for c in &mut self.chunks {
            Arc::make_mut(&mut c.cells);
        }
    }

    /// Approximate footprint in bytes of everything the heap owns,
    /// including out-of-line storage inside the cell values. Proportional
    /// rather than exact — used for the analyzer's snapshot-memory budget.
    /// Each cell's storage is counted exactly once: a cell contributes its
    /// in-chunk slot plus whatever its value owns *out of line* (the
    /// value's inline portion already lives in the slot). Chunks are
    /// counted whether shared or not; charging shared chunks once across
    /// many snapshots is the trace analyzer's job (it dedups whole
    /// snapshots, see `tango`'s snapshot store).
    pub fn approx_bytes(&self) -> usize {
        let cells: usize = self.chunks.iter().map(|c| c.meta().1).sum();
        cells
            + self.chunks.len() * std::mem::size_of::<Chunk>()
            + self.free.len() * std::mem::size_of::<u32>()
    }

    fn cell(&self, index: u32) -> Option<&Cell> {
        self.chunks
            .get((index >> CHUNK_BITS) as usize)?
            .cells
            .get((index & CHUNK_MASK) as usize)
    }

    /// Mutable access to a cell; breaks the containing chunk's sharing if
    /// a snapshot still holds it (the copy-on-write write barrier).
    fn cell_mut(&mut self, index: u32) -> Option<&mut Cell> {
        let chunk = self.chunks.get_mut((index >> CHUNK_BITS) as usize)?;
        chunk.cells_mut().get_mut((index & CHUNK_MASK) as usize)
    }

    /// Allocate a cell holding `value`, as `new(p)` does.
    pub fn alloc(&mut self, value: Value) -> HeapRef {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let cell = self.cell_mut(index).expect("free list holds valid slots");
            let generation = match cell {
                Cell::Free { generation } => *generation + 1,
                Cell::Used { .. } => unreachable!("free list holds only free cells"),
            };
            *cell = Cell::Used { generation, value };
            return HeapRef { index, generation };
        }
        let index = self.total as u32;
        if self.total.is_multiple_of(CHUNK_CELLS) {
            self.chunks.push(Chunk::new());
        }
        let last = self.chunks.last_mut().expect("chunk just ensured");
        last.cells_mut().push(Cell::Used {
            generation: 0,
            value,
        });
        self.total += 1;
        HeapRef {
            index,
            generation: 0,
        }
    }

    /// Free a cell, as `dispose(p)` does.
    pub fn dispose(&mut self, r: HeapRef) -> RtResult<()> {
        match self.cell(r.index) {
            Some(Cell::Used { generation, .. }) if *generation == r.generation => {
                *self.cell_mut(r.index).expect("cell just read") = Cell::Free {
                    generation: r.generation,
                };
                self.free.push(r.index);
                self.live -= 1;
                Ok(())
            }
            _ => Err(RuntimeError::dangling("dispose of a dangling pointer")),
        }
    }

    /// Read a cell.
    pub fn get(&self, r: HeapRef) -> RtResult<&Value> {
        match self.cell(r.index) {
            Some(Cell::Used { generation, value }) if *generation == r.generation => Ok(value),
            _ => Err(RuntimeError::dangling("dereference of a dangling pointer")),
        }
    }

    /// Encode the heap for the durable-checkpoint codec: cells in slot
    /// order, then the free list (whose order decides future slot reuse
    /// and generation bumps, so it must survive exactly). Chunk
    /// boundaries are implied by [`CHUNK_CELLS`]; `live` and `total` are
    /// re-derived on decode. Copy-on-write sharing *between* heaps is
    /// intentionally not represented — whole-state deduplication is the
    /// enclosing checkpoint format's job.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.total as u64);
        for i in 0..self.total {
            match self.cell(i as u32).expect("slot within total") {
                Cell::Free { generation } => {
                    w.put_u8(0);
                    w.put_u32(*generation);
                }
                Cell::Used { generation, value } => {
                    w.put_u8(1);
                    w.put_u32(*generation);
                    crate::codec::encode_value(w, value);
                }
            }
        }
        w.put_u32(self.free.len() as u32);
        for idx in &self.free {
            w.put_u32(*idx);
        }
    }

    /// Decode a heap previously written by [`Heap::encode`]. Structural
    /// invariants are re-checked (free-list entries must name free,
    /// in-range slots), so a corrupt buffer yields a typed error instead
    /// of a heap that panics later.
    pub fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let total = r.get_usize("heap cell count")?;
        if total.saturating_mul(5) > r.remaining() {
            return Err(CodecError::Truncated {
                context: "heap cells",
            });
        }
        let mut heap = Heap::new();
        let mut free_cells = 0usize;
        for i in 0..total {
            if i.is_multiple_of(CHUNK_CELLS) {
                heap.chunks.push(Chunk::new());
            }
            let chunk = heap.chunks.last_mut().expect("chunk just ensured");
            let cell = match r.get_u8("heap cell tag")? {
                0 => {
                    free_cells += 1;
                    Cell::Free {
                        generation: r.get_u32("free cell generation")?,
                    }
                }
                1 => Cell::Used {
                    generation: r.get_u32("used cell generation")?,
                    value: crate::codec::decode_value(r)?,
                },
                other => {
                    return Err(CodecError::Malformed(format!(
                        "unknown heap cell tag {}",
                        other
                    )))
                }
            };
            chunk.cells_mut().push(cell);
        }
        heap.total = total;
        heap.live = total - free_cells;
        let free_len = r.get_len(4, "heap free list")?;
        if free_len != free_cells {
            return Err(CodecError::Malformed(format!(
                "free list length {} does not match {} free cell(s)",
                free_len, free_cells
            )));
        }
        let mut seen = vec![false; total];
        for _ in 0..free_len {
            let idx = r.get_u32("free list entry")?;
            match heap.cell(idx) {
                Some(Cell::Free { .. }) => {}
                _ => {
                    return Err(CodecError::Malformed(format!(
                        "free list names slot {} which is not a free cell",
                        idx
                    )))
                }
            }
            if std::mem::replace(&mut seen[idx as usize], true) {
                return Err(CodecError::Malformed(format!(
                    "free list names slot {} twice",
                    idx
                )));
            }
            heap.free.push(idx);
        }
        Ok(heap)
    }

    /// Write a cell.
    pub fn get_mut(&mut self, r: HeapRef) -> RtResult<&mut Value> {
        // Check liveness first on the shared view so a dangling write does
        // not pay (or cause) a copy-on-write break.
        match self.cell(r.index) {
            Some(Cell::Used { generation, .. }) if *generation == r.generation => {}
            _ => return Err(RuntimeError::dangling("dereference of a dangling pointer")),
        }
        match self.cell_mut(r.index) {
            Some(Cell::Used { value, .. }) => Ok(value),
            _ => unreachable!("cell liveness checked above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(7));
        assert_eq!(h.get(r).unwrap(), &Value::Int(7));
        *h.get_mut(r).unwrap() = Value::Int(8);
        assert_eq!(h.get(r).unwrap(), &Value::Int(8));
        assert_eq!(h.live(), 1);
    }

    #[test]
    fn dispose_then_use_is_dangling() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(1));
        h.dispose(r).unwrap();
        assert!(h.get(r).is_err());
        assert!(h.get_mut(r).is_err());
        assert!(h.dispose(r).is_err());
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut h = Heap::new();
        let a = h.alloc(Value::Int(1));
        h.dispose(a).unwrap();
        let b = h.alloc(Value::Int(2));
        // Same slot, different generation: the old ref stays dead.
        assert!(h.get(a).is_err());
        assert_eq!(h.get(b).unwrap(), &Value::Int(2));
        assert_eq!(h.slots(), 1);
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(1));
        let snapshot = h.clone();
        *h.get_mut(r).unwrap() = Value::Int(99);
        h.dispose(r).unwrap();
        // The snapshot still sees the original value.
        assert_eq!(snapshot.get(r).unwrap(), &Value::Int(1));
        assert_eq!(snapshot.live(), 1);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn clone_shares_chunks_until_written() {
        let mut h = Heap::new();
        let refs: Vec<_> = (0..CHUNK_CELLS as i64 * 3)
            .map(|i| h.alloc(Value::Int(i)))
            .collect();
        let snapshot = h.clone();
        assert_eq!(h.chunk_count(), 3);
        assert_eq!(h.shared_chunks(), 3, "a fresh clone shares everything");

        // One write breaks exactly the containing chunk's sharing.
        *h.get_mut(refs[0]).unwrap() = Value::Int(-1);
        assert_eq!(h.shared_chunks(), 2);
        assert_eq!(snapshot.shared_chunks(), 2);
        // The other cells of the broken chunk were copied, not lost.
        assert_eq!(h.get(refs[1]).unwrap(), &Value::Int(1));
        assert_eq!(snapshot.get(refs[0]).unwrap(), &Value::Int(0));
    }

    #[test]
    fn unshare_restores_the_eager_deep_clone() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(5));
        let mut snapshot = h.clone();
        assert_eq!(snapshot.shared_chunks(), 1);
        snapshot.unshare();
        assert_eq!(snapshot.shared_chunks(), 0);
        assert_eq!(h.shared_chunks(), 0);
        // Still logically identical.
        assert_eq!(snapshot.get(r).unwrap(), h.get(r).unwrap());
        assert_eq!(snapshot, h);
    }

    #[test]
    fn dangling_write_does_not_break_sharing() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(1));
        h.dispose(r).unwrap();
        let _snapshot = h.clone();
        assert!(h.get_mut(r).is_err());
        assert_eq!(h.shared_chunks(), 1, "failed write must stay read-only");
    }

    #[test]
    fn approx_bytes_counts_cell_storage_once() {
        let mut h = Heap::new();
        let empty = h.approx_bytes();
        let r = h.alloc(Value::Array(vec![Value::Int(0); 4]));
        let with_cell = h.approx_bytes();
        // The cell contributes its slot plus the array's out-of-line
        // elements — not slot + (inline + elements), which double-counted
        // the inline portion.
        let expected = std::mem::size_of::<Cell>() + 4 * std::mem::size_of::<Value>();
        assert!(with_cell >= empty + expected);
        assert!(with_cell < empty + expected + 2 * std::mem::size_of::<Cell>());
        h.dispose(r).unwrap();
    }

    #[test]
    fn hash_and_eq_follow_content_not_sharing() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = Heap::new();
        h.alloc(Value::Int(3));
        let mut shared = h.clone();
        let mut deep = h.clone();
        deep.unshare();
        let digest = |heap: &Heap| {
            let mut s = DefaultHasher::new();
            heap.hash(&mut s);
            s.finish()
        };
        assert_eq!(digest(&h), digest(&shared));
        assert_eq!(digest(&h), digest(&deep));
        assert_eq!(shared, deep);
        // Diverge one and the digests diverge too.
        shared.alloc(Value::Int(4));
        assert_ne!(digest(&h), digest(&shared));
        assert_ne!(shared, deep);
    }
}
