//! Estelle dynamic memory.
//!
//! `new`/`dispose` allocate and free cells in a per-machine [`Heap`]. The
//! heap is part of the TAM state (paper §2.3): depth-first search must be
//! able to *save* and *restore* it around backtracking, which we implement
//! by cloning — the same strategy whose cost §3.2.2 discusses for MDFS.
//!
//! References carry a generation counter so a dangling pointer (use after
//! `dispose`) is detected deterministically instead of reading stale data.

use crate::error::{RuntimeError, RtResult};
use crate::value::Value;
use std::fmt;

/// A checked reference into a [`Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HeapRef {
    index: u32,
    generation: u32,
}

impl fmt::Display for HeapRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}g{}", self.index, self.generation)
    }
}

#[derive(Clone, Debug, Hash)]
enum Cell {
    Free { generation: u32 },
    Used { generation: u32, value: Value },
}

/// The dynamic-memory store of one machine state. Cloning snapshots it.
#[derive(Clone, Debug, Hash, Default)]
pub struct Heap {
    cells: Vec<Cell>,
    free: Vec<u32>,
    live: usize,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live allocations.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (capacity measure for the §3.2.2
    /// save/restore cost discussion).
    pub fn slots(&self) -> usize {
        self.cells.len()
    }

    /// Approximate footprint in bytes of everything the heap owns,
    /// including out-of-line storage inside the cell values. Proportional
    /// rather than exact — used for the analyzer's snapshot-memory budget.
    pub fn approx_bytes(&self) -> usize {
        self.cells
            .iter()
            .map(|c| match c {
                Cell::Free { .. } => std::mem::size_of::<Cell>(),
                Cell::Used { value, .. } => std::mem::size_of::<Cell>() + value.approx_bytes(),
            })
            .sum::<usize>()
            + self.free.len() * std::mem::size_of::<u32>()
    }

    /// Allocate a cell holding `value`, as `new(p)` does.
    pub fn alloc(&mut self, value: Value) -> HeapRef {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let generation = match &self.cells[index as usize] {
                Cell::Free { generation } => generation + 1,
                Cell::Used { .. } => unreachable!("free list holds only free cells"),
            };
            self.cells[index as usize] = Cell::Used { generation, value };
            return HeapRef { index, generation };
        }
        let index = self.cells.len() as u32;
        self.cells.push(Cell::Used {
            generation: 0,
            value,
        });
        HeapRef {
            index,
            generation: 0,
        }
    }

    /// Free a cell, as `dispose(p)` does.
    pub fn dispose(&mut self, r: HeapRef) -> RtResult<()> {
        match self.cells.get_mut(r.index as usize) {
            Some(Cell::Used { generation, .. }) if *generation == r.generation => {
                self.cells[r.index as usize] = Cell::Free {
                    generation: r.generation,
                };
                self.free.push(r.index);
                self.live -= 1;
                Ok(())
            }
            _ => Err(RuntimeError::dangling("dispose of a dangling pointer")),
        }
    }

    /// Read a cell.
    pub fn get(&self, r: HeapRef) -> RtResult<&Value> {
        match self.cells.get(r.index as usize) {
            Some(Cell::Used { generation, value }) if *generation == r.generation => Ok(value),
            _ => Err(RuntimeError::dangling("dereference of a dangling pointer")),
        }
    }

    /// Write a cell.
    pub fn get_mut(&mut self, r: HeapRef) -> RtResult<&mut Value> {
        match self.cells.get_mut(r.index as usize) {
            Some(Cell::Used { generation, value }) if *generation == r.generation => Ok(value),
            _ => Err(RuntimeError::dangling("dereference of a dangling pointer")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(7));
        assert_eq!(h.get(r).unwrap(), &Value::Int(7));
        *h.get_mut(r).unwrap() = Value::Int(8);
        assert_eq!(h.get(r).unwrap(), &Value::Int(8));
        assert_eq!(h.live(), 1);
    }

    #[test]
    fn dispose_then_use_is_dangling() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(1));
        h.dispose(r).unwrap();
        assert!(h.get(r).is_err());
        assert!(h.get_mut(r).is_err());
        assert!(h.dispose(r).is_err());
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut h = Heap::new();
        let a = h.alloc(Value::Int(1));
        h.dispose(a).unwrap();
        let b = h.alloc(Value::Int(2));
        // Same slot, different generation: the old ref stays dead.
        assert!(h.get(a).is_err());
        assert_eq!(h.get(b).unwrap(), &Value::Int(2));
        assert_eq!(h.slots(), 1);
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut h = Heap::new();
        let r = h.alloc(Value::Int(1));
        let snapshot = h.clone();
        *h.get_mut(r).unwrap() = Value::Int(99);
        h.dispose(r).unwrap();
        // The snapshot still sees the original value.
        assert_eq!(snapshot.get(r).unwrap(), &Value::Int(1));
        assert_eq!(snapshot.live(), 1);
        assert_eq!(h.live(), 0);
    }
}
