//! Runtime errors.
//!
//! These signal bugs in the specification (uninitialized variables,
//! dangling pointers, range violations) or limits of the analyzer
//! (undefined values reaching control statements in partial-trace mode,
//! §5.3). The trace analyzer reports them against the source via the
//! carried span when one is available.

use estelle_ast::Span;
use std::fmt;

pub type RtResult<T> = Result<T, RuntimeError>;

/// Classification of a runtime failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// Use of a value that was never assigned, in full-trace mode.
    UndefinedValue,
    /// An undefined value reached a control statement (`if`/`case`/loop
    /// condition) — partial-trace analysis requires the normal-form
    /// transformation of §5.3 to eliminate these.
    UndefinedControl,
    /// Dereference or dispose of a dangling/nil pointer.
    DanglingPointer,
    /// Array index outside the declared bounds.
    IndexOutOfBounds,
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// Arithmetic overflow.
    Overflow,
    /// Routine call depth exceeded the interpreter limit.
    CallDepthExceeded,
    /// For-loop iteration count exceeded the interpreter limit (defends
    /// against non-terminating specifications foiling the search).
    LoopLimitExceeded,
    /// An `output` statement's interaction was rejected by the sink. Not a
    /// specification bug: the trace analyzer rejects outputs that cannot be
    /// matched against the trace, and this unwinds the transition body so
    /// the search can backtrack.
    OutputRejected,
    /// Internal invariant violation (compiler bug, not a spec bug).
    Internal,
    /// A panic unwound out of an interpreter step and was converted into a
    /// structured error by the analyzer's isolation guard. The offending
    /// branch is abandoned; the search continues on other branches.
    Panic,
}

/// A runtime failure with an optional source location.
#[derive(Clone, Debug)]
pub struct RuntimeError {
    pub kind: RuntimeErrorKind,
    pub message: String,
    pub span: Option<Span>,
}

impl RuntimeError {
    pub fn new(kind: RuntimeErrorKind, message: impl Into<String>) -> Self {
        RuntimeError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    pub fn undefined(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::UndefinedValue, message)
    }

    pub fn undefined_control(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::UndefinedControl, message)
    }

    pub fn dangling(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::DanglingPointer, message)
    }

    pub fn bounds(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::IndexOutOfBounds, message)
    }

    pub fn internal(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::Internal, message)
    }

    pub fn panic(message: impl Into<String>) -> Self {
        RuntimeError::new(RuntimeErrorKind::Panic, message)
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)?;
        if let Some(s) = self.span {
            write!(f, " (at source bytes {})", s)?;
        }
        Ok(())
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location_when_present() {
        let e = RuntimeError::undefined("use of x").with_span(Span::new(3, 5));
        let s = e.to_string();
        assert!(s.contains("use of x"));
        assert!(s.contains("3..5"));
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(
            RuntimeError::dangling("d").kind,
            RuntimeErrorKind::DanglingPointer
        );
        assert_eq!(
            RuntimeError::bounds("b").kind,
            RuntimeErrorKind::IndexOutOfBounds
        );
    }
}
