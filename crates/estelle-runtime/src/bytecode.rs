//! Register bytecode for the compiled execution mode (`--exec=compiled`).
//!
//! The tree-walking interpreter in [`crate::interp`] re-dispatches on the
//! IR node shape for every expression it touches — the classic interpreter
//! overhead the paper's transitions-per-second tables are paying for. This
//! module lowers the tree IR ([`crate::ir`]) one more step, once per
//! [`crate::Machine`] construction, into a compact register-based
//! instruction stream executed by the non-recursive VM loop in
//! [`crate::vm`]:
//!
//! * every `provided` guard, transition body, routine body and the
//!   `initialize` block becomes one [`Chunk`] — flat code, an interned
//!   constant pool, and pre-sized register/place-register windows;
//! * place (l-value) resolution compiles to dedicated place instructions
//!   whose root slots, field positions and array bounds are resolved at
//!   compile time; only index *expressions* remain runtime work;
//! * constant subexpressions that the tree lowering left reducible are
//!   folded here (never folding away a runtime error: a reduction is kept
//!   only when the checked evaluation succeeds);
//! * the [`DispatchIndex`] buckets transitions by from-control-state so
//!   *Generate* touches only the candidates for the current state instead
//!   of linearly scanning every declaration (LAPD's "over 800 transition
//!   declarations" is the paper's own motivating scale), with each
//!   candidate's `when` clause denormalized into the bucket entry.
//!
//! Semantics are bit-identical to the tree-walker by construction: both
//! executors share the scalar/policy rules in [`crate::interp::scalar`]
//! and the place navigation in `interp::place`, and the instruction
//! sequences below replicate the tree-walker's exact evaluation order —
//! including guard side-effect isolation, copy-in/copy-out `var`
//! parameters with *re*-resolution after the callee body, and per-policy
//! undefined diagnostics. `tests/compiled_exec.rs` and the
//! `BENCH_generate.json` harness enforce the contract end to end.

use crate::compile::CompiledModule;
use crate::interp::eval_const_expr;
use crate::ir::{CArg, CCall, CExpr, CPlace, CSetElem, CStmt, Slot};
use crate::value::{default_value, Value};
use estelle_ast::{BinOp, Span, UnOp};
use estelle_frontend::sema::model::StateId;

/// A value-register index within the current chunk's register window.
pub type Reg = u32;

/// Which loop statement an iteration-limit counter belongs to (selects
/// the exact error message of the tree-walker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    While,
    Repeat,
    For,
}

impl LoopKind {
    pub(crate) fn limit_message(self) -> &'static str {
        match self {
            LoopKind::While => "while loop exceeded the iteration limit",
            LoopKind::Repeat => "repeat loop exceeded the iteration limit",
            LoopKind::For => "for loop exceeded the iteration limit",
        }
    }
}

/// One VM instruction. Register operands index the executing chunk's
/// register window; `target` operands are absolute instruction offsets
/// within the same chunk.
#[derive(Clone, Debug)]
pub enum Op {
    /// `reg[dst] = consts[k]`.
    Const { dst: Reg, k: u32 },
    /// `reg[dst] = globals[slot]`.
    ReadG { dst: Reg, slot: u32 },
    /// `reg[dst] = frame[slot]`.
    ReadL { dst: Reg, slot: u32 },
    /// Record field by position (undefined propagates).
    Field { dst: Reg, src: Reg, pos: u32 },
    /// Array element; `lo`/`len` are compile-time bounds.
    Index {
        dst: Reg,
        base: Reg,
        idx: Reg,
        lo: i64,
        len: u32,
    },
    /// Pointer dereference in expression position.
    Deref { dst: Reg, src: Reg },
    Unary {
        dst: Reg,
        src: Reg,
        op: UnOp,
        span: Span,
    },
    /// Non-logical binary operator on two evaluated operands.
    Binary {
        dst: Reg,
        a: Reg,
        b: Reg,
        op: BinOp,
        span: Span,
    },
    /// Superinstruction: `load a; load b; Binary` fused into one dispatch.
    /// The profile-guided peephole ([`fuse_superinstructions`]) collapses
    /// the dominant three-op window of guard and body chunks (two
    /// const/global/frame loads feeding a binary operator — the shape
    /// every `provided v = k` clause and counter update lowers to). The
    /// handler still writes both operand registers before the result, so
    /// the machine state at every observable point (including on an
    /// arithmetic error) is identical to the unfused sequence.
    BinFused {
        dst: Reg,
        a: Reg,
        b: Reg,
        asrc: FusedSrc,
        bsrc: FusedSrc,
        op: BinOp,
        span: Span,
    },
    /// Short-circuit check for `and`/`or`: if `src` is decisive, write the
    /// result to `dst` and jump to `target` (past the right operand).
    LogicShort {
        dst: Reg,
        src: Reg,
        and: bool,
        span: Span,
        target: u32,
    },
    /// Kleene combination of both `and`/`or` operands.
    LogicJoin {
        dst: Reg,
        a: Reg,
        b: Reg,
        and: bool,
        span: Span,
    },
    /// `reg[dst] = empty set`.
    SetNew { dst: Reg },
    /// Insert `src`'s ordinal into the set in `set`.
    SetInsert { set: Reg, src: Reg, span: Span },
    /// Insert the ordinal range `a..=b` into the set in `set`.
    SetRange {
        set: Reg,
        a: Reg,
        b: Reg,
        span: Span,
    },
    Jump { target: u32 },
    /// Evaluate `src` as a control condition; jump to `target` when it
    /// equals `jump_if`.
    BranchBool {
        src: Reg,
        jump_if: bool,
        target: u32,
        span: Span,
    },
    /// Post-body loop iteration counter bump + limit check.
    IncCheck {
        counter: Reg,
        kind: LoopKind,
        span: Span,
    },
    /// For-loop header: ordinals of `from`/`to` into `i`/`limit`, template
    /// value (scalar kind of the counter) into `template`.
    ForPrep {
        from: Reg,
        to: Reg,
        i: Reg,
        limit: Reg,
        template: Reg,
        span: Span,
    },
    /// For-loop exit test.
    ForCheck {
        i: Reg,
        limit: Reg,
        down: bool,
        exit: u32,
    },
    /// Reify the counter ordinal as a value of the template's kind.
    ForMake {
        dst: Reg,
        i: Reg,
        template: Reg,
    },
    ForStep { i: Reg, down: bool },
    /// Dispatch on a folded-label case table.
    Case { src: Reg, table: u32, span: Span },
    /// Error-policy undefined check on an output parameter.
    CheckDef { src: Reg, span: Span },
    /// Emit `reg[first .. first+n]` to the sink; a rejection unwinds as
    /// `OutputRejected`.
    Output {
        ip: u32,
        interaction: u32,
        first: Reg,
        n: u32,
        span: Span,
    },
    /// Place root: global slot. Resets the place register's path.
    PlaceG { p: Reg, slot: u32 },
    /// Place root: frame slot.
    PlaceL { p: Reg, slot: u32 },
    /// Append a record field position to the place path.
    PlaceField { p: Reg, pos: u32 },
    /// Append a bounds-checked array offset to the place path.
    PlaceIndex {
        p: Reg,
        idx: Reg,
        lo: i64,
        len: u32,
        span: Span,
    },
    /// Re-root the place at the heap cell its current value points to.
    PlaceDeref { p: Reg, span: Span },
    /// `reg[dst] = *place[p]` (clone).
    ReadPlace { dst: Reg, p: Reg },
    /// `*place[p] = reg[src]` (clone).
    WritePlace { p: Reg, src: Reg },
    /// Invoke `calls[site]`: push the caller context, build the callee
    /// frame from the pre-evaluated argument registers, enter the routine
    /// chunk. The matching `Ret` parks the callee frame for `CopyOut` /
    /// `TakeResult`; `DropRet` discards it.
    Call { site: u32 },
    /// Copy callee frame slot `slot` out to the (re-resolved) place `p`.
    CopyOut { p: Reg, slot: u32 },
    /// Fetch the parked callee's function result into `dst`.
    TakeResult { dst: Reg },
    DropRet,
    /// `new`: allocate a heap cell holding a clone of `consts[template]`
    /// and leave the pointer in `dst`.
    Alloc { dst: Reg, template: u32 },
    Dispose { src: Reg, span: Span },
    /// Return from a routine chunk.
    Ret,
    /// End of a top-level chunk.
    Halt,
}

/// Where a fused operand of [`Op::BinFused`] loads from — the three
/// side-effect-free load shapes ([`Op::Const`] / [`Op::ReadG`] /
/// [`Op::ReadL`]) that may legally disappear into a superinstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusedSrc {
    /// Constant pool index.
    Const(u32),
    /// Global slot.
    Global(u32),
    /// Transition/routine frame slot.
    Local(u32),
}

/// One compiled call site: the callee and the registers holding the
/// already-evaluated (or copied-in) actual arguments, in parameter order.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub routine: u32,
    pub args: Vec<Reg>,
    pub span: Span,
}

/// A folded-label `case` dispatch table. Arms are scanned in declaration
/// order (first match wins, like the tree-walker); `default` is the else
/// arm, or the end of the statement for the lenient unmatched case.
#[derive(Clone, Debug)]
pub struct CaseTable {
    pub arms: Vec<(Vec<i64>, u32)>,
    pub default: u32,
}

/// A compiled instruction stream plus its pools and window sizes.
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    pub code: Vec<Op>,
    /// Interned constant pool (also holds `new` default-value templates).
    pub consts: Vec<Value>,
    pub calls: Vec<CallSite>,
    pub cases: Vec<CaseTable>,
    /// Value registers this chunk needs.
    pub n_regs: u32,
    /// Place registers this chunk needs.
    pub n_places: u32,
    /// For guard chunks: the register holding the final value at `Halt`.
    pub result: Option<Reg>,
}

/// A routine compiled to bytecode.
#[derive(Clone, Debug)]
pub struct RoutineCode {
    pub chunk: usize,
    /// Default frame (one value per slot), cloned per call before copy-in.
    pub frame_template: Vec<Value>,
    pub result_slot: Option<usize>,
}

/// A guard whose chunk collapsed to one of the trivial shapes that
/// dominate large transition tables (`provided v = k` style clauses,
/// boolean flags, folded constants). *Generate* evaluates these directly
/// against the globals — same scalar semantics, no VM loop entry, no
/// frame, no register window. Extracted by pattern-matching the finished
/// chunk, so the fast path is correct by construction: it replays
/// exactly the ops the VM would have run.
#[derive(Clone, Debug)]
pub enum QuickGuard {
    /// The whole clause constant-folded (`provided true`, `2 < 3`, …).
    Const(Value),
    /// A lone global read, e.g. `provided ackpend`.
    Global { slot: u32 },
    /// `global <op> const` (or `const <op> global` when `swapped`).
    GlobalOpConst {
        slot: u32,
        op: BinOp,
        k: Value,
        swapped: bool,
        span: Span,
    },
}

/// A call-free guard that is a conjunction (`and` chain) of
/// [`QuickGuard`]-shaped terms over globals and constants, e.g.
/// `provided busy and vs = va and rc < 4`.
///
/// *Generate* evaluates the terms directly, short-circuiting on the first
/// false — but **only after checking that every referenced global slot
/// holds a defined value**. Over defined operands the terms are total
/// (comparisons on ordinals and boolean reads never error and never
/// produce `Undefined`), so evaluation order and short-circuiting are
/// unobservable under either [`crate::interp::UndefinedPolicy`] — which is
/// exactly what licenses [`ExecProgram::apply_pgo`] to re-sort the terms
/// cheapest-first. Any undefined slot or non-boolean term falls back to
/// the full chunk in source order.
#[derive(Clone, Debug)]
pub struct ConjGuard {
    /// Global slots any term reads, deduplicated — the definedness
    /// precheck.
    pub slots: Vec<u32>,
    /// The conjuncts, in source order until PGO re-sorts them.
    pub terms: Vec<QuickGuard>,
}

/// A compiled `provided` guard.
#[derive(Clone, Debug)]
pub struct GuardCode {
    pub chunk: usize,
    /// VM-free evaluation for trivial chunk shapes; `None` runs the VM.
    pub quick: Option<QuickGuard>,
    /// VM-free short-circuit plan for call-free `and`-chains; tried when
    /// `quick` is `None`, falls back to the chunk on undefined operands.
    pub conj: Option<ConjGuard>,
    /// Guards containing routine calls may have side effects and are
    /// evaluated against a scratch state copy, exactly as in interp mode.
    pub has_calls: bool,
    /// Whether the chunk ever touches the transition frame (`ReadL` /
    /// `PlaceL`, or a fused frame load). Call-free guards get their frozen
    /// `any` bindings substituted as constants at compile time, so most
    /// guards are frameless and *Generate* skips building the frame
    /// entirely.
    pub needs_frame: bool,
}

/// One candidate in a [`DispatchIndex`] bucket: the transition plus its
/// denormalized `when` clause, so the generate loop never touches the cold
/// declaration record while filtering.
#[derive(Clone, Copy, Debug)]
pub struct DispatchEntry {
    pub trans: u32,
    /// `None` = spontaneous; `Some((ip, interaction, nparams))` otherwise.
    pub when: Option<(u32, u32, u32)>,
}

/// Transitions bucketed by from-control-state.
///
/// Invariants (asserted by `tests/compiled_exec.rs` against the linear
/// scan):
/// 1. bucket `s` contains exactly the transitions with `s ∈ from`, in
///    declaration (compiled-index) order — so the fireable list built from
///    a bucket is element-for-element identical to the linear scan's;
/// 2. a transition with `k` source states appears in exactly `k` buckets;
/// 3. `when` sub-bucketing is by denormalized interaction key on the
///    entry: all entries sharing an IP compare against one cached queue
///    head per generate call instead of re-querying the environment.
#[derive(Clone, Debug, Default)]
pub struct DispatchIndex {
    pub by_state: Vec<Vec<DispatchEntry>>,
    /// Set by [`DispatchIndex::reorder_by_fires`] when any bucket left
    /// declaration order. *Generate* then restores declaration order on
    /// the fireable list it builds (a sort by `trans`), and replays the
    /// bucket in declaration order when a guard errors, so invariant 1
    /// still holds observably.
    pub reordered: bool,
}

impl DispatchIndex {
    fn build(module: &CompiledModule) -> DispatchIndex {
        let n_states = module.analyzed.states.len();
        let mut by_state: Vec<Vec<DispatchEntry>> = vec![Vec::new(); n_states];
        for (i, t) in module.transitions.iter().enumerate() {
            let when = t
                .when
                .map(|(ip, interaction, nparams)| (ip as u32, interaction as u32, nparams as u32));
            for sid in &t.from {
                let s = sid.0 as usize;
                if s < n_states {
                    by_state[s].push(DispatchEntry {
                        trans: i as u32,
                        when,
                    });
                }
            }
        }
        DispatchIndex {
            by_state,
            reordered: false,
        }
    }

    /// Profile-guided bucket ordering: stable-sort every bucket by
    /// descending observed fire count, so the candidates most likely to
    /// fire are probed (and their queue heads cached) first. Ties keep
    /// declaration order; `fires` is indexed by compiled-transition
    /// number.
    pub fn reorder_by_fires(&mut self, fires: &[u64]) {
        for bucket in &mut self.by_state {
            bucket.sort_by(|x, y| {
                let fx = fires.get(x.trans as usize).copied().unwrap_or(0);
                let fy = fires.get(y.trans as usize).copied().unwrap_or(0);
                fy.cmp(&fx)
            });
        }
        self.reordered = self
            .by_state
            .iter()
            .any(|b| b.windows(2).any(|w| w[0].trans > w[1].trans));
    }

    /// Candidates for a control state (empty for out-of-range states).
    pub fn candidates(&self, control: StateId) -> &[DispatchEntry] {
        self.by_state
            .get(control.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total entries across all buckets (each multi-source transition
    /// counted once per source state).
    pub fn entries(&self) -> usize {
        self.by_state.iter().map(Vec::len).sum()
    }
}

/// Profile feedback for [`ExecProgram::apply_pgo`]: per-transition fire
/// and fail counts, indexed by compiled-transition number. Produced by the
/// telemetry profiler (`--pgo-out`) and validated against the spec before
/// it gets anywhere near the dispatch index (`--pgo-in`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PgoHints {
    pub fires: Vec<u64>,
    pub fails: Vec<u64>,
}

/// Everything the compiled execution mode needs, built once per machine
/// and shared by all policy/exec views.
#[derive(Clone, Debug, Default)]
pub struct ExecProgram {
    pub chunks: Vec<Chunk>,
    pub routines: Vec<RoutineCode>,
    /// Chunk of the `initialize` block.
    pub init: usize,
    /// Per transition: the compiled guard, if any.
    pub guards: Vec<Option<GuardCode>>,
    /// Per transition: the compiled action-block chunk.
    pub bodies: Vec<usize>,
    pub dispatch: DispatchIndex,
    /// Whether [`ExecProgram::apply_pgo`] has run on this program.
    pub pgo: bool,
}

impl ExecProgram {
    /// Total instructions across all chunks (for stats/tests).
    pub fn code_len(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }

    /// Fused superinstructions across all chunks (for stats/tests).
    pub fn fused_count(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                c.code
                    .iter()
                    .filter(|op| matches!(op, Op::BinFused { .. }))
                    .count()
            })
            .sum()
    }

    /// Apply profile feedback: order every dispatch bucket by observed
    /// fire rate and re-sort conjunction-guard terms cheapest-first.
    /// Observable semantics are unchanged — *Generate* restores
    /// declaration order on the fireable lists it builds (and replays in
    /// declaration order when a guard errors), and conjunction terms only
    /// short-circuit over defined values, where order is unobservable.
    pub fn apply_pgo(&mut self, hints: &PgoHints) {
        debug_assert_eq!(hints.fires.len(), self.bodies.len());
        self.dispatch.reorder_by_fires(&hints.fires);
        for g in self.guards.iter_mut().flatten() {
            if let Some(cj) = &mut g.conj {
                // Static term cost: folded constants, then bare boolean
                // globals, then global/const compares. Stable, so
                // equal-cost terms keep source order.
                cj.terms.sort_by_key(|t| match t {
                    QuickGuard::Const(_) => 0u8,
                    QuickGuard::Global { .. } => 1,
                    QuickGuard::GlobalOpConst { .. } => 2,
                });
            }
        }
        self.pgo = true;
    }
}

/// Lower a compiled module to bytecode and build the dispatch index.
pub fn compile_program(module: &CompiledModule) -> ExecProgram {
    let mut chunks = Vec::new();

    let routines = module
        .routines
        .iter()
        .map(|r| {
            let mut c = FnCompiler::new(module);
            c.block(&r.body);
            c.emit(Op::Ret);
            let chunk = push_chunk(&mut chunks, c.finish(None));
            RoutineCode {
                chunk,
                frame_template: r
                    .slot_types
                    .iter()
                    .map(|t| default_value(&module.analyzed.types, *t))
                    .collect(),
                result_slot: r.result_slot,
            }
        })
        .collect();

    let init = {
        let mut c = FnCompiler::new(module);
        c.block(&module.init_block);
        c.emit(Op::Halt);
        push_chunk(&mut chunks, c.finish(None))
    };

    let mut guards = Vec::with_capacity(module.transitions.len());
    let mut bodies = Vec::with_capacity(module.transitions.len());
    for t in &module.transitions {
        guards.push(t.provided.as_ref().map(|g| {
            let has_calls = crate::interp::expr_has_calls(g);
            let const_locals: Vec<Value> = if has_calls {
                // Guards with calls keep frame reads — a callee could
                // take a slot by `var` reference.
                Vec::new()
            } else {
                // A call-free guard cannot write its frame, so the
                // frozen `any` bindings (the leading slots) are true
                // constants: substitute them at compile time.
                t.any_bindings
                    .iter()
                    .enumerate()
                    .map(|(i, &ord)| {
                        crate::machine::ordinal_to_value(
                            &module.analyzed.types,
                            t.any_types[i],
                            ord,
                        )
                    })
                    .collect()
            };
            let conj = if has_calls {
                None
            } else {
                conj_guard(g, &const_locals)
            };
            let mut c = FnCompiler::new(module);
            c.const_locals = const_locals;
            let r = c.expr(g);
            c.emit(Op::Halt);
            let chunk = push_chunk(&mut chunks, c.finish(Some(r)));
            let needs_frame = chunks[chunk].code.iter().any(|op| match op {
                Op::ReadL { .. } | Op::PlaceL { .. } => true,
                Op::BinFused { asrc, bsrc, .. } => {
                    matches!(asrc, FusedSrc::Local(_)) || matches!(bsrc, FusedSrc::Local(_))
                }
                _ => false,
            });
            GuardCode {
                chunk,
                quick: quick_guard(&chunks[chunk]),
                conj,
                has_calls,
                needs_frame,
            }
        }));
        bodies.push({
            let mut c = FnCompiler::new(module);
            c.block(&t.body);
            c.emit(Op::Halt);
            push_chunk(&mut chunks, c.finish(None))
        });
    }

    ExecProgram {
        chunks,
        routines,
        init,
        guards,
        bodies,
        dispatch: DispatchIndex::build(module),
        pgo: false,
    }
}

fn push_chunk(chunks: &mut Vec<Chunk>, mut chunk: Chunk) -> usize {
    fuse_superinstructions(&mut chunk);
    chunks.push(chunk);
    chunks.len() - 1
}

/// The superinstruction peephole: collapse every `load; load; Binary`
/// window (loads being [`Op::Const`] / [`Op::ReadG`] / [`Op::ReadL`]) into
/// one [`Op::BinFused`], then remap every branch target and case-table
/// entry through the old→new pc map. Profiling both executors showed this
/// three-op window is the hot shape of generated code — every
/// `provided v = k` clause, `when`-parameter compare and counter update
/// lowers to it — and each fused window saves two VM dispatches.
///
/// Fusion is skipped when a branch lands *inside* the window (the jump
/// would skip the loads), when the operand registers alias, or when the
/// destination aliases an operand — so the fused handler, which writes
/// `a`, `b`, then `dst`, reproduces the unfused register file exactly,
/// including at the error edge of a failing `Binary`.
fn fuse_superinstructions(chunk: &mut Chunk) {
    let old = std::mem::take(&mut chunk.code);
    let n = old.len();
    let mut is_target = vec![false; n + 1];
    for op in &old {
        match op {
            Op::Jump { target }
            | Op::BranchBool { target, .. }
            | Op::LogicShort { target, .. } => is_target[*target as usize] = true,
            Op::ForCheck { exit, .. } => is_target[*exit as usize] = true,
            _ => {}
        }
    }
    for t in &chunk.cases {
        for (_, pc) in &t.arms {
            is_target[*pc as usize] = true;
        }
        is_target[t.default as usize] = true;
    }
    let load_src = |op: &Op| -> Option<(Reg, FusedSrc)> {
        match op {
            Op::Const { dst, k } => Some((*dst, FusedSrc::Const(*k))),
            Op::ReadG { dst, slot } => Some((*dst, FusedSrc::Global(*slot))),
            Op::ReadL { dst, slot } => Some((*dst, FusedSrc::Local(*slot))),
            _ => None,
        }
    };
    let mut map = vec![0u32; n + 1];
    let mut new = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        map[i] = new.len() as u32;
        let fused = if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
            match &old[i + 2] {
                Op::Binary { dst, a, b, op, span } => {
                    match (load_src(&old[i]), load_src(&old[i + 1])) {
                        (Some((d1, s1)), Some((d2, s2)))
                            if d1 == *a && d2 == *b && a != b && dst != a && dst != b =>
                        {
                            Some(Op::BinFused {
                                dst: *dst,
                                a: *a,
                                b: *b,
                                asrc: s1,
                                bsrc: s2,
                                op: *op,
                                span: *span,
                            })
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some(f) = fused {
            map[i + 1] = map[i];
            map[i + 2] = map[i];
            new.push(f);
            i += 3;
        } else {
            new.push(old[i].clone());
            i += 1;
        }
    }
    map[n] = new.len() as u32;
    for op in &mut new {
        match op {
            Op::Jump { target }
            | Op::BranchBool { target, .. }
            | Op::LogicShort { target, .. } => *target = map[*target as usize],
            Op::ForCheck { exit, .. } => *exit = map[*exit as usize],
            _ => {}
        }
    }
    for t in &mut chunk.cases {
        for arm in &mut t.arms {
            arm.1 = map[arm.1 as usize];
        }
        t.default = map[t.default as usize];
    }
    chunk.code = new;
}

/// Try to read a conjunction plan off a call-free guard expression: an
/// `and` chain whose terms are all [`QuickGuard`]-shaped (constants —
/// including frozen `any` bindings — bare global reads, or
/// global-vs-constant comparisons). Single-term guards are left to
/// [`QuickGuard`] itself.
fn conj_guard(e: &CExpr, const_locals: &[Value]) -> Option<ConjGuard> {
    let mut terms = Vec::new();
    flatten_and(e, const_locals, &mut terms)?;
    if terms.len() < 2 {
        return None;
    }
    let mut slots: Vec<u32> = Vec::new();
    for t in &terms {
        let s = match t {
            QuickGuard::Const(_) => continue,
            QuickGuard::Global { slot } | QuickGuard::GlobalOpConst { slot, .. } => *slot,
        };
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    Some(ConjGuard { slots, terms })
}

fn flatten_and(e: &CExpr, const_locals: &[Value], out: &mut Vec<QuickGuard>) -> Option<()> {
    if let CExpr::Binary(BinOp::And, l, r, _) = e {
        flatten_and(l, const_locals, out)?;
        flatten_and(r, const_locals, out)?;
        return Some(());
    }
    out.push(conj_term(e, const_locals)?);
    Some(())
}

/// A constant operand: a literal, or a read of a frozen `any` binding.
fn const_operand(e: &CExpr, const_locals: &[Value]) -> Option<Value> {
    match e {
        CExpr::Const(v) => Some(v.clone()),
        CExpr::Read(Slot::Local(i)) => const_locals.get(*i).cloned(),
        _ => None,
    }
}

fn conj_term(e: &CExpr, const_locals: &[Value]) -> Option<QuickGuard> {
    match e {
        CExpr::Read(Slot::Global(i)) => Some(QuickGuard::Global { slot: *i as u32 }),
        CExpr::Binary(op, l, r, span)
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            if let CExpr::Read(Slot::Global(g)) = &**l {
                if let Some(k) = const_operand(r, const_locals) {
                    return Some(QuickGuard::GlobalOpConst {
                        slot: *g as u32,
                        op: *op,
                        k,
                        swapped: false,
                        span: *span,
                    });
                }
            }
            if let CExpr::Read(Slot::Global(g)) = &**r {
                if let Some(k) = const_operand(l, const_locals) {
                    return Some(QuickGuard::GlobalOpConst {
                        slot: *g as u32,
                        op: *op,
                        k,
                        swapped: true,
                        span: *span,
                    });
                }
            }
            None
        }
        other => const_operand(other, const_locals).map(QuickGuard::Const),
    }
}

/// Recognize the trivial guard-chunk shapes that [`QuickGuard`] can
/// evaluate without entering the VM loop. The match is against the
/// *finished* instruction stream (after constant folding and `any`
/// substitution), so whatever it extracts is op-for-op what the VM would
/// have executed.
fn quick_guard(chunk: &Chunk) -> Option<QuickGuard> {
    let result = chunk.result?;
    match chunk.code.as_slice() {
        [Op::Const { dst, k }, Op::Halt] if *dst == result => {
            Some(QuickGuard::Const(chunk.consts[*k as usize].clone()))
        }
        [Op::ReadG { dst, slot }, Op::Halt] if *dst == result => {
            Some(QuickGuard::Global { slot: *slot })
        }
        // The dominant `global <op> const` shape arrives fused (the
        // peephole runs before extraction).
        [Op::BinFused {
            dst,
            asrc,
            bsrc,
            op,
            span,
            ..
        }, Op::Halt]
            if *dst == result =>
        {
            let (slot, k, swapped) = match (asrc, bsrc) {
                (FusedSrc::Global(slot), FusedSrc::Const(k)) => (*slot, *k, false),
                (FusedSrc::Const(k), FusedSrc::Global(slot)) => (*slot, *k, true),
                _ => return None,
            };
            Some(QuickGuard::GlobalOpConst {
                slot,
                op: *op,
                k: chunk.consts[k as usize].clone(),
                swapped,
                span: *span,
            })
        }
        // Unfused fallback (e.g. when register aliasing blocked fusion).
        [first, second, Op::Binary { dst, a, b, op, span }, Op::Halt] if *dst == result => {
            let (slot, k, swapped) = match (first, second) {
                (Op::ReadG { dst: g, slot }, Op::Const { dst: c, k })
                    if (*g, *c) == (*a, *b) =>
                {
                    (*slot, *k, false)
                }
                (Op::Const { dst: c, k }, Op::ReadG { dst: g, slot })
                    if (*c, *g) == (*a, *b) =>
                {
                    (*slot, *k, true)
                }
                _ => return None,
            };
            Some(QuickGuard::GlobalOpConst {
                slot,
                op: *op,
                k: chunk.consts[k as usize].clone(),
                swapped,
                span: *span,
            })
        }
        _ => None,
    }
}

/// Single-chunk compiler: a stack-discipline register allocator over a
/// growing instruction vector. Registers are allocated monotonically and
/// freed in blocks by restoring a watermark, so a chunk's window is the
/// high-water mark of one statement's temporaries (loop-pinned counters
/// stay live across their body by sitting below the body's watermark).
struct FnCompiler<'m> {
    module: &'m CompiledModule,
    code: Vec<Op>,
    consts: Vec<Value>,
    calls: Vec<CallSite>,
    cases: Vec<CaseTable>,
    next_reg: u32,
    max_reg: u32,
    next_place: u32,
    max_place: u32,
    /// Known-constant values for the leading frame slots (frozen `any`
    /// bindings of a call-free guard): reads of these slots compile to
    /// `Const` instead of `ReadL`, which in turn lets *Generate* skip
    /// building the frame when no slot read survives.
    const_locals: Vec<Value>,
}

impl<'m> FnCompiler<'m> {
    fn new(module: &'m CompiledModule) -> Self {
        FnCompiler {
            module,
            code: Vec::new(),
            consts: Vec::new(),
            calls: Vec::new(),
            cases: Vec::new(),
            next_reg: 0,
            max_reg: 0,
            next_place: 0,
            max_place: 0,
            const_locals: Vec::new(),
        }
    }

    fn finish(self, result: Option<Reg>) -> Chunk {
        Chunk {
            code: self.code,
            consts: self.consts,
            calls: self.calls,
            cases: self.cases,
            n_regs: self.max_reg,
            n_places: self.max_place,
            result,
        }
    }

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, op: Op) -> u32 {
        self.code.push(op);
        self.code.len() as u32 - 1
    }

    /// Patch the jump target of a previously emitted branching op.
    fn patch(&mut self, at: u32, to: u32) {
        match &mut self.code[at as usize] {
            Op::Jump { target }
            | Op::BranchBool { target, .. }
            | Op::LogicShort { target, .. } => *target = to,
            Op::ForCheck { exit, .. } => *exit = to,
            other => unreachable!("patching non-branch op {:?}", other),
        }
    }

    fn rtmp(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    fn ptmp(&mut self) -> Reg {
        let p = self.next_place;
        self.next_place += 1;
        self.max_place = self.max_place.max(self.next_place);
        p
    }

    /// Intern a constant (linear scan: pools are small and build once).
    fn kconst(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| *c == v) {
            return i as u32;
        }
        self.consts.push(v);
        self.consts.len() as u32 - 1
    }

    /// Compile-time constant folding: reduce an operator node whose
    /// operands are already constants, but only when the checked
    /// evaluation succeeds — a folding failure (overflow, div-by-zero)
    /// must stay a runtime error on the exact op that raises it.
    fn try_fold(&self, e: &CExpr) -> Option<Value> {
        let reducible = match e {
            CExpr::Unary(_, x, _) => matches!(**x, CExpr::Const(_)),
            CExpr::Binary(_, l, r, _) => {
                matches!(**l, CExpr::Const(_)) && matches!(**r, CExpr::Const(_))
            }
            _ => false,
        };
        if !reducible {
            return None;
        }
        eval_const_expr(self.module, e).ok()
    }

    /// Compile an expression into a fresh register (left allocated for the
    /// caller to consume and free).
    fn expr(&mut self, e: &CExpr) -> Reg {
        let dst = self.rtmp();
        self.expr_into(e, dst);
        dst
    }

    /// Compile an expression into `dst`; every temporary above the entry
    /// watermark is freed on exit. The emitted sequence preserves the
    /// tree-walker's evaluation order exactly.
    fn expr_into(&mut self, e: &CExpr, dst: Reg) {
        let mark = self.next_reg;
        if let Some(v) = self.try_fold(e) {
            let k = self.kconst(v);
            self.emit(Op::Const { dst, k });
            self.next_reg = mark;
            return;
        }
        match e {
            CExpr::Const(v) => {
                let k = self.kconst(v.clone());
                self.emit(Op::Const { dst, k });
            }
            CExpr::Read(Slot::Global(i)) => {
                self.emit(Op::ReadG {
                    dst,
                    slot: *i as u32,
                });
            }
            CExpr::Read(Slot::Local(i)) => {
                if let Some(v) = self.const_locals.get(*i).cloned() {
                    let k = self.kconst(v);
                    self.emit(Op::Const { dst, k });
                } else {
                    self.emit(Op::ReadL {
                        dst,
                        slot: *i as u32,
                    });
                }
            }
            CExpr::Field(base, pos) => {
                let src = self.expr(base);
                self.emit(Op::Field {
                    dst,
                    src,
                    pos: *pos as u32,
                });
            }
            CExpr::Index {
                base,
                index,
                lo,
                len,
            } => {
                let b = self.expr(base);
                let i = self.expr(index);
                self.emit(Op::Index {
                    dst,
                    base: b,
                    idx: i,
                    lo: *lo,
                    len: *len as u32,
                });
            }
            CExpr::Deref(base) => {
                let src = self.expr(base);
                self.emit(Op::Deref { dst, src });
            }
            CExpr::Unary(op, x, span) => {
                let src = self.expr(x);
                self.emit(Op::Unary {
                    dst,
                    src,
                    op: *op,
                    span: *span,
                });
            }
            CExpr::Binary(op, l, r, span) if matches!(op, BinOp::And | BinOp::Or) => {
                let and = *op == BinOp::And;
                let a = self.expr(l);
                let short = self.emit(Op::LogicShort {
                    dst,
                    src: a,
                    and,
                    span: *span,
                    target: 0,
                });
                let b = self.expr(r);
                self.emit(Op::LogicJoin {
                    dst,
                    a,
                    b,
                    and,
                    span: *span,
                });
                let end = self.pc();
                self.patch(short, end);
            }
            CExpr::Binary(op, l, r, span) => {
                let a = self.expr(l);
                let b = self.expr(r);
                self.emit(Op::Binary {
                    dst,
                    a,
                    b,
                    op: *op,
                    span: *span,
                });
            }
            CExpr::Call(call) => {
                self.call(call, Some(dst));
            }
            CExpr::SetCtor(elems, span) => {
                self.emit(Op::SetNew { dst });
                for el in elems {
                    let emark = self.next_reg;
                    match el {
                        CSetElem::Single(x) => {
                            let r = self.expr(x);
                            self.emit(Op::SetInsert {
                                set: dst,
                                src: r,
                                span: *span,
                            });
                        }
                        CSetElem::Range(a, b) => {
                            let ra = self.expr(a);
                            let rb = self.expr(b);
                            self.emit(Op::SetRange {
                                set: dst,
                                a: ra,
                                b: rb,
                                span: *span,
                            });
                        }
                    }
                    self.next_reg = emark;
                }
            }
        }
        self.next_reg = mark;
    }

    /// Compile a place to a place register. Base place first, then index
    /// expressions in source order — the tree-walker's resolution order.
    fn place(&mut self, p: &CPlace) -> Reg {
        match p {
            CPlace::Var(Slot::Global(i)) => {
                let pr = self.ptmp();
                self.emit(Op::PlaceG {
                    p: pr,
                    slot: *i as u32,
                });
                pr
            }
            CPlace::Var(Slot::Local(i)) => {
                let pr = self.ptmp();
                self.emit(Op::PlaceL {
                    p: pr,
                    slot: *i as u32,
                });
                pr
            }
            CPlace::Field(base, pos) => {
                let pr = self.place(base);
                self.emit(Op::PlaceField {
                    p: pr,
                    pos: *pos as u32,
                });
                pr
            }
            CPlace::Index {
                base,
                index,
                lo,
                len,
                span,
            } => {
                let pr = self.place(base);
                let mark = self.next_reg;
                let idx = self.expr(index);
                self.emit(Op::PlaceIndex {
                    p: pr,
                    idx,
                    lo: *lo,
                    len: *len as u32,
                    span: *span,
                });
                self.next_reg = mark;
                pr
            }
            CPlace::Deref(base, span) => {
                let pr = self.place(base);
                self.emit(Op::PlaceDeref { p: pr, span: *span });
                pr
            }
        }
    }

    /// Compile a call: arguments evaluate left-to-right into registers
    /// (ref args resolve their place and capture the copy-in value at that
    /// moment, like the tree-walker); after `Call` returns, each `var`
    /// parameter's place is *re*-resolved — re-running index side effects —
    /// before `CopyOut`, then the optional function result is taken and
    /// the parked frame dropped.
    fn call(&mut self, c: &CCall, result: Option<Reg>) {
        let rmark = self.next_reg;
        let mut args = Vec::with_capacity(c.args.len());
        for arg in &c.args {
            match arg {
                CArg::Value(e) => args.push(self.expr(e)),
                CArg::Ref(place) => {
                    let pmark = self.next_place;
                    let p = self.place(place);
                    let r = self.rtmp();
                    self.emit(Op::ReadPlace { dst: r, p });
                    self.next_place = pmark;
                    args.push(r);
                }
            }
        }
        let site = self.calls.len() as u32;
        self.calls.push(CallSite {
            routine: c.routine as u32,
            args,
            span: c.span,
        });
        self.emit(Op::Call { site });
        // The argument registers are consumed when `Call` executes; the
        // copy-out resolution below may reuse them.
        self.next_reg = rmark;
        for (i, arg) in c.args.iter().enumerate() {
            if let CArg::Ref(place) = arg {
                let pmark = self.next_place;
                let p = self.place(place);
                self.emit(Op::CopyOut { p, slot: i as u32 });
                self.next_place = pmark;
            }
        }
        if let Some(dst) = result {
            self.emit(Op::TakeResult { dst });
        }
        self.emit(Op::DropRet);
    }

    fn block(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &CStmt) {
        let rmark = self.next_reg;
        let pmark = self.next_place;
        match s {
            CStmt::Assign(place, value, _) => {
                // Value before place, as in the tree-walker.
                let rv = self.expr(value);
                let p = self.place(place);
                self.emit(Op::WritePlace { p, src: rv });
            }
            CStmt::If(cond, then_b, else_b, span) => {
                let rc = self.expr(cond);
                let br = self.emit(Op::BranchBool {
                    src: rc,
                    jump_if: false,
                    target: 0,
                    span: *span,
                });
                self.next_reg = rmark;
                self.block(then_b);
                if else_b.is_empty() {
                    let end = self.pc();
                    self.patch(br, end);
                } else {
                    let j = self.emit(Op::Jump { target: 0 });
                    let else_pc = self.pc();
                    self.patch(br, else_pc);
                    self.block(else_b);
                    let end = self.pc();
                    self.patch(j, end);
                }
            }
            CStmt::While(cond, body, span) => {
                let counter = self.rtmp();
                let k0 = self.kconst(Value::Int(0));
                self.emit(Op::Const { dst: counter, k: k0 });
                let head = self.pc();
                let rc = self.expr(cond);
                let br = self.emit(Op::BranchBool {
                    src: rc,
                    jump_if: false,
                    target: 0,
                    span: *span,
                });
                self.next_reg = counter + 1;
                self.block(body);
                self.emit(Op::IncCheck {
                    counter,
                    kind: LoopKind::While,
                    span: *span,
                });
                self.emit(Op::Jump { target: head });
                let end = self.pc();
                self.patch(br, end);
            }
            CStmt::Repeat(body, cond, span) => {
                let counter = self.rtmp();
                let k0 = self.kconst(Value::Int(0));
                self.emit(Op::Const { dst: counter, k: k0 });
                let head = self.pc();
                self.block(body);
                let rc = self.expr(cond);
                let br = self.emit(Op::BranchBool {
                    src: rc,
                    jump_if: true,
                    target: 0,
                    span: *span,
                });
                self.next_reg = counter + 1;
                self.emit(Op::IncCheck {
                    counter,
                    kind: LoopKind::Repeat,
                    span: *span,
                });
                self.emit(Op::Jump { target: head });
                let end = self.pc();
                self.patch(br, end);
            }
            CStmt::For {
                var,
                from,
                down,
                to,
                body,
                span,
            } => {
                let rf = self.expr(from);
                let rt = self.expr(to);
                let i = self.rtmp();
                let limit = self.rtmp();
                let template = self.rtmp();
                let counter = self.rtmp();
                self.emit(Op::ForPrep {
                    from: rf,
                    to: rt,
                    i,
                    limit,
                    template,
                    span: *span,
                });
                let k0 = self.kconst(Value::Int(0));
                self.emit(Op::Const { dst: counter, k: k0 });
                let head = self.pc();
                let chk = self.emit(Op::ForCheck {
                    i,
                    limit,
                    down: *down,
                    exit: 0,
                });
                let body_floor = self.next_reg;
                let rv = self.rtmp();
                self.emit(Op::ForMake {
                    dst: rv,
                    i,
                    template,
                });
                let p = self.place(var);
                self.emit(Op::WritePlace { p, src: rv });
                self.next_reg = body_floor;
                self.next_place = pmark;
                self.block(body);
                self.emit(Op::IncCheck {
                    counter,
                    kind: LoopKind::For,
                    span: *span,
                });
                self.emit(Op::ForStep { i, down: *down });
                self.emit(Op::Jump { target: head });
                let end = self.pc();
                self.patch(chk, end);
            }
            CStmt::Case {
                scrutinee,
                arms,
                else_arm,
                span,
            } => {
                let rs = self.expr(scrutinee);
                let table = self.cases.len() as u32;
                self.cases.push(CaseTable {
                    arms: Vec::new(),
                    default: 0,
                });
                self.emit(Op::Case {
                    src: rs,
                    table,
                    span: *span,
                });
                self.next_reg = rmark;
                let mut arm_entries = Vec::with_capacity(arms.len());
                let mut ends = Vec::new();
                for (labels, body) in arms {
                    arm_entries.push((labels.clone(), self.pc()));
                    self.block(body);
                    ends.push(self.emit(Op::Jump { target: 0 }));
                }
                let default = self.pc();
                if let Some(body) = else_arm {
                    self.block(body);
                }
                let end = self.pc();
                for j in ends {
                    self.patch(j, end);
                }
                self.cases[table as usize] = CaseTable {
                    arms: arm_entries,
                    default,
                };
            }
            CStmt::Output {
                ip,
                interaction,
                args,
                span,
            } => {
                let first = self.next_reg;
                for _ in args {
                    self.rtmp();
                }
                for (i, a) in args.iter().enumerate() {
                    let dst = first + i as u32;
                    self.expr_into(a, dst);
                    // Interleaved with evaluation, as in the tree-walker:
                    // arg i is checked before arg i+1 evaluates.
                    self.emit(Op::CheckDef {
                        src: dst,
                        span: *span,
                    });
                }
                self.emit(Op::Output {
                    ip: *ip as u32,
                    interaction: *interaction as u32,
                    first,
                    n: args.len() as u32,
                    span: *span,
                });
            }
            CStmt::Call(call) => {
                self.call(call, None);
            }
            CStmt::New(place, pointee, _) => {
                let template = default_value(&self.module.analyzed.types, *pointee);
                let k = self.kconst(template);
                let rv = self.rtmp();
                self.emit(Op::Alloc {
                    dst: rv,
                    template: k,
                });
                let p = self.place(place);
                self.emit(Op::WritePlace { p, src: rv });
            }
            CStmt::Dispose(place, span) => {
                let p = self.place(place);
                let rv = self.rtmp();
                self.emit(Op::ReadPlace { dst: rv, p });
                self.emit(Op::Dispose {
                    src: rv,
                    span: *span,
                });
            }
        }
        self.next_reg = rmark;
        self.next_place = pmark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn dispatch_index_buckets_preserve_declaration_order() {
        let m = Machine::from_source(
            r#"
            specification d;
            module M process; end;
            body MB for M;
                var n : integer;
                state A, B;
                initialize to A begin n := 0 end;
                trans
                from A to B name T1: begin n := 1 end;
                from B to A name T2: begin n := 2 end;
                from A, B to same name T3: begin n := 3 end;
            end;
            end.
        "#,
        )
        .unwrap();
        let idx = &m.program.dispatch;
        let order = |s: usize| -> Vec<u32> {
            idx.by_state[s].iter().map(|e| e.trans).collect()
        };
        assert_eq!(order(0), vec![0, 2], "state A: T1 then T3");
        assert_eq!(order(1), vec![1, 2], "state B: T2 then T3");
        assert_eq!(idx.entries(), 4, "multi-source T3 appears in both buckets");
    }

    #[test]
    fn guard_chunks_record_call_flag() {
        let m = Machine::from_source(
            r#"
            specification g;
            module M process; end;
            body MB for M;
                var n : integer;
                state S;
                function pos(x : integer) : boolean; begin pos := x > 0 end;
                initialize to S begin n := 1 end;
                trans
                from S to S provided n > 0 name Plain: begin n := n end;
                from S to S provided pos(n) name Calls: begin n := n end;
            end;
            end.
        "#,
        )
        .unwrap();
        let g = &m.program.guards;
        assert!(!g[0].as_ref().unwrap().has_calls);
        assert!(g[1].as_ref().unwrap().has_calls);
    }

    #[test]
    fn chunks_are_flat_and_sized() {
        let m = Machine::from_source(
            r#"
            specification c;
            module M process; end;
            body MB for M;
                var a, b : integer;
                state S;
                initialize to S begin a := 0; b := 0 end;
                trans
                from S to S provided (a + 1) * 2 > b name T: begin
                    b := b + (3 * 4);
                end;
            end;
            end.
        "#,
        )
        .unwrap();
        assert!(m.program.code_len() > 0);
        for c in &m.program.chunks {
            assert!(c.n_regs <= 16, "tiny spec should need few registers");
        }
        // `3 * 4` folds to one interned constant.
        let body = &m.program.chunks[m.program.bodies[0]];
        assert!(
            body.consts.contains(&Value::Int(12)),
            "constant folding interned 12: {:?}",
            body.consts
        );
    }

    #[test]
    fn any_bindings_fold_into_frameless_quick_guards() {
        let m = Machine::from_source(
            r#"
            specification q;
            module M process; end;
            body MB for M;
                var n : integer; flag : boolean;
                state S;
                function pos(x : integer) : boolean; begin pos := x > 0 end;
                initialize to S begin n := 0; flag := false end;
                trans
                from S to S any k : 3..5 do provided n = k name Pad:
                    begin n := 0 end;
                from S to S provided flag name Flag: begin n := 1 end;
                from S to S provided true name Always: begin n := 2 end;
                from S to S provided pos(n) name Calls: begin n := 3 end;
            end;
            end.
        "#,
        )
        .unwrap();
        let g = |i: usize| m.program.guards[i].as_ref().unwrap();
        // The `any` instances: `n = k` with k frozen per instance — the
        // binding substitutes as a constant, the chunk needs no frame,
        // and the shape collapses to a VM-free global/const compare.
        for (i, want_k) in [(0i64, 3i64), (1, 4), (2, 5)] {
            let gc = g(i as usize);
            assert!(!gc.needs_frame, "instance {} reads no frame slots", i);
            match &gc.quick {
                Some(QuickGuard::GlobalOpConst { k, swapped, .. }) => {
                    assert_eq!(*k, Value::Int(want_k));
                    assert!(!swapped, "`n = k` reads the global first");
                }
                other => panic!("instance {}: expected quick compare, got {:?}", i, other),
            }
        }
        // A bare boolean global and a folded constant also go quick.
        assert!(matches!(g(3).quick, Some(QuickGuard::Global { .. })));
        assert!(matches!(
            g(4).quick,
            Some(QuickGuard::Const(Value::Bool(true)))
        ));
        // Guards with calls never take the fast path.
        assert!(g(5).quick.is_none());
        assert!(g(5).has_calls);
    }

    #[test]
    fn superinstructions_fuse_load_load_binary_windows() {
        let m = Machine::from_source(
            r#"
            specification f;
            module M process; end;
            body MB for M;
                var a, b : integer;
                state S;
                initialize to S begin a := 0; b := 0 end;
                trans
                from S to S provided a > 5 name T: begin
                    while a < 10 do begin
                        a := a + 1;
                        if b < a then b := b + 2;
                    end;
                    case a of
                        10 : b := a - b
                        else b := 0
                    end;
                end;
            end;
            end.
        "#,
        )
        .unwrap();
        assert!(
            m.program.fused_count() >= 3,
            "guard compare, counter updates and case arm all fuse: {}",
            m.program.fused_count()
        );
        // The fused guard still pattern-matches to the VM-free quick path.
        assert!(matches!(
            m.program.guards[0].as_ref().unwrap().quick,
            Some(QuickGuard::GlobalOpConst { .. })
        ));
        // Every branch target and case-table entry still lands on a real
        // instruction after remapping.
        for c in &m.program.chunks {
            let n = c.code.len() as u32;
            for op in &c.code {
                match op {
                    Op::Jump { target }
                    | Op::BranchBool { target, .. }
                    | Op::LogicShort { target, .. } => assert!(*target <= n),
                    Op::ForCheck { exit, .. } => assert!(*exit <= n),
                    _ => {}
                }
            }
            for t in &c.cases {
                assert!(t.default <= n);
                for (_, pc) in &t.arms {
                    assert!(*pc <= n);
                }
            }
        }
    }

    #[test]
    fn conj_guard_extracted_for_call_free_and_chains() {
        let m = Machine::from_source(
            r#"
            specification cj;
            module M process; end;
            body MB for M;
                var busy : boolean; vs, rc : integer;
                state S;
                function pos(x : integer) : boolean; begin pos := x > 0 end;
                initialize to S begin busy := true; vs := 0; rc := 0 end;
                trans
                from S to S provided busy and (vs = 0) and (rc < 4) name Conj:
                    begin vs := vs end;
                from S to S provided busy and pos(vs) name WithCall:
                    begin vs := vs end;
                from S to S provided busy name Single: begin vs := vs end;
            end;
            end.
        "#,
        )
        .unwrap();
        let g = |i: usize| m.program.guards[i].as_ref().unwrap();
        let cj = g(0).conj.as_ref().expect("and-chain gets a conj plan");
        assert_eq!(cj.terms.len(), 3);
        assert!(matches!(cj.terms[0], QuickGuard::Global { .. }));
        assert!(matches!(cj.terms[1], QuickGuard::GlobalOpConst { .. }));
        assert_eq!(cj.slots.len(), 3, "busy, vs, rc all prechecked");
        assert!(g(1).conj.is_none(), "calls disqualify the conj plan");
        assert!(g(2).conj.is_none(), "single terms stay QuickGuard");
    }

    #[test]
    fn pgo_reorders_buckets_by_fires_and_restores_flag() {
        let m = Machine::from_source(
            r#"
            specification p;
            module M process; end;
            body MB for M;
                var n : integer;
                state A;
                initialize to A begin n := 0 end;
                trans
                from A to A provided n = 0 name T1: begin n := 0 end;
                from A to A provided n = 1 name T2: begin n := 0 end;
                from A to A provided n = 2 name T3: begin n := 0 end;
            end;
            end.
        "#,
        )
        .unwrap();
        let mut prog = (*m.program).clone();
        assert!(!prog.dispatch.reordered);
        // T3 fired most, then T1; T2 never.
        prog.apply_pgo(&PgoHints {
            fires: vec![10, 0, 50],
            fails: vec![0, 60, 10],
        });
        assert!(prog.pgo);
        assert!(prog.dispatch.reordered);
        let order: Vec<u32> = prog.dispatch.by_state[0].iter().map(|e| e.trans).collect();
        assert_eq!(order, vec![2, 0, 1]);
        // Equal-fire hints keep declaration order and clear the flag.
        let mut prog2 = (*m.program).clone();
        prog2.apply_pgo(&PgoHints {
            fires: vec![5, 5, 5],
            fails: vec![0, 0, 0],
        });
        assert!(!prog2.dispatch.reordered, "stable sort kept decl order");
        let order2: Vec<u32> = prog2.dispatch.by_state[0].iter().map(|e| e.trans).collect();
        assert_eq!(order2, vec![0, 1, 2]);
    }
}
