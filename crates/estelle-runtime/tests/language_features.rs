//! Exhaustive coverage of the supported Estelle/Pascal constructs,
//! exercised end-to-end: source → frontend → compiler → interpreter.
//!
//! Each test builds a small specification whose `initialize` block (or a
//! fired transition) computes into module variables, then asserts on the
//! resulting machine state.

use estelle_runtime::{
    FireOutcome, InputSource, Machine, MachineState, OutputSink, QueueHead, RuntimeErrorKind,
    Value,
};

/// Build a machine whose module body is `body MB for M; <body> end;` with
/// one bidirectional channel on IP `P`.
fn machine_with(body: &str) -> Machine {
    let src = format!(
        r#"
        specification t;
        channel C(env, m);
            by env: go(n : integer);
            by m: out1(v : integer);
        end;
        module M process; ip P : C(m); end;
        body MB for M;
            {}
        end;
        end.
        "#,
        body
    );
    Machine::from_source(&src).unwrap_or_else(|e| panic!("spec failed: {}\n{}", e, src))
}

fn init_state(body: &str) -> (Machine, MachineState) {
    let m = machine_with(body);
    let st = m.initial_state().expect("initializes");
    (m, st)
}

/// A single-queue scripted environment.
struct Env {
    msgs: Vec<Vec<Value>>,
    pos: usize,
    outputs: Vec<Vec<Value>>,
}

impl Env {
    fn new(msgs: Vec<Vec<Value>>) -> Self {
        Env {
            msgs,
            pos: 0,
            outputs: Vec::new(),
        }
    }
}

impl InputSource for Env {
    fn head(&self, _ip: usize) -> QueueHead {
        match self.msgs.get(self.pos) {
            Some(params) => QueueHead::Message {
                interaction: 0,
                params: params.clone(),
            },
            None => QueueHead::Empty,
        }
    }
    fn consume(&mut self, _ip: usize) {
        self.pos += 1;
    }
}

impl OutputSink for Env {
    fn emit(&mut self, _ip: usize, _interaction: usize, params: Vec<Value>) -> bool {
        self.outputs.push(params);
        true
    }
}

#[test]
fn while_loop_sums() {
    let (_, st) = init_state(
        "var s, i : integer; state S;
         initialize to S begin
            s := 0; i := 1;
            while i <= 10 do begin s := s + i; i := i + 1 end;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(55));
}

#[test]
fn repeat_runs_at_least_once() {
    let (_, st) = init_state(
        "var n : integer; state S;
         initialize to S begin
            n := 100;
            repeat n := n + 1 until true;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(101));
}

#[test]
fn for_up_and_downto() {
    let (_, st) = init_state(
        "var up, down, i : integer; state S;
         initialize to S begin
            up := 0; down := 0;
            for i := 1 to 5 do up := up + i;
            for i := 5 downto 1 do down := down * 2 + i;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(15));
    assert_eq!(st.globals[1], Value::Int(5 * 16 + 4 * 8 + 3 * 4 + 2 * 2 + 1));
}

#[test]
fn for_with_empty_range_skips() {
    let (_, st) = init_state(
        "var n, i : integer; state S;
         initialize to S begin
            n := 7;
            for i := 5 to 1 do n := 0;
            for i := 1 downto 5 do n := 0;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(7));
}

#[test]
fn case_selects_arm_and_else() {
    let (_, st) = init_state(
        "var a, b, c : integer; state S;
         initialize to S begin
            case 2 of 1 : a := 10; 2, 3 : a := 20 else a := 30 end;
            case 9 of 1 : b := 10; 2, 3 : b := 20 else b := 30 end;
            c := 1;
            case 4 of 1 : c := 99 end;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(20));
    assert_eq!(st.globals[1], Value::Int(30));
    // Unmatched case without else is a no-op (lenient semantics).
    assert_eq!(st.globals[2], Value::Int(1));
}

#[test]
fn enums_order_and_case_labels() {
    let (_, st) = init_state(
        "type color = (red, green, blue);
         var c : color; rank : integer; state S;
         initialize to S begin
            c := green;
            if c > red then rank := 1 else rank := 0;
            case c of red : rank := 10; green : rank := rank + 100 end;
         end;",
    );
    assert_eq!(st.globals[1], Value::Int(101));
}

#[test]
fn subrange_and_mod_arithmetic() {
    let (_, st) = init_state(
        "type seq = 0..7;
         var v : seq; state S;
         initialize to S begin
            v := 6;
            v := (v + 3) mod 8;
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(1));
}

#[test]
fn records_and_arrays_compose() {
    let (_, st) = init_state(
        "type pair = record x : integer; y : integer end;
         var grid : array [0..2] of pair; sum : integer; i : integer;
         state S;
         initialize to S begin
            for i := 0 to 2 do begin
                grid[i].x := i * 10;
                grid[i].y := i;
            end;
            sum := grid[0].x + grid[1].x + grid[2].x + grid[2].y;
         end;",
    );
    assert_eq!(st.globals[1], Value::Int(32));
}

#[test]
fn array_assignment_copies_deeply() {
    let (_, st) = init_state(
        "var a, b : array [1..3] of integer; i : integer; probe : integer;
         state S;
         initialize to S begin
            for i := 1 to 3 do a[i] := i;
            b := a;
            a[1] := 99;
            probe := b[1];
         end;",
    );
    // globals: a=0, b=1, i=2, probe=3
    assert_eq!(st.globals[3], Value::Int(1));
}

#[test]
fn sets_membership_and_constructors() {
    let (_, st) = init_state(
        "type seq = 0..7;
         var s : set of seq; hit, miss : boolean; state S;
         initialize to S begin
            s := [1, 3..5];
            hit := 4 in s;
            miss := 2 in s;
         end;",
    );
    assert_eq!(st.globals[1], Value::Bool(true));
    assert_eq!(st.globals[2], Value::Bool(false));
}

#[test]
fn pointers_linked_list_and_dispose() {
    let (_, st) = init_state(
        "type cell = record v : integer; next : ^cell end;
         var head, tmp : ^cell; sum : integer; i : integer;
         state S;
         initialize to S begin
            head := nil;
            for i := 1 to 4 do begin
                new(tmp);
                tmp^.v := i;
                tmp^.next := head;
                head := tmp;
            end;
            sum := 0;
            while head <> nil do begin
                sum := sum + head^.v;
                tmp := head;
                head := head^.next;
                dispose(tmp);
            end;
         end;",
    );
    assert_eq!(st.globals[2], Value::Int(10));
    assert_eq!(st.heap.live(), 0);
}

#[test]
fn procedure_with_var_parameter() {
    let (_, st) = init_state(
        "var a, b : integer;
         procedure swap(var x : integer; var y : integer);
            var t : integer;
         begin
            t := x; x := y; y := t
         end;
         state S;
         initialize to S begin
            a := 1; b := 2;
            swap(a, b);
         end;",
    );
    assert_eq!(st.globals[0], Value::Int(2));
    assert_eq!(st.globals[1], Value::Int(1));
}

#[test]
fn recursive_function() {
    let (_, st) = init_state(
        "var f : integer;
         function fact(n : integer) : integer;
         begin
            if n <= 1 then fact := 1
            else fact := n * fact(n - 1)
         end;
         state S;
         initialize to S begin f := fact(6) end;",
    );
    assert_eq!(st.globals[0], Value::Int(720));
}

#[test]
fn function_result_via_name_assignment() {
    let (_, st) = init_state(
        "var r : integer;
         function clamp(v : integer) : integer;
         begin
            clamp := v;
            if v > 10 then clamp := 10;
            if v < 0 then clamp := 0
         end;
         state S;
         initialize to S begin r := clamp(42) + clamp(-3) + clamp(7) end;",
    );
    assert_eq!(st.globals[0], Value::Int(17));
}

#[test]
fn short_circuit_boolean_operators() {
    // `(n <> 0) and (10 div n > 1)` must not divide when n = 0.
    let (_, st) = init_state(
        "var n : integer; ok : boolean; state S;
         initialize to S begin
            n := 0;
            ok := (n <> 0) and ((10 div 1) > 1);
            if (n = 0) or ((10 div n) > 0) then ok := true;
         end;",
    );
    assert_eq!(st.globals[1], Value::Bool(true));
}

#[test]
fn division_by_zero_is_reported() {
    let m = machine_with(
        "var n : integer; state S;
         initialize to S begin n := 10 div (5 - 5) end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::DivisionByZero);
}

#[test]
fn uninitialized_variable_use_is_reported() {
    let m = machine_with(
        "var a, b : integer; state S;
         initialize to S begin a := b + 1 end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::UndefinedValue);
}

#[test]
fn nil_dereference_is_reported() {
    let m = machine_with(
        "type cell = record v : integer; next : ^cell end;
         var p : ^cell; x : integer; state S;
         initialize to S begin p := nil; x := p^.v end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::DanglingPointer);
}

#[test]
fn dangling_pointer_after_dispose_is_reported() {
    let m = machine_with(
        "type cell = record v : integer; next : ^cell end;
         var p : ^cell; x : integer; state S;
         initialize to S begin
            new(p); p^.v := 1; dispose(p); x := p^.v
         end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::DanglingPointer);
}

#[test]
fn array_bounds_are_checked() {
    let m = machine_with(
        "var a : array [0..3] of integer; i : integer; state S;
         initialize to S begin i := 4; a[i] := 1 end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::IndexOutOfBounds);
}

#[test]
fn runaway_loop_hits_the_limit() {
    let m = machine_with(
        "var n : integer; state S;
         initialize to S begin
            n := 0;
            while n >= 0 do n := 1;
         end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::LoopLimitExceeded);
}

#[test]
fn runaway_recursion_hits_the_limit() {
    let m = machine_with(
        "var x : integer;
         function f(n : integer) : integer;
         begin f := f(n + 1) end;
         state S;
         initialize to S begin x := f(0) end;",
    );
    let err = m.initial_state().unwrap_err();
    assert_eq!(err.kind, RuntimeErrorKind::CallDepthExceeded);
}

#[test]
fn when_parameters_flow_into_outputs() {
    let m = machine_with(
        "var acc : integer; state S;
         initialize to S begin acc := 0 end;
         trans
         from S to S when P.go begin
            acc := acc + n;
            output P.out1(acc * 2);
         end;",
    );
    let mut st = m.initial_state().unwrap();
    let mut env = Env::new(vec![vec![Value::Int(5)], vec![Value::Int(7)]]);
    for _ in 0..2 {
        let g = m.generate(&mut st, &env).unwrap();
        assert_eq!(g.fireable.len(), 1);
        let out = m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
        assert_eq!(out, FireOutcome::Completed);
    }
    assert_eq!(env.outputs, vec![vec![Value::Int(10)], vec![Value::Int(24)]]);
}

#[test]
fn outputs_inside_procedures_reach_the_sink() {
    let m = machine_with(
        "procedure announce(v : integer);
         begin output P.out1(v) end;
         state S;
         initialize to S begin end;
         trans
         from S to S when P.go begin announce(n); announce(n + 1) end;",
    );
    let mut st = m.initial_state().unwrap();
    let mut env = Env::new(vec![vec![Value::Int(3)]]);
    let g = m.generate(&mut st, &env).unwrap();
    m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
    assert_eq!(env.outputs, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
}

#[test]
fn any_clause_instances_behave_independently() {
    let m = machine_with(
        "var hits : array [0..2] of integer; slot : integer; state S;
         initialize to S begin
            for slot := 0 to 2 do hits[slot] := 0;
         end;
         trans
         from S to S when P.go any k : 0..2 do provided n = k begin
            hits[k] := hits[k] + 1;
         end;",
    );
    assert_eq!(m.module.transition_count(), 3);
    let mut st = m.initial_state().unwrap();
    let mut env = Env::new(vec![vec![Value::Int(2)], vec![Value::Int(0)], vec![Value::Int(2)]]);
    for _ in 0..3 {
        let g = m.generate(&mut st, &env).unwrap();
        assert_eq!(g.fireable.len(), 1, "guards select exactly one instance");
        m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
    }
    assert_eq!(
        st.globals[0],
        Value::Array(vec![Value::Int(1), Value::Int(0), Value::Int(2)])
    );
}

#[test]
fn guards_with_function_calls_do_not_corrupt_state() {
    // The guard calls a function with a side effect; generate must
    // evaluate it against scratch state (see Machine::generate).
    let m = machine_with(
        "var poked : integer;
         function check(v : integer) : boolean;
         begin
            poked := poked + 1;
            check := v > 0
         end;
         state S;
         initialize to S begin poked := 0 end;
         trans
         from S to S when P.go provided check(n) begin output P.out1(poked) end;",
    );
    let mut st = m.initial_state().unwrap();
    let mut env = Env::new(vec![vec![Value::Int(1)]]);
    let g = m.generate(&mut st, &env).unwrap();
    assert_eq!(g.fireable.len(), 1);
    // The side effect of guard evaluation was discarded.
    assert_eq!(st.globals[0], Value::Int(0));
    m.fire(&mut st, &g.fireable[0], &mut env).unwrap();
    assert_eq!(env.outputs, vec![vec![Value::Int(0)]]);
}

#[test]
fn nested_any_clauses_cross_product() {
    let m = machine_with(
        "var total : integer; state S;
         initialize to S begin total := 0 end;
         trans
         from S to S any i : 0..1 do any j : 0..2 do provided false begin
            total := i + j;
         end;",
    );
    assert_eq!(m.module.transition_count(), 6);
}

#[test]
fn boolean_any_domain() {
    let m = machine_with(
        "var total : integer; state S;
         initialize to S begin total := 0 end;
         trans
         from S to S any b : boolean do provided b begin total := 1 end;",
    );
    assert_eq!(m.module.transition_count(), 2);
    let mut st = m.initial_state().unwrap();
    let env = estelle_runtime::env::NullEnv::default();
    let g = m.generate(&mut st, &env).unwrap();
    // Only the b=true instance passes its guard.
    assert_eq!(g.fireable.len(), 1);
}
