//! Property tests for the runtime substrate: the heap against a
//! reference model, set semantics, and interpreter arithmetic against
//! direct evaluation.

use estelle_runtime::value::SmallSet;
use estelle_runtime::{Heap, Machine, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Heap vs. a reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(i64),
    /// Dispose the n-th live allocation (modulo the live count).
    Dispose(usize),
    /// Overwrite the n-th live allocation.
    Write(usize, i64),
    /// Snapshot now; verify the snapshot at the end.
    Snapshot,
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<i64>()).prop_map(HeapOp::Alloc),
            (0usize..8).prop_map(HeapOp::Dispose),
            (0usize..8, any::<i64>()).prop_map(|(i, v)| HeapOp::Write(i, v)),
            Just(HeapOp::Snapshot),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The heap agrees with a simple Vec-based model under arbitrary
    /// alloc/dispose/write interleavings, and snapshots are immutable.
    #[test]
    fn heap_matches_reference_model(ops in heap_ops()) {
        let mut heap = Heap::new();
        let mut live: Vec<(estelle_runtime::HeapRef, i64)> = Vec::new();
        let mut snapshot: Option<(Heap, Vec<(estelle_runtime::HeapRef, i64)>)> = None;

        for op in ops {
            match op {
                HeapOp::Alloc(v) => {
                    let r = heap.alloc(Value::Int(v));
                    live.push((r, v));
                }
                HeapOp::Dispose(i) => {
                    if !live.is_empty() {
                        let (r, _) = live.remove(i % live.len());
                        heap.dispose(r).expect("live ref disposes");
                        // Double dispose must fail.
                        prop_assert!(heap.dispose(r).is_err());
                    }
                }
                HeapOp::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (r, _) = live[idx];
                        *heap.get_mut(r).expect("live ref reads") = Value::Int(v);
                        live[idx].1 = v;
                    }
                }
                HeapOp::Snapshot => {
                    snapshot = Some((heap.clone(), live.clone()));
                }
            }
            // Model agreement after every step.
            prop_assert_eq!(heap.live(), live.len());
            for (r, v) in &live {
                prop_assert_eq!(heap.get(*r).unwrap(), &Value::Int(*v));
            }
        }

        // The snapshot still shows the world as it was.
        if let Some((snap, snap_live)) = snapshot {
            prop_assert_eq!(snap.live(), snap_live.len());
            for (r, v) in &snap_live {
                prop_assert_eq!(snap.get(*r).unwrap(), &Value::Int(*v));
            }
        }
    }

    /// SmallSet behaves like BTreeSet for insert/contains/len.
    #[test]
    fn small_set_matches_btreeset(values in prop::collection::vec(-50i64..50, 0..40)) {
        let mut small = SmallSet::empty();
        let mut reference = BTreeSet::new();
        for v in &values {
            small.insert(*v);
            reference.insert(*v);
            prop_assert_eq!(small.len(), reference.len());
        }
        for v in -50i64..50 {
            prop_assert_eq!(small.contains(v), reference.contains(&v));
        }
        let collected: Vec<i64> = small.iter().collect();
        let expected: Vec<i64> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    /// The interpreter's integer arithmetic matches Rust's, including
    /// Pascal `div`/`mod` truncation semantics, evaluated through a real
    /// compiled specification.
    #[test]
    fn interpreter_arithmetic_matches_host(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assume!(b != 0);
        let src = format!(
            r#"
            specification arith;
            channel C(env, m); by env: go; by m: done(q : integer; r : integer; s : integer); end;
            module M process; ip P : C(m); end;
            body MB for M;
                var q, r, s : integer;
                state S;
                initialize to S begin
                    q := ({a}) div ({b});
                    r := ({a}) mod ({b});
                    s := (({a}) + ({b})) * 2 - ({b});
                end;
                trans
                from S to S when P.go begin output P.done(q, r, s) end;
            end;
            end.
            "#,
        );
        let machine = Machine::from_source(&src).expect("builds");
        let st = machine.initial_state().expect("initializes");
        prop_assert_eq!(&st.globals[0], &Value::Int(a.wrapping_div(b)));
        prop_assert_eq!(&st.globals[1], &Value::Int(a.wrapping_rem(b)));
        prop_assert_eq!(&st.globals[2], &Value::Int((a + b) * 2 - b));
    }

    /// `matches` is reflexive and symmetric for arbitrary scalar values,
    /// and undefined absorbs everything.
    #[test]
    fn value_matching_properties(x in -100i64..100, y in -100i64..100) {
        let a = Value::Int(x);
        let b = Value::Int(y);
        prop_assert!(a.matches(&a));
        prop_assert_eq!(a.matches(&b), b.matches(&a));
        prop_assert_eq!(a.matches(&b), x == y);
        prop_assert!(Value::Undefined.matches(&a));
        prop_assert!(a.matches(&Value::Undefined));
    }
}

/// Machine state snapshots are genuinely independent: mutating the live
/// state never leaks into a clone taken earlier (the Save operation).
#[test]
fn machine_state_snapshot_independence() {
    let src = r#"
        specification snap;
        channel C(env, m); by env: bump; end;
        module M process; ip P : C(m); end;
        body MB for M;
            type cell = record v : integer; next : ^cell end;
            var n : integer; head : ^cell;
            state S;
            initialize to S begin n := 0; head := nil end;
            trans
            from S to S when P.bump begin
                n := n + 1;
                new(head);
                head^.v := n;
            end;
        end;
        end.
    "#;
    let machine = Machine::from_source(src).unwrap();
    let mut st = machine.initial_state().unwrap();

    struct OneShot(usize);
    impl estelle_runtime::InputSource for OneShot {
        fn head(&self, _ip: usize) -> estelle_runtime::QueueHead {
            if self.0 > 0 {
                estelle_runtime::QueueHead::Message {
                    interaction: 0,
                    params: vec![],
                }
            } else {
                estelle_runtime::QueueHead::Empty
            }
        }
        fn consume(&mut self, _ip: usize) {
            self.0 -= 1;
        }
    }
    impl estelle_runtime::OutputSink for OneShot {
        fn emit(&mut self, _: usize, _: usize, _: Vec<Value>) -> bool {
            true
        }
    }

    let mut env = OneShot(3);
    let snapshots: Vec<_> = (0..3)
        .map(|_| {
            let snap = st.clone();
            let g = machine.generate(&mut st, &env).unwrap();
            machine.fire(&mut st, &g.fireable[0], &mut env).unwrap();
            snap
        })
        .collect();

    assert_eq!(st.globals[0], Value::Int(3));
    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(snap.globals[0], Value::Int(i as i64));
        assert_eq!(snap.heap.live(), i);
    }
}
