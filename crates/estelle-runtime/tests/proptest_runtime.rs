//! Randomized-sweep tests for the runtime substrate: the heap against a
//! reference model, set semantics, and interpreter arithmetic against
//! direct evaluation.
//!
//! Formerly `proptest`-based; now deterministic seeded sweeps (the
//! workspace builds offline with no registry dependencies). Each failure
//! message carries the seed that reproduces it.

use estelle_runtime::value::SmallSet;
use estelle_runtime::{Heap, Machine, Value};
use std::collections::BTreeSet;

/// Minimal SplitMix64 for reproducible pseudo-random sweeps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo) as u64 + 1)) as i64
    }
}

// ---------------------------------------------------------------------
// Heap vs. a reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(i64),
    /// Dispose the n-th live allocation (modulo the live count).
    Dispose(usize),
    /// Overwrite the n-th live allocation.
    Write(usize, i64),
    /// Snapshot now; verify the snapshot at the end.
    Snapshot,
}

fn heap_ops(rng: &mut Rng) -> Vec<HeapOp> {
    (0..rng.index(60))
        .map(|_| match rng.index(4) {
            0 => HeapOp::Alloc(rng.next() as i64),
            1 => HeapOp::Dispose(rng.index(8)),
            2 => HeapOp::Write(rng.index(8), rng.next() as i64),
            _ => HeapOp::Snapshot,
        })
        .collect()
}

/// The heap agrees with a simple Vec-based model under arbitrary
/// alloc/dispose/write interleavings, and snapshots are immutable.
#[test]
fn heap_matches_reference_model() {
    for seed in 0..256u64 {
        let ops = heap_ops(&mut Rng(seed));
        let mut heap = Heap::new();
        let mut live: Vec<(estelle_runtime::HeapRef, i64)> = Vec::new();
        let mut snapshot: Option<(Heap, Vec<(estelle_runtime::HeapRef, i64)>)> = None;

        for op in ops {
            match op {
                HeapOp::Alloc(v) => {
                    let r = heap.alloc(Value::Int(v));
                    live.push((r, v));
                }
                HeapOp::Dispose(i) => {
                    if !live.is_empty() {
                        let (r, _) = live.remove(i % live.len());
                        heap.dispose(r).expect("live ref disposes");
                        // Double dispose must fail.
                        assert!(heap.dispose(r).is_err(), "seed {}", seed);
                    }
                }
                HeapOp::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (r, _) = live[idx];
                        *heap.get_mut(r).expect("live ref reads") = Value::Int(v);
                        live[idx].1 = v;
                    }
                }
                HeapOp::Snapshot => {
                    snapshot = Some((heap.clone(), live.clone()));
                }
            }
            // Model agreement after every step.
            assert_eq!(heap.live(), live.len(), "seed {}", seed);
            for (r, v) in &live {
                assert_eq!(heap.get(*r).unwrap(), &Value::Int(*v), "seed {}", seed);
            }
        }

        // The snapshot still shows the world as it was.
        if let Some((snap, snap_live)) = snapshot {
            assert_eq!(snap.live(), snap_live.len(), "seed {}", seed);
            for (r, v) in &snap_live {
                assert_eq!(snap.get(*r).unwrap(), &Value::Int(*v), "seed {}", seed);
            }
        }
    }
}

/// SmallSet behaves like BTreeSet for insert/contains/len.
#[test]
fn small_set_matches_btreeset() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed);
        let values: Vec<i64> = (0..rng.index(40)).map(|_| rng.int(-50, 49)).collect();
        let mut small = SmallSet::empty();
        let mut reference = BTreeSet::new();
        for v in &values {
            small.insert(*v);
            reference.insert(*v);
            assert_eq!(small.len(), reference.len(), "seed {}", seed);
        }
        for v in -50i64..50 {
            assert_eq!(small.contains(v), reference.contains(&v), "seed {}", seed);
        }
        let collected: Vec<i64> = small.iter().collect();
        let expected: Vec<i64> = reference.into_iter().collect();
        assert_eq!(collected, expected, "seed {}", seed);
    }
}

/// The interpreter's integer arithmetic matches Rust's, including
/// Pascal `div`/`mod` truncation semantics, evaluated through a real
/// compiled specification.
#[test]
fn interpreter_arithmetic_matches_host() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed);
        let a = rng.int(-10_000, 9_999);
        let mut b = rng.int(-10_000, 9_999);
        if b == 0 {
            b = 1;
        }
        let src = format!(
            r#"
            specification arith;
            channel C(env, m); by env: go; by m: done(q : integer; r : integer; s : integer); end;
            module M process; ip P : C(m); end;
            body MB for M;
                var q, r, s : integer;
                state S;
                initialize to S begin
                    q := ({a}) div ({b});
                    r := ({a}) mod ({b});
                    s := (({a}) + ({b})) * 2 - ({b});
                end;
                trans
                from S to S when P.go begin output P.done(q, r, s) end;
            end;
            end.
            "#,
        );
        let machine = Machine::from_source(&src).expect("builds");
        let st = machine.initial_state().expect("initializes");
        assert_eq!(&st.globals[0], &Value::Int(a.wrapping_div(b)), "seed {}", seed);
        assert_eq!(&st.globals[1], &Value::Int(a.wrapping_rem(b)), "seed {}", seed);
        assert_eq!(&st.globals[2], &Value::Int((a + b) * 2 - b), "seed {}", seed);
    }
}

/// `matches` is reflexive and symmetric for arbitrary scalar values,
/// and undefined absorbs everything.
#[test]
fn value_matching_properties() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed);
        let x = rng.int(-100, 99);
        let y = rng.int(-100, 99);
        let a = Value::Int(x);
        let b = Value::Int(y);
        assert!(a.matches(&a));
        assert_eq!(a.matches(&b), b.matches(&a));
        assert_eq!(a.matches(&b), x == y);
        assert!(Value::Undefined.matches(&a));
        assert!(a.matches(&Value::Undefined));
    }
}

/// Machine state snapshots are genuinely independent: mutating the live
/// state never leaks into a clone taken earlier (the Save operation).
#[test]
fn machine_state_snapshot_independence() {
    let src = r#"
        specification snap;
        channel C(env, m); by env: bump; end;
        module M process; ip P : C(m); end;
        body MB for M;
            type cell = record v : integer; next : ^cell end;
            var n : integer; head : ^cell;
            state S;
            initialize to S begin n := 0; head := nil end;
            trans
            from S to S when P.bump begin
                n := n + 1;
                new(head);
                head^.v := n;
            end;
        end;
        end.
    "#;
    let machine = Machine::from_source(src).unwrap();
    let mut st = machine.initial_state().unwrap();

    struct OneShot(usize);
    impl estelle_runtime::InputSource for OneShot {
        fn head(&self, _ip: usize) -> estelle_runtime::QueueHead {
            if self.0 > 0 {
                estelle_runtime::QueueHead::Message {
                    interaction: 0,
                    params: vec![],
                }
            } else {
                estelle_runtime::QueueHead::Empty
            }
        }
        fn consume(&mut self, _ip: usize) {
            self.0 -= 1;
        }
    }
    impl estelle_runtime::OutputSink for OneShot {
        fn emit(&mut self, _: usize, _: usize, _: Vec<Value>) -> bool {
            true
        }
    }

    let mut env = OneShot(3);
    let snapshots: Vec<_> = (0..3)
        .map(|_| {
            let snap = st.clone();
            let g = machine.generate(&mut st, &env).unwrap();
            machine.fire(&mut st, &g.fireable[0], &mut env).unwrap();
            snap
        })
        .collect();

    assert_eq!(st.globals[0], Value::Int(3));
    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(snap.globals[0], Value::Int(i as i64));
        assert_eq!(snap.heap.live(), i);
    }
}
