//! Expression grammar: Pascal's four precedence levels.
//!
//! ```text
//! expression := simple [relop simple]          -- = <> < <= > >= in
//! simple     := ['+'|'-'] term { addop term }  -- + - or
//! term       := factor { mulop factor }        -- * div mod and
//! factor     := 'not' factor | postfix
//! postfix    := primary { '.' ident | '[' expr ']' | '^' | '(' args ')' }
//! primary    := int | true | false | nil | ident | '(' expr ')' | set-ctor
//! ```

use super::Parser;
use crate::error::FrontendResult;
use crate::token::{Keyword, TokenKind};
use estelle_ast::expr::SetElem;
use estelle_ast::*;

impl Parser {
    pub(crate) fn expression(&mut self) -> FrontendResult<Expr> {
        self.descend()?;
        let result = self.expression_inner();
        self.ascend();
        result
    }

    fn expression_inner(&mut self) -> FrontendResult<Expr> {
        let lhs = self.simple_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Keyword(Keyword::In) => BinOp::In,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.simple_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn simple_expr(&mut self) -> FrontendResult<Expr> {
        let start = self.span();
        // Optional leading sign.
        let sign = if self.eat(&TokenKind::Minus) {
            Some(UnOp::Neg)
        } else if self.eat(&TokenKind::Plus) {
            Some(UnOp::Plus)
        } else {
            None
        };
        let mut lhs = self.term()?;
        if let Some(op) = sign {
            let span = start.to(lhs.span);
            lhs = Expr::new(ExprKind::Unary(op, Box::new(lhs)), span);
        }
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Keyword(Keyword::Or) => BinOp::Or,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> FrontendResult<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Keyword(Keyword::Div) => BinOp::Div,
                TokenKind::Keyword(Keyword::Mod) => BinOp::Mod,
                TokenKind::Keyword(Keyword::And) => BinOp::And,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> FrontendResult<Expr> {
        if self.at_kw(Keyword::Not) {
            let start = self.span();
            self.bump();
            let operand = self.factor()?;
            let span = start.to(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Not, Box::new(operand)),
                span,
            ));
        }
        self.postfix()
    }

    /// Parse a primary followed by any chain of postfix operators. Also used
    /// by the statement parser for assignment targets and procedure calls.
    pub(crate) fn postfix(&mut self) -> FrontendResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    // `e .. hi` must not be eaten as a field access; the
                    // lexer already distinguishes Dot from DotDot.
                    self.bump();
                    let field = self.expect_ident()?;
                    let span = e.span.to(field.span);
                    e = Expr::new(ExprKind::Field(Box::new(e), field), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                TokenKind::Caret => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr::new(ExprKind::Deref(Box::new(e)), span);
                }
                TokenKind::LParen => {
                    // Only a bare name can become a call.
                    let ExprKind::Name(name) = e.kind.clone() else {
                        break;
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        args.push(self.expression()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.expression()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr::new(ExprKind::Call(name, args), span);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> FrontendResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), span))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), span))
            }
            TokenKind::Keyword(Keyword::Nil) => {
                self.bump();
                Ok(Expr::new(ExprKind::NilLit, span))
            }
            TokenKind::Ident(text) => {
                self.bump();
                Ok(Expr::name(Ident::new(text, span)))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                // Set constructor `[a, 1..3]`.
                self.bump();
                let mut elems = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        let first = self.expression()?;
                        if self.eat(&TokenKind::DotDot) {
                            let hi = self.expression()?;
                            elems.push(SetElem::Range(first, hi));
                        } else {
                            elems.push(SetElem::Single(first));
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                let span = span.to(self.prev_span());
                Ok(Expr::new(ExprKind::SetCtor(elems), span))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_expression;
    use estelle_ast::print::print_expr;
    use estelle_ast::{BinOp, ExprKind};

    fn parsed(src: &str) -> String {
        print_expr(&parse_expression(src).expect("parses"))
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(parsed("1 + 2 * 3"), "(1 + (2 * 3))");
        assert_eq!(parsed("(1 + 2) * 3"), "((1 + 2) * 3)");
    }

    #[test]
    fn relational_is_lowest() {
        assert_eq!(parsed("a + 1 = b * 2"), "((a + 1) = (b * 2))");
    }

    #[test]
    fn boolean_operators_follow_pascal() {
        // `and` binds like `*`, `or` like `+`, so parentheses are required
        // around relations — classic Pascal.
        assert_eq!(parsed("(a = 1) and (b = 2)"), "((a = 1) and (b = 2))");
        assert_eq!(parsed("p or q and r"), "(p or (q and r))");
    }

    #[test]
    fn unary_not_and_neg() {
        assert_eq!(parsed("not ready"), "not (ready)");
        assert_eq!(parsed("-x + 1"), "((-(x)) + 1)");
    }

    #[test]
    fn postfix_chains() {
        assert_eq!(parsed("buf[i].next^.v"), "buf[i].next^.v");
        assert_eq!(parsed("f(1, x + 2)"), "f(1, (x + 2))");
    }

    #[test]
    fn set_membership_and_ctor() {
        let e = parse_expression("x in [1, 3..5]").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::In, _, _)));
    }

    #[test]
    fn nil_literal() {
        assert_eq!(parsed("p = nil"), "(p = nil)");
    }

    #[test]
    fn call_requires_bare_name() {
        // `a.b(c)` is a field access followed by `(` which ends the
        // expression (statement context handles it); not a method call.
        assert!(parse_expression("a.b(c)").is_err());
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_expression("").is_err());
    }
}
