//! Type-expression grammar.

use super::Parser;
use crate::error::FrontendResult;
use crate::token::{Keyword, TokenKind};
use estelle_ast::*;

impl Parser {
    /// `type_expr := '^' type | 'array' '[' type ']' 'of' type
    ///             | 'record' fields 'end' | 'set' 'of' type
    ///             | '(' ident_list ')' | expr ['..' expr]`
    ///
    /// A leading expression that is not followed by `..` must be a bare
    /// name (a named-type reference); anything else is a parse error.
    pub(crate) fn type_expr(&mut self) -> FrontendResult<TypeExpr> {
        self.descend()?;
        let result = self.type_expr_inner();
        self.ascend();
        result
    }

    fn type_expr_inner(&mut self) -> FrontendResult<TypeExpr> {
        let start = self.span();
        if self.eat(&TokenKind::Caret) {
            let target = self.type_expr()?;
            let span = start.to(target.span);
            return Ok(TypeExpr::new(
                TypeExprKind::Pointer(Box::new(target)),
                span,
            ));
        }
        if self.eat_kw(Keyword::Array) {
            self.expect(&TokenKind::LBracket)?;
            let index = self.type_expr()?;
            self.expect(&TokenKind::RBracket)?;
            self.expect_kw(Keyword::Of)?;
            let element = self.type_expr()?;
            let span = start.to(element.span);
            return Ok(TypeExpr::new(
                TypeExprKind::Array {
                    index: Box::new(index),
                    element: Box::new(element),
                },
                span,
            ));
        }
        if self.eat_kw(Keyword::Record) {
            let mut fields = Vec::new();
            while !self.at_kw(Keyword::End) {
                let fstart = self.span();
                let names = self.ident_list()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                let span = fstart.to(self.prev_span());
                fields.push(FieldDecl { names, ty, span });
                if !self.eat(&TokenKind::Semi) {
                    break;
                }
            }
            self.expect_kw(Keyword::End)?;
            let span = start.to(self.prev_span());
            return Ok(TypeExpr::new(TypeExprKind::Record(fields), span));
        }
        if self.eat_kw(Keyword::Set) {
            self.expect_kw(Keyword::Of)?;
            let base = self.type_expr()?;
            let span = start.to(base.span);
            return Ok(TypeExpr::new(TypeExprKind::SetOf(Box::new(base)), span));
        }
        if self.at(&TokenKind::LParen) {
            // Enumeration: `(idle, busy, closed)`.
            self.bump();
            let names = self.ident_list()?;
            self.expect(&TokenKind::RParen)?;
            let span = start.to(self.prev_span());
            return Ok(TypeExpr::new(TypeExprKind::Enum(names), span));
        }

        // Subrange or named type.
        let lo = self.expression()?;
        if self.eat(&TokenKind::DotDot) {
            let hi = self.expression()?;
            let span = start.to(hi.span);
            return Ok(TypeExpr::new(
                TypeExprKind::Subrange(Box::new(lo), Box::new(hi)),
                span,
            ));
        }
        match lo.kind {
            ExprKind::Name(id) => {
                let span = id.span;
                Ok(TypeExpr::new(TypeExprKind::Named(id), span))
            }
            _ => Err(self.unexpected("a type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_specification;
    use estelle_ast::TypeExprKind;

    fn parse_type_of(src_type: &str) -> TypeExprKind {
        let src = format!("specification s; type t = {};  end.", src_type);
        let spec = parse_specification(&src).expect("parses");
        spec.body.types[0].ty.kind.clone()
    }

    #[test]
    fn named() {
        assert!(matches!(parse_type_of("integer"), TypeExprKind::Named(n) if n.is("integer")));
    }

    #[test]
    fn subrange_with_const_exprs() {
        assert!(matches!(
            parse_type_of("0..7"),
            TypeExprKind::Subrange(..)
        ));
        assert!(matches!(
            parse_type_of("-(3)..(max - 1)"),
            TypeExprKind::Subrange(..)
        ));
    }

    #[test]
    fn enumeration() {
        match parse_type_of("(closed, opening, open)") {
            TypeExprKind::Enum(names) => assert_eq!(names.len(), 3),
            other => panic!("expected enum, got {:?}", other),
        }
    }

    #[test]
    fn array_of_record() {
        match parse_type_of("array [0..3] of record a : integer; b : boolean end") {
            TypeExprKind::Array { element, .. } => {
                assert!(matches!(element.kind, TypeExprKind::Record(ref f) if f.len() == 2));
            }
            other => panic!("expected array, got {:?}", other),
        }
    }

    #[test]
    fn pointer_and_set() {
        assert!(matches!(parse_type_of("^cell"), TypeExprKind::Pointer(_)));
        assert!(matches!(parse_type_of("set of 0..7"), TypeExprKind::SetOf(_)));
    }
}
