//! Module bodies: declarations, routines, `initialize`, and transitions.

use super::Parser;
use crate::error::FrontendResult;
use crate::token::{Keyword, TokenKind};
use estelle_ast::*;

impl Parser {
    /// `body B for M; <parts> end;`
    pub(crate) fn module_body(&mut self) -> FrontendResult<ModuleBody> {
        let start = self.span();
        self.expect_kw(Keyword::Body)?;
        let name = self.expect_ident()?;
        self.expect_kw(Keyword::For)?;
        let for_module = self.expect_ident()?;
        self.expect(&TokenKind::Semi)?;

        let mut body = ModuleBody {
            name,
            for_module,
            consts: vec![],
            types: vec![],
            vars: vec![],
            states: vec![],
            statesets: vec![],
            routines: vec![],
            initialize: None,
            transitions: vec![],
            span: Span::DUMMY,
        };

        loop {
            if self.at_kw(Keyword::End) {
                break;
            } else if self.at_kw(Keyword::Const) {
                body.consts.extend(self.const_part()?);
            } else if self.at_kw(Keyword::Type) {
                body.types.extend(self.type_part()?);
            } else if self.at_kw(Keyword::Var) {
                body.vars.extend(self.var_part()?);
            } else if self.at_kw(Keyword::State) {
                let sstart = self.span();
                self.bump();
                let names = self.ident_list()?;
                self.expect(&TokenKind::Semi)?;
                let span = sstart.to(self.prev_span());
                body.states.push(StateDecl { names, span });
            } else if self.at_kw(Keyword::StateSet) {
                let sstart = self.span();
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                self.expect(&TokenKind::LBracket)?;
                let members = self.ident_list()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semi)?;
                let span = sstart.to(self.prev_span());
                body.statesets.push(StateSetDecl {
                    name,
                    members,
                    span,
                });
            } else if self.at_kw(Keyword::Procedure) || self.at_kw(Keyword::Function) {
                body.routines.push(self.routine()?);
            } else if self.at_kw(Keyword::Initialize) {
                let istart = self.span();
                self.bump();
                self.expect_kw(Keyword::To)?;
                let to = self.expect_ident()?;
                let block = self.block()?;
                self.eat(&TokenKind::Semi);
                let span = istart.to(self.prev_span());
                if body.initialize.is_some() {
                    return Err(crate::error::FrontendError::parse(
                        "duplicate `initialize` transition".to_string(),
                        span,
                    ));
                }
                body.initialize = Some(InitTrans { to, block, span });
            } else if self.at_kw(Keyword::Trans) {
                self.bump();
                // Transitions until the body's `end` or the next part.
                while self.at_kw(Keyword::From) {
                    body.transitions.push(self.transition()?);
                }
            } else {
                return Err(self.unexpected(
                    "`const`, `type`, `var`, `state`, `stateset`, `procedure`, \
                     `function`, `initialize`, `trans` or `end`",
                ));
            }
        }
        self.expect_kw(Keyword::End)?;
        self.expect(&TokenKind::Semi)?;
        body.span = start.to(self.prev_span());
        Ok(body)
    }

    /// `var a, b : T; c : U;`
    pub(crate) fn var_part(&mut self) -> FrontendResult<Vec<VarDecl>> {
        self.expect_kw(Keyword::Var)?;
        let mut out = Vec::new();
        loop {
            let start = self.span();
            let names = self.ident_list()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.type_expr()?;
            self.expect(&TokenKind::Semi)?;
            let span = start.to(self.prev_span());
            out.push(VarDecl { names, ty, span });
            // Another `ident ... :` group continues the var part.
            if !matches!(self.peek(), TokenKind::Ident(_)) {
                break;
            }
            if !matches!(self.peek_at(1), TokenKind::Colon | TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    /// Procedure or function declaration, possibly `primitive`.
    fn routine(&mut self) -> FrontendResult<RoutineDecl> {
        let start = self.span();
        let is_function = self.at_kw(Keyword::Function);
        self.bump();
        let name = self.expect_ident()?;

        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                let pstart = self.span();
                let by_ref = self.eat_kw(Keyword::Var);
                let names = self.ident_list()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                let span = pstart.to(self.prev_span());
                params.push(RoutineParam {
                    names,
                    ty,
                    by_ref,
                    span,
                });
                if !self.eat(&TokenKind::Semi) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let result = if is_function {
            self.expect(&TokenKind::Colon)?;
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;

        if self.eat_kw(Keyword::Primitive) {
            self.expect(&TokenKind::Semi)?;
            let span = start.to(self.prev_span());
            return Ok(RoutineDecl {
                name,
                params,
                result,
                consts: vec![],
                types: vec![],
                vars: vec![],
                body: None,
                span,
            });
        }

        let mut consts = Vec::new();
        let mut types = Vec::new();
        let mut vars = Vec::new();
        loop {
            if self.at_kw(Keyword::Const) {
                consts.extend(self.const_part()?);
            } else if self.at_kw(Keyword::Type) {
                types.extend(self.type_part()?);
            } else if self.at_kw(Keyword::Var) {
                vars.extend(self.var_part()?);
            } else {
                break;
            }
        }
        let body = self.block()?;
        self.eat(&TokenKind::Semi);
        let span = start.to(self.prev_span());
        Ok(RoutineDecl {
            name,
            params,
            result,
            consts,
            types,
            vars,
            body: Some(body),
            span,
        })
    }

    /// One transition declaration:
    /// `from S1, S2 to S3 when A.x provided e priority 1 any i : 0..3 do
    ///  name T1 : begin ... end;`
    fn transition(&mut self) -> FrontendResult<Transition> {
        let start = self.span();
        self.expect_kw(Keyword::From)?;
        let from = self.ident_list()?;
        self.expect_kw(Keyword::To)?;
        let to = if self.eat_kw(Keyword::Same) {
            ToClause::Same
        } else {
            ToClause::State(self.expect_ident()?)
        };

        let mut when = None;
        let mut provided = None;
        let mut priority = None;
        let mut delay = None;
        let mut any = Vec::new();
        let mut name = None;

        loop {
            if self.at_kw(Keyword::When) {
                let wstart = self.span();
                self.bump();
                let ip = self.expect_ident()?;
                self.expect(&TokenKind::Dot)?;
                let interaction = self.expect_ident()?;
                let span = wstart.to(self.prev_span());
                if when.replace(WhenClause {
                    ip,
                    interaction,
                    span,
                })
                .is_some()
                {
                    return Err(crate::error::FrontendError::parse(
                        "duplicate `when` clause".to_string(),
                        span,
                    ));
                }
            } else if self.eat_kw(Keyword::Provided) {
                provided = Some(self.expression()?);
            } else if self.eat_kw(Keyword::Priority) {
                priority = Some(self.expression()?);
            } else if self.at_kw(Keyword::Delay) {
                let dstart = self.span();
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let min = self.expression()?;
                let max = if self.eat(&TokenKind::Comma) {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen)?;
                let span = dstart.to(self.prev_span());
                delay = Some(DelayClause { min, max, span });
            } else if self.eat_kw(Keyword::Any) {
                let astart = self.span();
                let var = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                self.expect_kw(Keyword::Do)?;
                let span = astart.to(self.prev_span());
                any.push(AnyClause { var, ty, span });
            } else if self.eat_kw(Keyword::Name) {
                name = Some(self.expect_ident()?);
                self.expect(&TokenKind::Colon)?;
            } else {
                break;
            }
        }

        let block = self.block()?;
        self.eat(&TokenKind::Semi);
        let span = start.to(self.prev_span());
        Ok(Transition {
            from,
            to,
            when,
            provided,
            priority,
            delay,
            any,
            name,
            block,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_specification;
    use estelle_ast::{Specification, ToClause};

    fn parse(src: &str) -> Specification {
        parse_specification(src).expect("parses")
    }

    const ACK: &str = r#"
        specification ackspec;
        channel ChA(m, env); by env: x; by m: ack; end;
        channel ChB(m, env); by env: y; end;
        module M process;
            ip A : ChA(m);
            ip B : ChB(m);
        end;
        body MB for M;
            state S1, S2;
            initialize to S1 begin end;
            trans
            from S1 to S1 when A.x name T1: begin end;
            from S1 to S2 when A.x name T2: begin end;
            from S2 to S1 when B.y name T3: begin output A.ack; end;
        end;
        end.
    "#;

    #[test]
    fn paper_figure_1_ack_spec_parses() {
        let spec = parse(ACK);
        let (_, body) = spec.single_module().expect("single module");
        assert_eq!(body.transitions.len(), 3);
        assert!(body.transitions[0].name.as_ref().unwrap().is("t1"));
        assert!(body.transitions[2].when.as_ref().unwrap().ip.is("b"));
        assert_eq!(body.transitions[2].block.len(), 1);
    }

    #[test]
    fn transition_with_all_clauses() {
        let src = r#"
            specification s;
            channel C(a, b); by a: x; end;
            module M process; ip P : C(b); end;
            body MB for M;
                var n : integer;
                state S1, S2;
                initialize to S1 begin n := 0 end;
                trans
                from S1, S2 to same
                    when P.x
                    provided n < 10
                    priority 2
                    any k : 0..3 do
                    name T9 :
                begin n := n + k end;
            end;
            end.
        "#;
        let spec = parse(src);
        let t = &spec.body.bodies[0].transitions[0];
        assert_eq!(t.from.len(), 2);
        assert!(matches!(t.to, ToClause::Same));
        assert!(t.when.is_some());
        assert!(t.provided.is_some());
        assert!(t.priority.is_some());
        assert_eq!(t.any.len(), 1);
        assert!(t.name.as_ref().unwrap().is("t9"));
    }

    #[test]
    fn delay_clause_parses_for_later_rejection() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1;
                initialize to S1 begin end;
                trans
                from S1 to S1 delay(5, 10) begin end;
            end;
            end.
        "#;
        let spec = parse(src);
        assert!(spec.body.bodies[0].transitions[0].delay.is_some());
    }

    #[test]
    fn primitive_routine_parses_for_later_rejection() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                function crc(x : integer) : integer; primitive;
                state S1;
                initialize to S1 begin end;
            end;
            end.
        "#;
        let spec = parse(src);
        assert!(spec.body.bodies[0].routines[0].body.is_none());
    }

    #[test]
    fn routine_with_locals() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                var total : integer;
                procedure bump(var t : integer; amount : integer);
                    const step = 1;
                    var scratch : integer;
                begin
                    scratch := amount * step;
                    t := t + scratch
                end;
                state S1;
                initialize to S1 begin total := 0 end;
            end;
            end.
        "#;
        let spec = parse(src);
        let r = &spec.body.bodies[0].routines[0];
        assert_eq!(r.params.len(), 2);
        assert!(r.params[0].by_ref);
        assert!(!r.params[1].by_ref);
        assert_eq!(r.consts.len(), 1);
        assert_eq!(r.vars.len(), 1);
    }

    #[test]
    fn duplicate_initialize_rejected() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1;
                initialize to S1 begin end;
                initialize to S1 begin end;
            end;
            end.
        "#;
        assert!(parse_specification(src).is_err());
    }

    #[test]
    fn stateset_and_var_groups() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                var a, b : integer;
                    flag : boolean;
                state S1, S2, S3;
                stateset Busy = [S2, S3];
                initialize to S1 begin end;
            end;
            end.
        "#;
        let spec = parse(src);
        let b = &spec.body.bodies[0];
        assert_eq!(b.vars.len(), 2);
        assert_eq!(b.vars[0].names.len(), 2);
        assert_eq!(b.statesets[0].members.len(), 2);
    }
}
