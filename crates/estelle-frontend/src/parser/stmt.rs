//! Statement grammar: the Pascal subset plus Estelle's `output`.

use super::Parser;
use crate::error::FrontendResult;
use crate::token::{Keyword, TokenKind};
use estelle_ast::*;

impl Parser {
    /// `begin stmt; stmt; ... end` — the workhorse block parser.
    pub(crate) fn block(&mut self) -> FrontendResult<Vec<Stmt>> {
        self.expect_kw(Keyword::Begin)?;
        let stmts = self.stmt_seq(&[Keyword::End])?;
        self.expect_kw(Keyword::End)?;
        Ok(stmts)
    }

    /// A `;`-separated statement sequence ending at any of `terminators`
    /// (which are not consumed).
    fn stmt_seq(&mut self, terminators: &[Keyword]) -> FrontendResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            // Tolerate stray semicolons (empty statements).
            while self.eat(&TokenKind::Semi) {}
            if terminators.iter().any(|&k| self.at_kw(k)) {
                break;
            }
            stmts.push(self.statement()?);
            if !self.eat(&TokenKind::Semi) {
                // Without a separator the sequence must be over.
                if !terminators.iter().any(|&k| self.at_kw(k)) {
                    return Err(self.unexpected("`;` or the end of the block"));
                }
                break;
            }
        }
        Ok(stmts)
    }

    pub(crate) fn statement(&mut self) -> FrontendResult<Stmt> {
        self.descend()?;
        let result = self.statement_inner();
        self.ascend();
        result
    }

    fn statement_inner(&mut self) -> FrontendResult<Stmt> {
        let start = self.span();
        if self.at_kw(Keyword::Begin) {
            let stmts = self.block()?;
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(StmtKind::Compound(stmts), span));
        }
        if self.eat_kw(Keyword::If) {
            let cond = self.expression()?;
            self.expect_kw(Keyword::Then)?;
            let then_branch = Box::new(self.statement()?);
            // Leniency over ISO Pascal: tolerate `;` before `else`, which
            // our own pretty printer (and plenty of real-world Estelle)
            // produces.
            if self.at(&TokenKind::Semi)
                && matches!(self.peek_at(1), TokenKind::Keyword(Keyword::Else))
            {
                self.bump();
            }
            let else_branch = if self.eat_kw(Keyword::Else) {
                Some(Box::new(self.statement()?))
            } else {
                None
            };
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                },
                span,
            ));
        }
        if self.eat_kw(Keyword::While) {
            let cond = self.expression()?;
            self.expect_kw(Keyword::Do)?;
            let body = Box::new(self.statement()?);
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(StmtKind::While { cond, body }, span));
        }
        if self.eat_kw(Keyword::Repeat) {
            let body = self.stmt_seq(&[Keyword::Until])?;
            self.expect_kw(Keyword::Until)?;
            let cond = self.expression()?;
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(StmtKind::Repeat { body, cond }, span));
        }
        if self.eat_kw(Keyword::For) {
            let var = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            let from = self.expression()?;
            let dir = if self.eat_kw(Keyword::To) {
                ForDirection::Up
            } else if self.eat_kw(Keyword::DownTo) {
                ForDirection::Down
            } else {
                return Err(self.unexpected("`to` or `downto`"));
            };
            let to = self.expression()?;
            self.expect_kw(Keyword::Do)?;
            let body = Box::new(self.statement()?);
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(
                StmtKind::For {
                    var,
                    from,
                    dir,
                    to,
                    body,
                },
                span,
            ));
        }
        if self.eat_kw(Keyword::Case) {
            return self.case_stmt(start);
        }
        if self.eat_kw(Keyword::Output) {
            let ip = self.expect_ident()?;
            self.expect(&TokenKind::Dot)?;
            let interaction = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) {
                if !self.at(&TokenKind::RParen) {
                    args.push(self.expression()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.expression()?);
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(
                StmtKind::Output {
                    ip,
                    interaction,
                    args,
                },
                span,
            ));
        }
        if self.eat_kw(Keyword::New) {
            self.expect(&TokenKind::LParen)?;
            let target = self.postfix()?;
            self.expect(&TokenKind::RParen)?;
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(StmtKind::New(target), span));
        }
        if self.eat_kw(Keyword::Dispose) {
            self.expect(&TokenKind::LParen)?;
            let target = self.postfix()?;
            self.expect(&TokenKind::RParen)?;
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(StmtKind::Dispose(target), span));
        }

        // Assignment or procedure call: both start with a designator.
        let designator = self.postfix()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expression()?;
            let span = start.to(self.prev_span());
            return Ok(Stmt::new(
                StmtKind::Assign {
                    target: designator,
                    value,
                },
                span,
            ));
        }
        let span = designator.span;
        match designator.kind {
            ExprKind::Name(name) => Ok(Stmt::new(StmtKind::ProcCall { name, args: vec![] }, span)),
            ExprKind::Call(name, args) => {
                Ok(Stmt::new(StmtKind::ProcCall { name, args }, span))
            }
            _ => Err(self.unexpected("`:=` after assignment target")),
        }
    }

    /// `case e of l1, l2 : stmt; ... else stmts end`
    fn case_stmt(&mut self, start: Span) -> FrontendResult<Stmt> {
        let scrutinee = self.expression()?;
        self.expect_kw(Keyword::Of)?;
        let mut arms = Vec::new();
        let mut else_arm = None;
        loop {
            while self.eat(&TokenKind::Semi) {}
            if self.at_kw(Keyword::End) {
                break;
            }
            if self.eat_kw(Keyword::Else) {
                else_arm = Some(self.stmt_seq(&[Keyword::End])?);
                break;
            }
            let astart = self.span();
            let mut labels = vec![self.expression()?];
            while self.eat(&TokenKind::Comma) {
                labels.push(self.expression()?);
            }
            self.expect(&TokenKind::Colon)?;
            let body = self.statement()?;
            let span = astart.to(self.prev_span());
            arms.push(CaseArm { labels, body, span });
            if !self.eat(&TokenKind::Semi) {
                // After the last arm the `end` (or `else`) must follow.
                if !self.at_kw(Keyword::End) && !self.at_kw(Keyword::Else) {
                    return Err(self.unexpected("`;`, `else` or `end` after case arm"));
                }
            }
        }
        self.expect_kw(Keyword::End)?;
        let span = start.to(self.prev_span());
        Ok(Stmt::new(
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            },
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::lexer::tokenize;
    use crate::parser::Parser;
    use estelle_ast::{StmtKind, Stmt};

    fn parse_stmt(src: &str) -> Stmt {
        let tokens = tokenize(src).expect("lexes");
        let mut p = Parser::new(tokens);
        p.statement().expect("parses")
    }

    #[test]
    fn assignment() {
        let s = parse_stmt("buf[i] := x + 1");
        assert!(matches!(s.kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn if_then_else_binds_innermost() {
        let s = parse_stmt("if a then if b then x := 1 else x := 2");
        // The else belongs to the inner if (dangling-else rule).
        match s.kind {
            StmtKind::If {
                else_branch: outer_else,
                then_branch,
                ..
            } => {
                assert!(outer_else.is_none());
                assert!(matches!(
                    then_branch.kind,
                    StmtKind::If {
                        else_branch: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("expected if, got {:?}", other),
        }
    }

    #[test]
    fn while_and_repeat() {
        assert!(matches!(
            parse_stmt("while n > 0 do n := n - 1").kind,
            StmtKind::While { .. }
        ));
        assert!(matches!(
            parse_stmt("repeat n := n - 1; m := m + 1 until n = 0").kind,
            StmtKind::Repeat { ref body, .. } if body.len() == 2
        ));
    }

    #[test]
    fn for_up_and_down() {
        assert!(matches!(
            parse_stmt("for i := 1 to 10 do s := s + i").kind,
            StmtKind::For { .. }
        ));
        assert!(matches!(
            parse_stmt("for i := 10 downto 1 do s := s + i").kind,
            StmtKind::For { .. }
        ));
    }

    #[test]
    fn case_with_else() {
        let s = parse_stmt("case k of 1, 2 : x := 1; 3 : x := 2 else x := 0 end");
        match s.kind {
            StmtKind::Case { arms, else_arm, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].labels.len(), 2);
                assert!(else_arm.is_some());
            }
            other => panic!("expected case, got {:?}", other),
        }
    }

    #[test]
    fn output_with_and_without_args() {
        assert!(matches!(
            parse_stmt("output U.data(7, true)").kind,
            StmtKind::Output { ref args, .. } if args.len() == 2
        ));
        assert!(matches!(
            parse_stmt("output L.ack").kind,
            StmtKind::Output { ref args, .. } if args.is_empty()
        ));
    }

    #[test]
    fn new_and_dispose() {
        assert!(matches!(parse_stmt("new(head)").kind, StmtKind::New(_)));
        assert!(matches!(
            parse_stmt("dispose(p^.next)").kind,
            StmtKind::Dispose(_)
        ));
    }

    #[test]
    fn procedure_call_forms() {
        assert!(matches!(
            parse_stmt("reset").kind,
            StmtKind::ProcCall { ref args, .. } if args.is_empty()
        ));
        assert!(matches!(
            parse_stmt("push(q, 3)").kind,
            StmtKind::ProcCall { ref args, .. } if args.len() == 2
        ));
    }

    #[test]
    fn nested_compound() {
        let s = parse_stmt("begin a := 1; begin b := 2 end; c := 3 end");
        match s.kind {
            StmtKind::Compound(stmts) => assert_eq!(stmts.len(), 3),
            other => panic!("expected compound, got {:?}", other),
        }
    }

    #[test]
    fn field_target_without_assign_is_error() {
        let tokens = tokenize("a.b").unwrap();
        let mut p = Parser::new(tokens);
        assert!(p.statement().is_err());
    }
}
