//! Recursive-descent parser for the Estelle subset.
//!
//! Entry point: [`parse_specification`]. The grammar follows ISO 9074's
//! shape for the constructs Tango supports, with one documented
//! simplification: `channel` declarations are terminated with an explicit
//! `end;` (the pretty printer emits the same form, so trees round-trip).
//!
//! Submodules split the grammar by area: `body` (module bodies,
//! routines, transitions), `stmt` (the Pascal statement sublanguage),
//! `expr` (expressions with Pascal's four precedence levels) and `ty`
//! (type expressions).

mod body;
mod expr;
mod stmt;
mod ty;

use crate::error::{FrontendError, FrontendResult};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};
use estelle_ast::*;

/// Parse a complete specification from source text.
pub fn parse_specification(source: &str) -> FrontendResult<Specification> {
    let tokens = tokenize(source)?;
    let mut p = Parser::new(tokens);
    let spec = p.specification()?;
    p.expect_eof()?;
    Ok(spec)
}

/// Parse a single expression (exposed for tests and the trace tooling).
pub fn parse_expression(source: &str) -> FrontendResult<Expr> {
    let tokens = tokenize(source)?;
    let mut p = Parser::new(tokens);
    let e = p.expression()?;
    p.expect_eof()?;
    Ok(e)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current recursion depth across expressions, statements and types;
    /// bounded so hostile inputs error instead of overflowing the stack.
    depth: usize,
}

/// Maximum combined nesting depth of expressions/statements/types. Each
/// Estelle level costs several deep Rust frames in a recursive-descent
/// parser; 64 stays comfortably within a 2 MiB test-thread stack while
/// being far beyond what hand-written specifications use.
pub(crate) const MAX_NESTING: usize = 64;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    /// Enter one nesting level, erroring out beyond [`MAX_NESTING`].
    pub(crate) fn descend(&mut self) -> FrontendResult<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(FrontendError::parse(
                format!("nesting deeper than {} levels", MAX_NESTING),
                self.span(),
            ));
        }
        Ok(())
    }

    pub(crate) fn ascend(&mut self) {
        self.depth -= 1;
    }

    // ------------------------------------------------------------------
    // cursor primitives
    // ------------------------------------------------------------------

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    pub(crate) fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    pub(crate) fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> FrontendResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: Keyword) -> FrontendResult<Token> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("keyword `{}`", kw.as_str())))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> FrontendResult<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(text) => {
                let span = self.span();
                self.bump();
                Ok(Ident::new(text, span))
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn expect_eof(&mut self) -> FrontendResult<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    pub(crate) fn unexpected(&self, expected: &str) -> FrontendError {
        FrontendError::parse(
            format!("expected {}, found {}", expected, self.peek().describe()),
            self.span(),
        )
    }

    /// `a, b, c` — one or more identifiers separated by commas.
    pub(crate) fn ident_list(&mut self) -> FrontendResult<Vec<Ident>> {
        let mut out = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // specification level
    // ------------------------------------------------------------------

    fn specification(&mut self) -> FrontendResult<Specification> {
        let start = self.span();
        self.expect_kw(Keyword::Specification)?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Semi)?;

        // Optional `default individual queue;` / `timescale ...;` headers —
        // accepted and ignored (Tango assumes individual queues; no time).
        loop {
            if self.eat_kw(Keyword::Default) {
                if !self.eat_kw(Keyword::Individual) {
                    self.eat_kw(Keyword::Common);
                }
                self.eat_kw(Keyword::Queue);
                self.expect(&TokenKind::Semi)?;
            } else if self.eat_kw(Keyword::Timescale) {
                self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
            } else {
                break;
            }
        }

        let mut body = SpecificationBody {
            consts: vec![],
            types: vec![],
            channels: vec![],
            modules: vec![],
            bodies: vec![],
        };

        loop {
            if self.at_kw(Keyword::End) {
                break;
            }
            if self.at_kw(Keyword::Const) {
                body.consts.extend(self.const_part()?);
            } else if self.at_kw(Keyword::Type) {
                body.types.extend(self.type_part()?);
            } else if self.at_kw(Keyword::Channel) {
                body.channels.push(self.channel_decl()?);
            } else if self.at_kw(Keyword::Module) {
                body.modules.push(self.module_header()?);
            } else if self.at_kw(Keyword::Body) {
                body.bodies.push(self.module_body()?);
            } else {
                return Err(self.unexpected(
                    "`const`, `type`, `channel`, `module`, `body` or `end`",
                ));
            }
        }
        self.expect_kw(Keyword::End)?;
        self.expect(&TokenKind::Dot)?;
        let span = start.to(self.prev_span());

        Ok(Specification { name, body, span })
    }

    /// `const a = 1; b = 2;` — runs until a token that cannot start another
    /// constant definition.
    pub(crate) fn const_part(&mut self) -> FrontendResult<Vec<ConstDecl>> {
        self.expect_kw(Keyword::Const)?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.expression()?;
            self.expect(&TokenKind::Semi)?;
            let span = name.span.to(self.prev_span());
            out.push(ConstDecl { name, value, span });
            if !matches!(self.peek(), TokenKind::Ident(_)) {
                break;
            }
            // `ident =` continues the const part; anything else ends it.
            if !matches!(self.peek_at(1), TokenKind::Eq) {
                break;
            }
        }
        Ok(out)
    }

    /// `type t = ...; u = ...;`
    pub(crate) fn type_part(&mut self) -> FrontendResult<Vec<TypeDecl>> {
        self.expect_kw(Keyword::Type)?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let ty = self.type_expr()?;
            self.expect(&TokenKind::Semi)?;
            let span = name.span.to(self.prev_span());
            out.push(TypeDecl { name, ty, span });
            if !matches!(self.peek(), TokenKind::Ident(_))
                || !matches!(self.peek_at(1), TokenKind::Eq)
            {
                break;
            }
        }
        Ok(out)
    }

    /// `channel Ch(r1, r2); by r1: i1; i2(n: integer); by r2: i3; end;`
    fn channel_decl(&mut self) -> FrontendResult<ChannelDecl> {
        let start = self.span();
        self.expect_kw(Keyword::Channel)?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let roles = self.ident_list()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;

        let mut directions = Vec::new();
        while self.at_kw(Keyword::By) {
            let dstart = self.span();
            self.bump();
            let roles = self.ident_list()?;
            self.expect(&TokenKind::Colon)?;
            let mut interactions = Vec::new();
            // Interactions until the next `by` or `end`.
            while matches!(self.peek(), TokenKind::Ident(_)) {
                let iname = self.expect_ident()?;
                let mut params = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    loop {
                        let pnames = self.ident_list()?;
                        self.expect(&TokenKind::Colon)?;
                        let ty = self.type_expr()?;
                        for pn in pnames {
                            let span = pn.span;
                            params.push(ParamDecl {
                                name: pn,
                                ty: ty.clone(),
                                span,
                            });
                        }
                        if !self.eat(&TokenKind::Semi) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                self.expect(&TokenKind::Semi)?;
                let span = iname.span.to(self.prev_span());
                interactions.push(InteractionDecl {
                    name: iname,
                    params,
                    span,
                });
            }
            let span = dstart.to(self.prev_span());
            directions.push(ChannelDirection {
                roles,
                interactions,
                span,
            });
        }
        self.expect_kw(Keyword::End)?;
        self.expect(&TokenKind::Semi)?;
        let span = start.to(self.prev_span());
        Ok(ChannelDecl {
            name,
            roles,
            directions,
            span,
        })
    }

    /// `module M systemprocess; ip A : Ch(role) individual queue; end;`
    fn module_header(&mut self) -> FrontendResult<ModuleHeader> {
        let start = self.span();
        self.expect_kw(Keyword::Module)?;
        let name = self.expect_ident()?;
        let class = if self.eat_kw(Keyword::SystemProcess) {
            ModuleClass::SystemProcess
        } else if self.eat_kw(Keyword::Process) {
            ModuleClass::Process
        } else if self.eat_kw(Keyword::SystemActivity) {
            ModuleClass::SystemActivity
        } else if self.eat_kw(Keyword::Activity) {
            ModuleClass::Activity
        } else {
            ModuleClass::Process
        };
        self.expect(&TokenKind::Semi)?;

        let mut ips = Vec::new();
        while self.at_kw(Keyword::Ip) {
            let istart = self.span();
            self.bump();
            // `ip A, B : Ch(role);` declares several points at once.
            let names = self.ident_list()?;
            self.expect(&TokenKind::Colon)?;
            let channel = self.expect_ident()?;
            self.expect(&TokenKind::LParen)?;
            let role = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            let queue_kind = if self.eat_kw(Keyword::Individual) {
                self.expect_kw(Keyword::Queue)?;
                QueueKind::Individual
            } else if self.eat_kw(Keyword::Common) {
                self.expect_kw(Keyword::Queue)?;
                QueueKind::Common
            } else {
                QueueKind::Individual
            };
            self.expect(&TokenKind::Semi)?;
            let span = istart.to(self.prev_span());
            for n in names {
                ips.push(IpDecl {
                    name: n,
                    channel: channel.clone(),
                    role: role.clone(),
                    queue_kind,
                    span,
                });
            }
        }
        self.expect_kw(Keyword::End)?;
        self.expect(&TokenKind::Semi)?;
        let span = start.to(self.prev_span());
        Ok(ModuleHeader {
            name,
            class,
            ips,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_specification() {
        let src = "specification s; end.";
        let spec = parse_specification(src).expect("parses");
        assert!(spec.name.is("s"));
        assert!(spec.body.modules.is_empty());
    }

    #[test]
    fn specification_header_options_ignored() {
        let src = "specification s; default individual queue; timescale seconds; end.";
        assert!(parse_specification(src).is_ok());
    }

    #[test]
    fn channel_with_params() {
        let src = "specification s;\
                   channel Ch(user, provider);\
                     by user: req; data(n : integer; f : boolean);\
                     by provider: conf;\
                   end;\
                   end.";
        let spec = parse_specification(src).unwrap();
        let ch = &spec.body.channels[0];
        assert!(ch.name.is("ch"));
        assert_eq!(ch.roles.len(), 2);
        assert_eq!(ch.directions.len(), 2);
        assert_eq!(ch.directions[0].interactions.len(), 2);
        assert_eq!(ch.directions[0].interactions[1].params.len(), 2);
    }

    #[test]
    fn module_header_with_ips() {
        let src = "specification s;\
                   channel Ch(a, b); by a: x; end;\
                   module M systemprocess;\
                     ip U : Ch(a) individual queue;\
                     ip L1, L2 : Ch(b);\
                   end;\
                   end.";
        let spec = parse_specification(src).unwrap();
        let m = &spec.body.modules[0];
        assert_eq!(m.class, ModuleClass::SystemProcess);
        assert_eq!(m.ips.len(), 3);
        assert!(m.ips[2].name.is("l2"));
        assert!(m.ips[2].role.is("b"));
    }

    #[test]
    fn const_and_type_parts() {
        let src = "specification s;\
                   const max = 7; min = 0;\
                   type seq = 0..7; flag = boolean;\
                   end.";
        let spec = parse_specification(src).unwrap();
        assert_eq!(spec.body.consts.len(), 2);
        assert_eq!(spec.body.types.len(), 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_specification("specification s; end. extra").is_err());
    }

    #[test]
    fn missing_dot_rejected() {
        assert!(parse_specification("specification s; end").is_err());
    }
}
