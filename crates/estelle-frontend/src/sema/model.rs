//! The analyzed module — the checked static model handed to the runtime.

use crate::sema::types::{TypeId, TypeTable};
use estelle_ast::{Expr, Span, Stmt};
use std::collections::HashMap;

/// Index of an interaction point in [`AnalyzedModule::ips`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IpId(pub u32);

/// Index of a module state in [`AnalyzedModule::states`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// Index of a module-level variable in [`AnalyzedModule::vars`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarId(pub u32);

/// Index of a routine in [`AnalyzedModule::routines`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RoutineId(pub u32);

/// A compile-time constant value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConstValue {
    Int(i64),
    Bool(bool),
    /// An enum literal: its type and ordinal value.
    Enum(TypeId, i64),
}

impl ConstValue {
    /// The ordinal of the constant, for contexts that need one (subrange
    /// bounds, case labels, `any` domains).
    pub fn ordinal(&self) -> i64 {
        match self {
            ConstValue::Int(v) => *v,
            ConstValue::Bool(b) => *b as i64,
            ConstValue::Enum(_, v) => *v,
        }
    }
}

/// The signature of one interaction on a channel direction.
#[derive(Clone, Debug)]
pub struct InteractionSig {
    pub name: String,
    /// Parameter names (lower-cased) and their types.
    pub params: Vec<(String, TypeId)>,
}

/// One interaction point with the interactions it can receive and send.
#[derive(Clone, Debug)]
pub struct IpInfo {
    pub name: String,
    /// Interactions this module may *receive* at this point (sent by the
    /// peer role of the channel).
    pub inputs: Vec<InteractionSig>,
    /// Interactions this module may *send* through this point.
    pub outputs: Vec<InteractionSig>,
}

impl IpInfo {
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|i| i.name == name)
    }
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|i| i.name == name)
    }
}

/// A module-level variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    pub name: String,
    pub ty: TypeId,
}

/// A checked procedure or function.
#[derive(Clone, Debug)]
pub struct RoutineInfo {
    pub name: String,
    pub params: Vec<ParamSig>,
    /// `Some` for functions.
    pub result: Option<TypeId>,
    pub consts: HashMap<String, ConstValue>,
    pub locals: Vec<(String, TypeId)>,
    pub body: Vec<Stmt>,
}

/// A routine formal parameter.
#[derive(Clone, Debug)]
pub struct ParamSig {
    pub name: String,
    pub ty: TypeId,
    pub by_ref: bool,
}

/// The checked `initialize` transition.
#[derive(Clone, Debug)]
pub struct InitInfo {
    pub to: StateId,
    pub block: Vec<Stmt>,
}

/// One checked transition declaration (before `any`/state-list expansion,
/// which the runtime compiler performs).
#[derive(Clone, Debug)]
pub struct TransitionInfo {
    /// Declared `name` or a synthesized `t#<index>`.
    pub name: String,
    pub from: Vec<StateId>,
    /// `None` encodes `to same`.
    pub to: Option<StateId>,
    /// Input clause: interaction point and index into that IP's `inputs`.
    pub when: Option<(IpId, usize)>,
    pub provided: Option<Expr>,
    /// Estelle priority: smaller value fires preferentially; transitions
    /// without a clause get the lowest priority.
    pub priority: u32,
    /// `any` replication variables with finite ordinal domains.
    pub any: Vec<(String, TypeId)>,
    pub block: Vec<Stmt>,
    pub span: Span,
}

/// The lowest priority class, assigned to transitions without a `priority`
/// clause.
pub const DEFAULT_PRIORITY: u32 = u32::MAX;

/// A fully analyzed single-module specification: Tango's input model.
#[derive(Clone, Debug)]
pub struct AnalyzedModule {
    pub spec_name: String,
    pub module_name: String,
    pub types: TypeTable,
    /// Module- and specification-level constants (lower-cased names).
    pub consts: HashMap<String, ConstValue>,
    /// Enum literal table: literal name → (enum type, ordinal). Built from
    /// every enum type in scope; Pascal requires literal names be unique.
    pub enum_literals: HashMap<String, (TypeId, i64)>,
    pub ips: Vec<IpInfo>,
    pub ip_index: HashMap<String, IpId>,
    pub states: Vec<String>,
    pub state_index: HashMap<String, StateId>,
    pub statesets: HashMap<String, Vec<StateId>>,
    pub vars: Vec<VarInfo>,
    pub var_index: HashMap<String, VarId>,
    pub routines: Vec<RoutineInfo>,
    pub routine_index: HashMap<String, RoutineId>,
    pub initialize: InitInfo,
    pub transitions: Vec<TransitionInfo>,
    /// Non-fatal findings (non-progress cycles, unreachable states, …).
    pub warnings: Vec<String>,
}

impl AnalyzedModule {
    pub fn ip(&self, id: IpId) -> &IpInfo {
        &self.ips[id.0 as usize]
    }

    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    pub fn routine(&self, id: RoutineId) -> &RoutineInfo {
        &self.routines[id.0 as usize]
    }

    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.0 as usize]
    }

    pub fn lookup_ip(&self, name: &str) -> Option<IpId> {
        self.ip_index.get(&name.to_ascii_lowercase()).copied()
    }

    pub fn lookup_state(&self, name: &str) -> Option<StateId> {
        self.state_index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Count of *declared* transitions (the paper's "transition
    /// declarations"); the runtime's compiled count after state-list and
    /// `any` expansion is usually larger.
    pub fn declared_transition_count(&self) -> usize {
        self.transitions.len()
    }
}
