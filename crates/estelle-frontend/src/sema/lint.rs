//! Lints: non-fatal findings recorded as warnings on the analyzed module.
//!
//! The paper (§2.1) requires the trace-analysis module to be free of
//! *non-progress cycles* — sequences of transitions which consume no input,
//! produce no output and return to the same FSM state — because they yield
//! search trees of infinite depth under DFS. We detect them conservatively
//! (any cycle of spontaneous, output-free transitions, ignoring `provided`
//! guards) and warn rather than reject, since a guard may in fact break the
//! cycle at runtime.

use crate::sema::Analyzer;
use estelle_ast::{Stmt, StmtKind};

impl Analyzer {
    pub(crate) fn lint(&mut self) {
        self.lint_non_progress_cycles();
        self.lint_unreachable_states();
    }

    fn lint_non_progress_cycles(&mut self) {
        let n = self.states.len();
        // Adjacency over spontaneous, output-free transitions.
        let mut adj = vec![Vec::new(); n];
        for t in &self.transitions {
            if t.when.is_some() || block_outputs(&t.block) {
                continue;
            }
            for &from in &t.from {
                match t.to {
                    Some(to) => adj[from.0 as usize].push(to.0 as usize),
                    None => adj[from.0 as usize].push(from.0 as usize),
                }
            }
        }
        // Cycle detection by coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        fn dfs(v: usize, adj: &[Vec<usize>], color: &mut [Color]) -> bool {
            color[v] = Color::Gray;
            for &w in &adj[v] {
                match color[w] {
                    Color::Gray => return true,
                    Color::White => {
                        if dfs(w, adj, color) {
                            return true;
                        }
                    }
                    Color::Black => {}
                }
            }
            color[v] = Color::Black;
            false
        }
        for v in 0..n {
            if color[v] == Color::White && dfs(v, &adj, &mut color) {
                self.warnings.push(format!(
                    "possible non-progress cycle through state `{}`: spontaneous \
                     transitions without outputs can foil depth-first search",
                    self.states[v]
                ));
                return;
            }
        }
    }

    fn lint_unreachable_states(&mut self) {
        let n = self.states.len();
        let Some(init) = self.initialize.as_ref().map(|i| i.to) else {
            return;
        };
        let mut adj = vec![Vec::new(); n];
        for t in &self.transitions {
            for &from in &t.from {
                if let Some(to) = t.to {
                    adj[from.0 as usize].push(to.0 as usize);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![init.0 as usize];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut seen[v], true) {
                continue;
            }
            stack.extend(adj[v].iter().copied());
        }
        for (i, s) in seen.iter().enumerate() {
            if !s {
                self.warnings.push(format!(
                    "state `{}` is unreachable from the initial state",
                    self.states[i]
                ));
            }
        }
    }

}

/// True if the statement tree contains an `output`.
fn block_outputs(block: &[Stmt]) -> bool {
    fn go(s: &Stmt) -> bool {
        match &s.kind {
            StmtKind::Output { .. } => true,
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => go(then_branch) || else_branch.as_deref().is_some_and(go),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => go(body),
            StmtKind::Repeat { body, .. } => body.iter().any(go),
            StmtKind::Case { arms, else_arm, .. } => {
                arms.iter().any(|a| go(&a.body))
                    || else_arm.as_ref().is_some_and(|b| b.iter().any(go))
            }
            StmtKind::Compound(stmts) => stmts.iter().any(go),
            _ => false,
        }
    }
    block.iter().any(go)
}

#[cfg(test)]
mod tests {
    use crate::sema::analyze;

    #[test]
    fn non_progress_cycle_warned() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1, S2;
                initialize to S1 begin end;
                trans
                from S1 to S2 begin end;
                from S2 to S1 begin end;
            end;
            end.
        "#;
        let m = analyze(src).unwrap();
        assert!(m
            .warnings
            .iter()
            .any(|w| w.contains("non-progress cycle")));
    }

    #[test]
    fn output_breaks_the_cycle() {
        let src = r#"
            specification s;
            channel C(a, b); by b: tick; end;
            module M process; ip P : C(b); end;
            body MB for M;
                state S1, S2;
                initialize to S1 begin end;
                trans
                from S1 to S2 begin output P.tick end;
                from S2 to S1 begin output P.tick end;
            end;
            end.
        "#;
        let m = analyze(src).unwrap();
        assert!(!m.warnings.iter().any(|w| w.contains("non-progress")));
    }

    #[test]
    fn unreachable_state_warned() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1, S2, Island;
                initialize to S1 begin end;
                trans
                from S1 to S2 begin end;
            end;
            end.
        "#;
        let m = analyze(src).unwrap();
        assert!(m.warnings.iter().any(|w| w.contains("Island")));
    }
}
