//! Semantic analysis.
//!
//! Checks a parsed [`Specification`] against Tango's input requirements
//! (paper §2.1) and produces the [`AnalyzedModule`] consumed by the
//! runtime compiler:
//!
//! * exactly one module header with a fully defined body;
//! * `delay` clauses rejected (Tango does not track time);
//! * `primitive` procedures/functions rejected (no external code);
//! * all names resolved: types, constants (folded), channels, interaction
//!   points, states, statesets, variables, routines;
//! * transition clauses checked: `when` against the channel definition,
//!   `provided` must be boolean, `priority` a non-negative constant,
//!   `any` domains finite ordinals;
//! * every statement and expression type-checked;
//! * lints: non-progress cycles (which would foil depth-first search),
//!   unreachable states.

mod check;
mod lint;
pub mod model;
pub mod types;

pub use model::*;
pub use types::{Type, TypeId, TypeTable, TY_BOOLEAN, TY_INTEGER};

use crate::error::{FrontendError, FrontendResult};
use crate::parser::parse_specification;
use check::Scope;
use estelle_ast::*;
use std::collections::HashMap;

/// Knobs for semantic analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemaOptions {
    /// Skip the non-progress-cycle and reachability lints.
    pub skip_lints: bool,
}

/// Parse and analyze a specification in one step.
pub fn analyze(source: &str) -> FrontendResult<AnalyzedModule> {
    let spec = parse_specification(source)?;
    analyze_spec(&spec, SemaOptions::default())
}

/// Analyze an already parsed specification.
pub fn analyze_spec(spec: &Specification, opts: SemaOptions) -> FrontendResult<AnalyzedModule> {
    let mut a = Analyzer::new(spec.name.text.clone());
    a.run(spec, opts)?;
    Ok(a.finish())
}

/// Limits that keep generated state finite and small enough to search.
const MAX_SET_SIZE: i64 = 64;
const MAX_ARRAY_SIZE: i64 = 1 << 20;
const MAX_ANY_DOMAIN: i64 = 256;

pub(crate) struct Analyzer {
    spec_name: String,
    module_name: String,
    pub(crate) types: TypeTable,
    /// Named user types, lower-cased.
    type_names: HashMap<String, TypeId>,
    pub(crate) consts: HashMap<String, ConstValue>,
    pub(crate) enum_literals: HashMap<String, (TypeId, i64)>,
    channels: HashMap<String, ChannelInfo>,
    pub(crate) ips: Vec<IpInfo>,
    pub(crate) ip_index: HashMap<String, IpId>,
    pub(crate) states: Vec<String>,
    pub(crate) state_index: HashMap<String, StateId>,
    pub(crate) statesets: HashMap<String, Vec<StateId>>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) var_index: HashMap<String, VarId>,
    pub(crate) routines: Vec<RoutineInfo>,
    pub(crate) routine_index: HashMap<String, RoutineId>,
    initialize: Option<InitInfo>,
    pub(crate) transitions: Vec<TransitionInfo>,
    pub(crate) warnings: Vec<String>,
}

/// A channel's interactions grouped by sending role.
struct ChannelInfo {
    roles: Vec<String>,
    /// (sending roles, interaction signature)
    interactions: Vec<(Vec<String>, InteractionSig)>,
}

impl Analyzer {
    fn new(spec_name: String) -> Self {
        Analyzer {
            spec_name,
            module_name: String::new(),
            types: TypeTable::new(),
            type_names: HashMap::from([
                ("integer".to_string(), TY_INTEGER),
                ("boolean".to_string(), TY_BOOLEAN),
            ]),
            consts: HashMap::new(),
            enum_literals: HashMap::new(),
            channels: HashMap::new(),
            ips: Vec::new(),
            ip_index: HashMap::new(),
            states: Vec::new(),
            state_index: HashMap::new(),
            statesets: HashMap::new(),
            vars: Vec::new(),
            var_index: HashMap::new(),
            routines: Vec::new(),
            routine_index: HashMap::new(),
            initialize: None,
            transitions: Vec::new(),
            warnings: Vec::new(),
        }
    }

    fn run(&mut self, spec: &Specification, opts: SemaOptions) -> FrontendResult<()> {
        // Tango's input requirement: a single-module specification.
        if spec.body.modules.len() != 1 || spec.body.bodies.len() != 1 {
            return Err(FrontendError::sema(
                format!(
                    "Tango requires a single-module specification with one body; \
                     found {} module header(s) and {} body(ies)",
                    spec.body.modules.len(),
                    spec.body.bodies.len()
                ),
                spec.span,
            ));
        }
        let header = &spec.body.modules[0];
        let body = &spec.body.bodies[0];
        if body.for_module != header.name {
            return Err(FrontendError::sema(
                format!(
                    "body `{}` is for module `{}`, but the declared module is `{}`",
                    body.name, body.for_module, header.name
                ),
                body.span,
            ));
        }
        self.module_name = header.name.text.clone();

        // Specification-level declarations.
        self.type_section(&spec.body.types)?;
        self.const_section(&spec.body.consts)?;
        for ch in &spec.body.channels {
            self.channel(ch)?;
        }
        for ip in &header.ips {
            self.ip(ip)?;
        }

        // Module body declarations.
        self.type_section(&body.types)?;
        self.const_section(&body.consts)?;
        for s in &body.states {
            for n in &s.names {
                if self
                    .state_index
                    .insert(n.key().to_string(), StateId(self.states.len() as u32))
                    .is_some()
                {
                    return Err(FrontendError::sema(
                        format!("duplicate state `{}`", n),
                        n.span,
                    ));
                }
                self.states.push(n.text.clone());
            }
        }
        if self.states.is_empty() {
            return Err(FrontendError::sema(
                "module body declares no states".to_string(),
                body.span,
            ));
        }
        for ss in &body.statesets {
            let mut members = Vec::new();
            for m in &ss.members {
                let id = self.state_index.get(m.key()).copied().ok_or_else(|| {
                    FrontendError::sema(format!("unknown state `{}` in stateset", m), m.span)
                })?;
                members.push(id);
            }
            if self
                .statesets
                .insert(ss.name.key().to_string(), members)
                .is_some()
            {
                return Err(FrontendError::sema(
                    format!("duplicate stateset `{}`", ss.name),
                    ss.name.span,
                ));
            }
        }
        for v in &body.vars {
            let ty = self.lower_type(&v.ty)?;
            for n in &v.names {
                if self
                    .var_index
                    .insert(n.key().to_string(), VarId(self.vars.len() as u32))
                    .is_some()
                {
                    return Err(FrontendError::sema(
                        format!("duplicate variable `{}`", n),
                        n.span,
                    ));
                }
                self.vars.push(VarInfo {
                    name: n.text.clone(),
                    ty,
                });
            }
        }
        for r in &body.routines {
            self.routine(r)?;
        }

        // Initialize transition.
        let init = body.initialize.as_ref().ok_or_else(|| {
            FrontendError::sema(
                "module body has no `initialize` transition".to_string(),
                body.span,
            )
        })?;
        let to = self.resolve_state(&init.to)?;
        let scope = Scope::empty();
        for s in &init.block {
            self.check_stmt(&scope, s)?;
        }
        self.initialize = Some(InitInfo {
            to,
            block: init.block.clone(),
        });

        // Transitions.
        for (i, t) in body.transitions.iter().enumerate() {
            let info = self.transition(i, t)?;
            self.transitions.push(info);
        }

        if self.types.has_unresolved() {
            return Err(FrontendError::sema(
                "a forward-referenced pointer type was never declared".to_string(),
                body.span,
            ));
        }

        if !opts.skip_lints {
            self.lint();
        }
        Ok(())
    }

    fn finish(self) -> AnalyzedModule {
        AnalyzedModule {
            spec_name: self.spec_name,
            module_name: self.module_name,
            types: self.types,
            consts: self.consts,
            enum_literals: self.enum_literals,
            ips: self.ips,
            ip_index: self.ip_index,
            states: self.states,
            state_index: self.state_index,
            statesets: self.statesets,
            vars: self.vars,
            var_index: self.var_index,
            routines: self.routines,
            routine_index: self.routine_index,
            initialize: self.initialize.expect("run() sets initialize"),
            transitions: self.transitions,
            warnings: self.warnings,
        }
    }

    // ------------------------------------------------------------------
    // declaration lowering
    // ------------------------------------------------------------------

    /// Process one `type` section with support for forward pointer
    /// references within the section (`cell = record next : ^cell ... `).
    fn type_section(&mut self, decls: &[TypeDecl]) -> FrontendResult<()> {
        // Pre-register all names in the section.
        let mut reserved = Vec::new();
        for d in decls {
            if self.type_names.contains_key(d.name.key()) {
                return Err(FrontendError::sema(
                    format!("duplicate type `{}`", d.name),
                    d.name.span,
                ));
            }
            let id = self.types.reserve();
            self.type_names.insert(d.name.key().to_string(), id);
            reserved.push(id);
        }
        for (d, id) in decls.iter().zip(reserved) {
            let lowered = self.lower_type(&d.ty)?;
            // The reserved slot is the canonical id for this name: copy the
            // lowered structure into it so recursive references (`^cell`
            // inside `cell`) and later uses of the name agree. Enum
            // literals registered during lowering are re-pointed to it.
            let ty = self.types.get(lowered).clone();
            self.types.define(id, ty);
            for (_, entry) in self.enum_literals.iter_mut() {
                if entry.0 == lowered {
                    entry.0 = id;
                }
            }
        }
        Ok(())
    }

    fn const_section(&mut self, decls: &[ConstDecl]) -> FrontendResult<()> {
        for d in decls {
            let scope = Scope::empty();
            let value = self.fold_const(&scope, &d.value)?;
            if self.consts.insert(d.name.key().to_string(), value).is_some() {
                return Err(FrontendError::sema(
                    format!("duplicate constant `{}`", d.name),
                    d.name.span,
                ));
            }
        }
        Ok(())
    }

    /// Lower a syntactic type expression to a semantic type id.
    pub(crate) fn lower_type(&mut self, ty: &TypeExpr) -> FrontendResult<TypeId> {
        match &ty.kind {
            TypeExprKind::Named(n) => self.type_names.get(n.key()).copied().ok_or_else(|| {
                FrontendError::sema(format!("unknown type `{}`", n), n.span)
            }),
            TypeExprKind::Enum(names) => {
                let literals: Vec<String> = names.iter().map(|n| n.text.clone()).collect();
                let id = self.types.intern(Type::Enum { literals });
                for (ord, n) in names.iter().enumerate() {
                    if self
                        .enum_literals
                        .insert(n.key().to_string(), (id, ord as i64))
                        .is_some()
                    {
                        return Err(FrontendError::sema(
                            format!("duplicate enum literal `{}`", n),
                            n.span,
                        ));
                    }
                }
                Ok(id)
            }
            TypeExprKind::Subrange(lo, hi) => {
                let scope = Scope::empty();
                let lo_v = self.fold_const(&scope, lo)?;
                let hi_v = self.fold_const(&scope, hi)?;
                let base = match (lo_v, hi_v) {
                    (ConstValue::Int(_), ConstValue::Int(_)) => TY_INTEGER,
                    (ConstValue::Enum(t1, _), ConstValue::Enum(t2, _)) if t1 == t2 => t1,
                    (ConstValue::Bool(_), ConstValue::Bool(_)) => TY_BOOLEAN,
                    _ => {
                        return Err(FrontendError::sema(
                            "subrange bounds must be constants of the same ordinal type"
                                .to_string(),
                            ty.span,
                        ))
                    }
                };
                let (lo_o, hi_o) = (lo_v.ordinal(), hi_v.ordinal());
                if lo_o > hi_o {
                    return Err(FrontendError::sema(
                        format!("empty subrange {}..{}", lo_o, hi_o),
                        ty.span,
                    ));
                }
                Ok(self.types.intern(Type::Subrange {
                    base,
                    lo: lo_o,
                    hi: hi_o,
                }))
            }
            TypeExprKind::Array { index, element } => {
                let index_id = self.lower_type(index)?;
                let (lo, hi) = self.types.ordinal_range(index_id).ok_or_else(|| {
                    FrontendError::sema(
                        "array index type must be a finite ordinal".to_string(),
                        index.span,
                    )
                })?;
                if hi - lo + 1 > MAX_ARRAY_SIZE {
                    return Err(FrontendError::sema(
                        format!("array too large ({} elements)", hi - lo + 1),
                        ty.span,
                    ));
                }
                let elem = self.lower_type(element)?;
                Ok(self.types.intern(Type::Array {
                    index: index_id,
                    lo,
                    hi,
                    elem,
                }))
            }
            TypeExprKind::Record(fields) => {
                let mut out = Vec::new();
                for f in fields {
                    let fty = self.lower_type(&f.ty)?;
                    for n in &f.names {
                        if out.iter().any(|(name, _)| name == n.key()) {
                            return Err(FrontendError::sema(
                                format!("duplicate record field `{}`", n),
                                n.span,
                            ));
                        }
                        out.push((n.key().to_string(), fty));
                    }
                }
                Ok(self.types.intern(Type::Record { fields: out }))
            }
            TypeExprKind::SetOf(base) => {
                let base_id = self.lower_type(base)?;
                let (lo, hi) = self.types.ordinal_range(base_id).ok_or_else(|| {
                    FrontendError::sema(
                        "set base type must be a finite ordinal".to_string(),
                        base.span,
                    )
                })?;
                if hi - lo + 1 > MAX_SET_SIZE {
                    return Err(FrontendError::sema(
                        format!(
                            "set base range too large ({} values; limit {})",
                            hi - lo + 1,
                            MAX_SET_SIZE
                        ),
                        ty.span,
                    ));
                }
                Ok(self.types.intern(Type::SetOf {
                    base: base_id,
                    lo,
                    hi,
                }))
            }
            TypeExprKind::Pointer(target) => {
                // Allow forward references to named types.
                if let TypeExprKind::Named(n) = &target.kind {
                    if let Some(&id) = self.type_names.get(n.key()) {
                        return Ok(self.types.intern(Type::Pointer { target: id }));
                    }
                    return Err(FrontendError::sema(
                        format!(
                            "unknown type `{}` (forward pointer references must \
                             be declared in the same type section)",
                            n
                        ),
                        n.span,
                    ));
                }
                let target = self.lower_type(target)?;
                Ok(self.types.intern(Type::Pointer { target }))
            }
        }
    }

    fn channel(&mut self, ch: &ChannelDecl) -> FrontendResult<()> {
        let roles: Vec<String> = ch.roles.iter().map(|r| r.key().to_string()).collect();
        let mut interactions = Vec::new();
        for dir in &ch.directions {
            for r in &dir.roles {
                if !roles.contains(&r.key().to_string()) {
                    return Err(FrontendError::sema(
                        format!("`by {}`: role not declared on channel `{}`", r, ch.name),
                        r.span,
                    ));
                }
            }
            let senders: Vec<String> = dir.roles.iter().map(|r| r.key().to_string()).collect();
            for i in &dir.interactions {
                let mut params = Vec::new();
                for p in &i.params {
                    let ty = self.lower_type(&p.ty)?;
                    params.push((p.name.key().to_string(), ty));
                }
                interactions.push((
                    senders.clone(),
                    InteractionSig {
                        name: i.name.key().to_string(),
                        params,
                    },
                ));
            }
        }
        if self
            .channels
            .insert(
                ch.name.key().to_string(),
                ChannelInfo {
                    roles,
                    interactions,
                },
            )
            .is_some()
        {
            return Err(FrontendError::sema(
                format!("duplicate channel `{}`", ch.name),
                ch.name.span,
            ));
        }
        Ok(())
    }

    fn ip(&mut self, ip: &IpDecl) -> FrontendResult<()> {
        let ch = self.channels.get(ip.channel.key()).ok_or_else(|| {
            FrontendError::sema(
                format!("unknown channel `{}`", ip.channel),
                ip.channel.span,
            )
        })?;
        let role = ip.role.key().to_string();
        if !ch.roles.contains(&role) {
            return Err(FrontendError::sema(
                format!(
                    "role `{}` is not declared on channel `{}`",
                    ip.role, ip.channel
                ),
                ip.role.span,
            ));
        }
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (senders, sig) in &ch.interactions {
            if senders.contains(&role) {
                outputs.push(sig.clone());
            }
            if senders.iter().any(|s| *s != role) {
                inputs.push(sig.clone());
            }
        }
        let id = IpId(self.ips.len() as u32);
        if self.ip_index.insert(ip.name.key().to_string(), id).is_some() {
            return Err(FrontendError::sema(
                format!("duplicate interaction point `{}`", ip.name),
                ip.name.span,
            ));
        }
        self.ips.push(IpInfo {
            name: ip.name.text.clone(),
            inputs,
            outputs,
        });
        Ok(())
    }

    fn routine(&mut self, r: &RoutineDecl) -> FrontendResult<()> {
        let body = r.body.as_ref().ok_or_else(|| {
            FrontendError::sema(
                format!(
                    "`{}` is primitive; Tango does not support primitive \
                     functions and procedures",
                    r.name
                ),
                r.span,
            )
        })?;
        let mut params = Vec::new();
        for p in &r.params {
            let ty = self.lower_type(&p.ty)?;
            for n in &p.names {
                params.push(ParamSig {
                    name: n.key().to_string(),
                    ty,
                    by_ref: p.by_ref,
                });
            }
        }
        let result = match &r.result {
            Some(t) => Some(self.lower_type(t)?),
            None => None,
        };
        let mut consts = HashMap::new();
        for c in &r.consts {
            let scope = Scope::empty();
            let v = self.fold_const(&scope, &c.value)?;
            consts.insert(c.name.key().to_string(), v);
        }
        if !r.types.is_empty() {
            // Routine-local types would need scoped cleanup; no protocol in
            // the evaluation uses them.
            return Err(FrontendError::sema(
                "routine-local type declarations are not supported".to_string(),
                r.types[0].span,
            ));
        }
        let mut locals = Vec::new();
        for v in &r.vars {
            let ty = self.lower_type(&v.ty)?;
            for n in &v.names {
                locals.push((n.key().to_string(), ty));
            }
        }

        // Register the signature before checking the body so that direct
        // recursion resolves (Pascal allows it without a forward decl).
        let id = RoutineId(self.routines.len() as u32);
        if self
            .routine_index
            .insert(r.name.key().to_string(), id)
            .is_some()
        {
            return Err(FrontendError::sema(
                format!("duplicate routine `{}`", r.name),
                r.name.span,
            ));
        }
        self.routines.push(RoutineInfo {
            name: r.name.text.clone(),
            params: params.clone(),
            result,
            consts: consts.clone(),
            locals: locals.clone(),
            body: Vec::new(),
        });

        // Check the body with parameters, locals, routine consts and the
        // function-result pseudo-variable in scope.
        let mut scope = Scope::empty();
        for p in &params {
            scope.insert(p.name.clone(), p.ty);
        }
        for (n, t) in &locals {
            scope.insert(n.clone(), *t);
        }
        for (n, v) in &consts {
            scope.insert_const(n.clone(), *v);
        }
        if let Some(res) = result {
            scope.insert(r.name.key().to_string(), res);
        }
        for s in body {
            self.check_stmt(&scope, s)?;
        }

        self.routines[id.0 as usize].body = body.clone();
        Ok(())
    }

    fn resolve_state(&self, n: &Ident) -> FrontendResult<StateId> {
        self.state_index.get(n.key()).copied().ok_or_else(|| {
            FrontendError::sema(format!("unknown state `{}`", n), n.span)
        })
    }

    fn transition(&mut self, index: usize, t: &Transition) -> FrontendResult<TransitionInfo> {
        if let Some(d) = &t.delay {
            return Err(FrontendError::sema(
                "`delay` clauses are not supported: Tango trace files carry \
                 no time stamps and the analyzer does not simulate time"
                    .to_string(),
                d.span,
            ));
        }

        // `from` entries may be states or statesets.
        let mut from = Vec::new();
        for f in &t.from {
            if let Some(&id) = self.state_index.get(f.key()) {
                from.push(id);
            } else if let Some(members) = self.statesets.get(f.key()) {
                from.extend(members.iter().copied());
            } else {
                return Err(FrontendError::sema(
                    format!("unknown state or stateset `{}`", f),
                    f.span,
                ));
            }
        }
        from.sort();
        from.dedup();

        let to = match &t.to {
            ToClause::Same => None,
            ToClause::State(s) => Some(self.resolve_state(s)?),
        };

        // `any` variables come into scope for provided and the block.
        let mut scope = Scope::empty();
        let mut any = Vec::new();
        for a in &t.any {
            let ty = self.lower_type(&a.ty)?;
            let (lo, hi) = self.types.ordinal_range(ty).ok_or_else(|| {
                FrontendError::sema(
                    "`any` domain must be a finite ordinal type".to_string(),
                    a.span,
                )
            })?;
            if hi - lo + 1 > MAX_ANY_DOMAIN {
                return Err(FrontendError::sema(
                    format!(
                        "`any` domain too large ({} values; limit {})",
                        hi - lo + 1,
                        MAX_ANY_DOMAIN
                    ),
                    a.span,
                ));
            }
            scope.insert(a.var.key().to_string(), ty);
            any.push((a.var.key().to_string(), ty));
        }

        // `when` clause: the interaction must be receivable at that IP, and
        // its parameters come into scope.
        let when = match &t.when {
            None => None,
            Some(w) => {
                let ip_id = *self.ip_index.get(w.ip.key()).ok_or_else(|| {
                    FrontendError::sema(
                        format!("unknown interaction point `{}`", w.ip),
                        w.ip.span,
                    )
                })?;
                let ip = &self.ips[ip_id.0 as usize];
                let idx = ip.input_index(w.interaction.key()).ok_or_else(|| {
                    FrontendError::sema(
                        format!(
                            "interaction `{}` cannot be received at `{}`",
                            w.interaction, w.ip
                        ),
                        w.interaction.span,
                    )
                })?;
                for (pname, pty) in &ip.inputs[idx].params {
                    scope.insert(pname.clone(), *pty);
                }
                Some((ip_id, idx))
            }
        };

        if let Some(p) = &t.provided {
            self.check_bool_expr(&scope, p)?;
        }
        let priority = match &t.priority {
            None => DEFAULT_PRIORITY,
            Some(p) => {
                let v = self.fold_const(&Scope::empty(), p)?;
                match v {
                    ConstValue::Int(n) if n >= 0 => n as u32,
                    _ => {
                        return Err(FrontendError::sema(
                            "priority must be a non-negative integer constant".to_string(),
                            p.span,
                        ))
                    }
                }
            }
        };

        for s in &t.block {
            self.check_stmt(&scope, s)?;
        }

        let name = t
            .name
            .as_ref()
            .map(|n| n.text.clone())
            .unwrap_or_else(|| format!("t#{}", index + 1));

        Ok(TransitionInfo {
            name,
            from,
            to,
            when,
            provided: t.provided.clone(),
            priority,
            any,
            block: t.block.clone(),
            span: t.span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(extra_body: &str) -> String {
        format!(
            r#"
            specification s;
            channel C(peer, me); by peer: ping(n : integer); by me: pong(n : integer); end;
            module M process; ip P : C(me); end;
            body MB for M;
                var count : integer;
                state Idle, Busy;
                initialize to Idle begin count := 0 end;
                {}
            end;
            end.
            "#,
            extra_body
        )
    }

    #[test]
    fn analyzes_valid_module() {
        let m = analyze(&tiny(
            "trans from Idle to Busy when P.ping provided n > 0 name T1: \
             begin count := count + n; output P.pong(count) end;",
        ))
        .expect("analyzes");
        assert_eq!(m.module_name, "M");
        assert_eq!(m.states, vec!["Idle", "Busy"]);
        assert_eq!(m.transitions.len(), 1);
        let t = &m.transitions[0];
        assert_eq!(t.name, "T1");
        assert_eq!(t.from, vec![StateId(0)]);
        assert_eq!(t.to, Some(StateId(1)));
        assert_eq!(t.when, Some((IpId(0), 0)));
    }

    #[test]
    fn ip_direction_split() {
        let m = analyze(&tiny("")).unwrap();
        let ip = &m.ips[0];
        assert_eq!(ip.inputs.len(), 1);
        assert_eq!(ip.inputs[0].name, "ping");
        assert_eq!(ip.outputs.len(), 1);
        assert_eq!(ip.outputs[0].name, "pong");
    }

    #[test]
    fn delay_rejected_with_explanation() {
        let err = analyze(&tiny(
            "trans from Idle to Idle delay(5) begin end;",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("delay"));
    }

    #[test]
    fn primitive_rejected() {
        let err = analyze(&tiny(
            "function f(x : integer) : integer; primitive;",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("primitive"));
    }

    #[test]
    fn multi_module_rejected() {
        let src = r#"
            specification s;
            module A process; end;
            module B process; end;
            body AB for A; state S; initialize to S begin end; end;
            body BB for B; state S; initialize to S begin end; end;
            end.
        "#;
        let err = analyze(src).unwrap_err();
        assert!(err.to_string().contains("single-module"));
    }

    #[test]
    fn missing_initialize_rejected() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M; state S; end;
            end.
        "#;
        let err = analyze(src).unwrap_err();
        assert!(err.to_string().contains("initialize"));
    }

    #[test]
    fn when_against_wrong_direction_rejected() {
        // `pong` is sent by `me`, so it cannot be received at P.
        let err = analyze(&tiny(
            "trans from Idle to Idle when P.pong begin end;",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("cannot be received"));
    }

    #[test]
    fn stateset_in_from_expands() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                state S1, S2, S3;
                stateset Busy = [S2, S3];
                initialize to S1 begin end;
                trans from Busy to S1 name back: begin end;
            end;
            end.
        "#;
        let m = analyze(src).unwrap();
        assert_eq!(m.transitions[0].from, vec![StateId(1), StateId(2)]);
    }

    #[test]
    fn forward_pointer_type() {
        let src = r#"
            specification s;
            module M process; end;
            body MB for M;
                type cell = record v : integer; next : ^cell end;
                var head : ^cell;
                state S;
                initialize to S begin head := nil end;
            end;
            end.
        "#;
        let m = analyze(src).unwrap();
        assert!(!m.types.has_unresolved());
    }

    #[test]
    fn any_clause_domain_checked() {
        let m = analyze(&tiny(
            "trans from Idle to Idle any k : 0..3 do name TK: begin count := k end;",
        ))
        .unwrap();
        assert_eq!(m.transitions[0].any.len(), 1);

        let err = analyze(&tiny(
            "trans from Idle to Idle any k : integer do begin end;",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("finite ordinal"));
    }

    #[test]
    fn synthesized_transition_names() {
        let m = analyze(&tiny(
            "trans from Idle to Idle begin end; from Idle to Busy begin end;",
        ))
        .unwrap();
        assert_eq!(m.transitions[0].name, "t#1");
        assert_eq!(m.transitions[1].name, "t#2");
    }

    #[test]
    fn priority_folding() {
        let m = analyze(&tiny(
            "trans from Idle to Idle priority 2 begin end; from Idle to Busy begin end;",
        ))
        .unwrap();
        assert_eq!(m.transitions[0].priority, 2);
        assert_eq!(m.transitions[1].priority, DEFAULT_PRIORITY);
    }
}
