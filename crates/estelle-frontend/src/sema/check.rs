//! Expression and statement checking plus constant folding.

use crate::error::{FrontendError, FrontendResult};
use crate::sema::model::ConstValue;
use crate::sema::types::{Type, TypeId, TY_BOOLEAN, TY_INTEGER};
use crate::sema::Analyzer;
use estelle_ast::expr::SetElem;
use estelle_ast::*;
use std::collections::HashMap;

/// Lexical scope layered over the module tables: routine parameters and
/// locals, `when` parameters, `any` variables, and routine-local constants.
#[derive(Default)]
pub(crate) struct Scope {
    vars: HashMap<String, TypeId>,
    consts: HashMap<String, ConstValue>,
}

impl Scope {
    pub(crate) fn empty() -> Self {
        Scope::default()
    }

    pub(crate) fn insert(&mut self, name: String, ty: TypeId) {
        self.vars.insert(name, ty);
    }

    pub(crate) fn insert_const(&mut self, name: String, v: ConstValue) {
        self.consts.insert(name, v);
    }

    fn lookup(&self, key: &str) -> Option<TypeId> {
        self.vars.get(key).copied()
    }

    fn lookup_const(&self, key: &str) -> Option<ConstValue> {
        self.consts.get(key).copied()
    }
}

/// Result of type inference; `Nil` and `EmptySet` are polymorphic literals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Ty {
    Of(TypeId),
    Nil,
    EmptySet,
}

impl Analyzer {
    /// Fold a constant expression; used for subrange bounds, `priority`,
    /// const declarations and case labels.
    pub(crate) fn fold_const(&self, scope: &Scope, e: &Expr) -> FrontendResult<ConstValue> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(ConstValue::Int(*v)),
            ExprKind::BoolLit(b) => Ok(ConstValue::Bool(*b)),
            ExprKind::Name(n) => {
                if let Some(v) = scope.lookup_const(n.key()) {
                    return Ok(v);
                }
                if let Some(v) = self.consts.get(n.key()) {
                    return Ok(*v);
                }
                if let Some(&(ty, ord)) = self.enum_literals.get(n.key()) {
                    return Ok(ConstValue::Enum(ty, ord));
                }
                Err(FrontendError::sema(
                    format!("`{}` is not a constant", n),
                    n.span,
                ))
            }
            ExprKind::Unary(op, operand) => {
                let v = self.fold_const(scope, operand)?;
                match (op, v) {
                    (UnOp::Neg, ConstValue::Int(i)) => Ok(ConstValue::Int(-i)),
                    (UnOp::Plus, ConstValue::Int(i)) => Ok(ConstValue::Int(i)),
                    (UnOp::Not, ConstValue::Bool(b)) => Ok(ConstValue::Bool(!b)),
                    _ => Err(FrontendError::sema(
                        "invalid operand in constant expression".to_string(),
                        e.span,
                    )),
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lv = self.fold_const(scope, l)?;
                let rv = self.fold_const(scope, r)?;
                let int = |v: &ConstValue| match v {
                    ConstValue::Int(i) => Some(*i),
                    _ => None,
                };
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        let (Some(a), Some(b)) = (int(&lv), int(&rv)) else {
                            return Err(FrontendError::sema(
                                "arithmetic on non-integer constants".to_string(),
                                e.span,
                            ));
                        };
                        let v = match op {
                            BinOp::Add => a.checked_add(b),
                            BinOp::Sub => a.checked_sub(b),
                            BinOp::Mul => a.checked_mul(b),
                            BinOp::Div if b != 0 => Some(a.div_euclid(b)),
                            BinOp::Mod if b != 0 => Some(a.rem_euclid(b)),
                            _ => None,
                        };
                        v.map(ConstValue::Int).ok_or_else(|| {
                            FrontendError::sema(
                                "constant arithmetic overflow or division by zero".to_string(),
                                e.span,
                            )
                        })
                    }
                    BinOp::Eq => Ok(ConstValue::Bool(lv.ordinal() == rv.ordinal())),
                    BinOp::Ne => Ok(ConstValue::Bool(lv.ordinal() != rv.ordinal())),
                    BinOp::Lt => Ok(ConstValue::Bool(lv.ordinal() < rv.ordinal())),
                    BinOp::Le => Ok(ConstValue::Bool(lv.ordinal() <= rv.ordinal())),
                    BinOp::Gt => Ok(ConstValue::Bool(lv.ordinal() > rv.ordinal())),
                    BinOp::Ge => Ok(ConstValue::Bool(lv.ordinal() >= rv.ordinal())),
                    BinOp::And | BinOp::Or => match (lv, rv) {
                        (ConstValue::Bool(a), ConstValue::Bool(b)) => Ok(ConstValue::Bool(
                            if *op == BinOp::And { a && b } else { a || b },
                        )),
                        _ => Err(FrontendError::sema(
                            "boolean operator on non-boolean constants".to_string(),
                            e.span,
                        )),
                    },
                    BinOp::In => Err(FrontendError::sema(
                        "`in` is not allowed in constant expressions".to_string(),
                        e.span,
                    )),
                }
            }
            _ => Err(FrontendError::sema(
                "expression is not a compile-time constant".to_string(),
                e.span,
            )),
        }
    }

    /// Infer the type of an expression, reporting unresolved names and
    /// structural misuse.
    pub(crate) fn infer_expr(&self, scope: &Scope, e: &Expr) -> FrontendResult<Ty> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Ty::Of(TY_INTEGER)),
            ExprKind::BoolLit(_) => Ok(Ty::Of(TY_BOOLEAN)),
            ExprKind::NilLit => Ok(Ty::Nil),
            ExprKind::Name(n) => self.infer_name(scope, n),
            ExprKind::Field(base, field) => {
                let base_ty = self.expect_typed(scope, base)?;
                match self.types.get(self.types.base_of(base_ty)) {
                    Type::Record { fields } => fields
                        .iter()
                        .find(|(name, _)| name == field.key())
                        .map(|(_, t)| Ty::Of(*t))
                        .ok_or_else(|| {
                            FrontendError::sema(
                                format!("record has no field `{}`", field),
                                field.span,
                            )
                        }),
                    _ => Err(FrontendError::sema(
                        format!(
                            "field access on non-record ({})",
                            self.types.describe(base_ty)
                        ),
                        e.span,
                    )),
                }
            }
            ExprKind::Index(base, idx) => {
                let base_ty = self.expect_typed(scope, base)?;
                match *self.types.get(self.types.base_of(base_ty)) {
                    Type::Array { index, elem, .. } => {
                        let idx_ty = self.expect_typed(scope, idx)?;
                        if !self.types.compatible(idx_ty, index) {
                            return Err(FrontendError::sema(
                                format!(
                                    "index type {} does not match array index type {}",
                                    self.types.describe(idx_ty),
                                    self.types.describe(index)
                                ),
                                idx.span,
                            ));
                        }
                        Ok(Ty::Of(elem))
                    }
                    _ => Err(FrontendError::sema(
                        format!("indexing non-array ({})", self.types.describe(base_ty)),
                        e.span,
                    )),
                }
            }
            ExprKind::Deref(base) => {
                let base_ty = self.expect_typed(scope, base)?;
                match *self.types.get(self.types.base_of(base_ty)) {
                    Type::Pointer { target } => Ok(Ty::Of(target)),
                    _ => Err(FrontendError::sema(
                        format!(
                            "dereference of non-pointer ({})",
                            self.types.describe(base_ty)
                        ),
                        e.span,
                    )),
                }
            }
            ExprKind::Unary(op, operand) => {
                let t = self.expect_typed(scope, operand)?;
                match op {
                    UnOp::Neg | UnOp::Plus => {
                        self.require_int(t, operand.span)?;
                        Ok(Ty::Of(TY_INTEGER))
                    }
                    UnOp::Not => {
                        self.require_bool(t, operand.span)?;
                        Ok(Ty::Of(TY_BOOLEAN))
                    }
                }
            }
            ExprKind::Binary(op, l, r) => self.infer_binary_rules(scope, e.span, *op, l, r),
            ExprKind::Call(name, args) => {
                let Some(&rid) = self.routine_index.get(name.key()) else {
                    return Err(FrontendError::sema(
                        format!("unknown function `{}`", name),
                        name.span,
                    ));
                };
                let routine = &self.routines[rid.0 as usize];
                let Some(result) = routine.result else {
                    return Err(FrontendError::sema(
                        format!("`{}` is a procedure, not a function", name),
                        name.span,
                    ));
                };
                self.check_args(scope, &routine.params.clone(), args, name.span)?;
                Ok(Ty::Of(result))
            }
            ExprKind::SetCtor(elems) => {
                if elems.is_empty() {
                    return Ok(Ty::EmptySet);
                }
                let mut base: Option<TypeId> = None;
                for el in elems {
                    let (a, b) = match el {
                        SetElem::Single(x) => (x, None),
                        SetElem::Range(a, b) => (a, Some(b)),
                    };
                    for x in std::iter::once(a).chain(b) {
                        let t = self.expect_typed(scope, x)?;
                        if !self.types.is_ordinal(t) {
                            return Err(FrontendError::sema(
                                "set elements must be ordinal".to_string(),
                                x.span,
                            ));
                        }
                        let t = self.types.base_of(t);
                        match base {
                            None => base = Some(t),
                            Some(b0) if self.types.compatible(b0, t) => {}
                            Some(_) => {
                                return Err(FrontendError::sema(
                                    "mixed element types in set constructor".to_string(),
                                    x.span,
                                ))
                            }
                        }
                    }
                }
                // The constructed set's precise `SetOf` type is determined
                // by the assignment/comparison context at runtime; for
                // checking purposes the base type is what matters.
                Ok(Ty::EmptySet)
            }
        }
    }

    fn infer_name(&self, scope: &Scope, n: &Ident) -> FrontendResult<Ty> {
        if let Some(t) = scope.lookup(n.key()) {
            return Ok(Ty::Of(t));
        }
        if let Some(v) = scope.lookup_const(n.key()) {
            return Ok(self.const_ty(v));
        }
        if let Some(&id) = self.var_index.get(n.key()) {
            return Ok(Ty::Of(self.vars[id.0 as usize].ty));
        }
        if let Some(v) = self.consts.get(n.key()) {
            return Ok(self.const_ty(*v));
        }
        if let Some(&(ty, _)) = self.enum_literals.get(n.key()) {
            return Ok(Ty::Of(ty));
        }
        // Parameterless function call.
        if let Some(&rid) = self.routine_index.get(n.key()) {
            let routine = &self.routines[rid.0 as usize];
            if let Some(result) = routine.result {
                if routine.params.is_empty() {
                    return Ok(Ty::Of(result));
                }
            }
        }
        Err(FrontendError::sema(
            format!("unknown name `{}`", n),
            n.span,
        ))
    }

    fn const_ty(&self, v: ConstValue) -> Ty {
        match v {
            ConstValue::Int(_) => Ty::Of(TY_INTEGER),
            ConstValue::Bool(_) => Ty::Of(TY_BOOLEAN),
            ConstValue::Enum(t, _) => Ty::Of(t),
        }
    }

}

// The binary-operator rules live in their own impl block to keep the main
// inference function readable.
impl Analyzer {
    pub(crate) fn infer_binary_rules(
        &self,
        scope: &Scope,
        span: Span,
        op: BinOp,
        l: &Expr,
        r: &Expr,
    ) -> FrontendResult<Ty> {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let lt = self.expect_typed(scope, l)?;
                let rt = self.expect_typed(scope, r)?;
                self.require_int(lt, l.span)?;
                self.require_int(rt, r.span)?;
                Ok(Ty::Of(TY_INTEGER))
            }
            BinOp::And | BinOp::Or => {
                let lt = self.expect_typed(scope, l)?;
                let rt = self.expect_typed(scope, r)?;
                self.require_bool(lt, l.span)?;
                self.require_bool(rt, r.span)?;
                Ok(Ty::Of(TY_BOOLEAN))
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let lt = self.infer_expr(scope, l)?;
                let rt = self.infer_expr(scope, r)?;
                match (lt, rt) {
                    (Ty::Nil, _) | (_, Ty::Nil) => {
                        // nil compares (only) with pointers, and only for
                        // equality.
                        if !matches!(op, BinOp::Eq | BinOp::Ne) {
                            return Err(FrontendError::sema(
                                "nil supports only `=` and `<>`".to_string(),
                                span,
                            ));
                        }
                        for (t, x) in [(lt, l), (rt, r)] {
                            if let Ty::Of(id) = t {
                                if !matches!(
                                    self.types.get(self.types.base_of(id)),
                                    Type::Pointer { .. }
                                ) {
                                    return Err(FrontendError::sema(
                                        "nil compared with a non-pointer".to_string(),
                                        x.span,
                                    ));
                                }
                            }
                        }
                        Ok(Ty::Of(TY_BOOLEAN))
                    }
                    (Ty::EmptySet, _) | (_, Ty::EmptySet) => Ok(Ty::Of(TY_BOOLEAN)),
                    (Ty::Of(a), Ty::Of(b)) => {
                        if !self.types.compatible(a, b) {
                            return Err(FrontendError::sema(
                                format!(
                                    "cannot compare {} with {}",
                                    self.types.describe(a),
                                    self.types.describe(b)
                                ),
                                span,
                            ));
                        }
                        Ok(Ty::Of(TY_BOOLEAN))
                    }
                }
            }
            BinOp::In => {
                let lt = self.expect_typed(scope, l)?;
                if !self.types.is_ordinal(lt) {
                    return Err(FrontendError::sema(
                        "left operand of `in` must be ordinal".to_string(),
                        l.span,
                    ));
                }
                let rt = self.infer_expr(scope, r)?;
                match rt {
                    Ty::EmptySet => Ok(Ty::Of(TY_BOOLEAN)),
                    Ty::Of(id)
                        if matches!(
                            self.types.get(self.types.base_of(id)),
                            Type::SetOf { .. }
                        ) =>
                    {
                        Ok(Ty::Of(TY_BOOLEAN))
                    }
                    _ => Err(FrontendError::sema(
                        "right operand of `in` must be a set".to_string(),
                        r.span,
                    )),
                }
            }
        }
    }

    pub(crate) fn expect_typed(&self, scope: &Scope, e: &Expr) -> FrontendResult<TypeId> {
        match self.infer_expr(scope, e)? {
            Ty::Of(t) => Ok(t),
            Ty::Nil => Err(FrontendError::sema(
                "nil is only allowed in pointer assignments and comparisons".to_string(),
                e.span,
            )),
            Ty::EmptySet => Err(FrontendError::sema(
                "a set constructor is not allowed here".to_string(),
                e.span,
            )),
        }
    }

    fn require_int(&self, t: TypeId, span: Span) -> FrontendResult<()> {
        if self.types.compatible(t, TY_INTEGER) {
            Ok(())
        } else {
            Err(FrontendError::sema(
                format!("expected integer, found {}", self.types.describe(t)),
                span,
            ))
        }
    }

    fn require_bool(&self, t: TypeId, span: Span) -> FrontendResult<()> {
        if self.types.base_of(t) == TY_BOOLEAN {
            Ok(())
        } else {
            Err(FrontendError::sema(
                format!("expected boolean, found {}", self.types.describe(t)),
                span,
            ))
        }
    }

    pub(crate) fn check_bool_expr(&self, scope: &Scope, e: &Expr) -> FrontendResult<()> {
        let t = self.expect_typed(scope, e)?;
        self.require_bool(t, e.span)
    }

    fn check_args(
        &self,
        scope: &Scope,
        params: &[crate::sema::model::ParamSig],
        args: &[Expr],
        span: Span,
    ) -> FrontendResult<()> {
        if params.len() != args.len() {
            return Err(FrontendError::sema(
                format!("expected {} argument(s), found {}", params.len(), args.len()),
                span,
            ));
        }
        for (p, a) in params.iter().zip(args) {
            let t = self.infer_expr(scope, a)?;
            match t {
                Ty::Nil => {
                    if !matches!(
                        self.types.get(self.types.base_of(p.ty)),
                        Type::Pointer { .. }
                    ) {
                        return Err(FrontendError::sema(
                            "nil passed for a non-pointer parameter".to_string(),
                            a.span,
                        ));
                    }
                }
                Ty::EmptySet => {
                    if !matches!(
                        self.types.get(self.types.base_of(p.ty)),
                        Type::SetOf { .. }
                    ) {
                        return Err(FrontendError::sema(
                            "set constructor passed for a non-set parameter".to_string(),
                            a.span,
                        ));
                    }
                }
                Ty::Of(at) => {
                    if !self.set_aware_compatible(p.ty, at) {
                        return Err(FrontendError::sema(
                            format!(
                                "argument type {} does not match parameter type {}",
                                self.types.describe(at),
                                self.types.describe(p.ty)
                            ),
                            a.span,
                        ));
                    }
                }
            }
            if p.by_ref && !is_lvalue(a) {
                return Err(FrontendError::sema(
                    "a `var` parameter requires a variable argument".to_string(),
                    a.span,
                ));
            }
        }
        Ok(())
    }

    /// Compatibility that also accepts structurally equal sets/arrays/
    /// records (they intern to the same id) — i.e. plain `compatible`.
    fn set_aware_compatible(&self, expected: TypeId, actual: TypeId) -> bool {
        self.types.compatible(expected, actual)
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    pub(crate) fn check_stmt(&self, scope: &Scope, s: &Stmt) -> FrontendResult<()> {
        match &s.kind {
            StmtKind::Empty => Ok(()),
            StmtKind::Assign { target, value } => {
                if !is_lvalue(target) {
                    return Err(FrontendError::sema(
                        "assignment target is not a variable".to_string(),
                        target.span,
                    ));
                }
                let tt = self.expect_typed(scope, target)?;
                match self.infer_expr(scope, value)? {
                    Ty::Nil => {
                        if !matches!(
                            self.types.get(self.types.base_of(tt)),
                            Type::Pointer { .. }
                        ) {
                            return Err(FrontendError::sema(
                                "nil assigned to a non-pointer".to_string(),
                                value.span,
                            ));
                        }
                        Ok(())
                    }
                    Ty::EmptySet => {
                        if !matches!(
                            self.types.get(self.types.base_of(tt)),
                            Type::SetOf { .. }
                        ) {
                            return Err(FrontendError::sema(
                                "set constructor assigned to a non-set".to_string(),
                                value.span,
                            ));
                        }
                        Ok(())
                    }
                    Ty::Of(vt) => {
                        if !self.types.compatible(tt, vt) {
                            return Err(FrontendError::sema(
                                format!(
                                    "cannot assign {} to {}",
                                    self.types.describe(vt),
                                    self.types.describe(tt)
                                ),
                                s.span,
                            ));
                        }
                        Ok(())
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_bool_expr(scope, cond)?;
                self.check_stmt(scope, then_branch)?;
                if let Some(e) = else_branch {
                    self.check_stmt(scope, e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.check_bool_expr(scope, cond)?;
                self.check_stmt(scope, body)
            }
            StmtKind::Repeat { body, cond } => {
                for st in body {
                    self.check_stmt(scope, st)?;
                }
                self.check_bool_expr(scope, cond)
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let vt = match self.infer_name(scope, var)? {
                    Ty::Of(t) => t,
                    _ => unreachable!("names never infer to Nil/EmptySet"),
                };
                if !self.types.is_ordinal(vt) {
                    return Err(FrontendError::sema(
                        "for-loop variable must be ordinal".to_string(),
                        var.span,
                    ));
                }
                let ft = self.expect_typed(scope, from)?;
                let tt = self.expect_typed(scope, to)?;
                if !self.types.compatible(vt, ft) || !self.types.compatible(vt, tt) {
                    return Err(FrontendError::sema(
                        "for-loop bounds do not match the loop variable's type".to_string(),
                        s.span,
                    ));
                }
                self.check_stmt(scope, body)
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                let st = self.expect_typed(scope, scrutinee)?;
                if !self.types.is_ordinal(st) {
                    return Err(FrontendError::sema(
                        "case scrutinee must be ordinal".to_string(),
                        scrutinee.span,
                    ));
                }
                for arm in arms {
                    for l in &arm.labels {
                        let v = self.fold_const(scope, l)?;
                        let label_ok = match v {
                            ConstValue::Int(_) => {
                                self.types.compatible(st, TY_INTEGER)
                            }
                            ConstValue::Bool(_) => self.types.base_of(st) == TY_BOOLEAN,
                            ConstValue::Enum(t, _) => self.types.compatible(st, t),
                        };
                        if !label_ok {
                            return Err(FrontendError::sema(
                                "case label type does not match the scrutinee".to_string(),
                                l.span,
                            ));
                        }
                    }
                    self.check_stmt(scope, &arm.body)?;
                }
                if let Some(stmts) = else_arm {
                    for st in stmts {
                        self.check_stmt(scope, st)?;
                    }
                }
                Ok(())
            }
            StmtKind::Compound(stmts) => {
                for st in stmts {
                    self.check_stmt(scope, st)?;
                }
                Ok(())
            }
            StmtKind::Output {
                ip,
                interaction,
                args,
            } => {
                let Some(&ip_id) = self.ip_index.get(ip.key()) else {
                    return Err(FrontendError::sema(
                        format!("unknown interaction point `{}`", ip),
                        ip.span,
                    ));
                };
                let info = &self.ips[ip_id.0 as usize];
                let Some(idx) = info.output_index(interaction.key()) else {
                    return Err(FrontendError::sema(
                        format!("interaction `{}` cannot be sent at `{}`", interaction, ip),
                        interaction.span,
                    ));
                };
                let sig = &info.outputs[idx];
                if sig.params.len() != args.len() {
                    return Err(FrontendError::sema(
                        format!(
                            "`{}` takes {} parameter(s), found {}",
                            interaction,
                            sig.params.len(),
                            args.len()
                        ),
                        s.span,
                    ));
                }
                for ((_, pt), a) in sig.params.clone().iter().zip(args) {
                    let at = self.expect_typed(scope, a)?;
                    if !self.types.compatible(*pt, at) {
                        return Err(FrontendError::sema(
                            format!(
                                "output parameter type {} does not match {}",
                                self.types.describe(at),
                                self.types.describe(*pt)
                            ),
                            a.span,
                        ));
                    }
                }
                Ok(())
            }
            StmtKind::ProcCall { name, args } => {
                let Some(&rid) = self.routine_index.get(name.key()) else {
                    return Err(FrontendError::sema(
                        format!("unknown procedure `{}`", name),
                        name.span,
                    ));
                };
                let routine = &self.routines[rid.0 as usize];
                if routine.result.is_some() {
                    return Err(FrontendError::sema(
                        format!("`{}` is a function; its result must be used", name),
                        name.span,
                    ));
                }
                self.check_args(scope, &routine.params.clone(), args, s.span)
            }
            StmtKind::New(target) | StmtKind::Dispose(target) => {
                if !is_lvalue(target) {
                    return Err(FrontendError::sema(
                        "new/dispose needs a pointer variable".to_string(),
                        target.span,
                    ));
                }
                let t = self.expect_typed(scope, target)?;
                if !matches!(self.types.get(self.types.base_of(t)), Type::Pointer { .. }) {
                    return Err(FrontendError::sema(
                        format!(
                            "new/dispose on non-pointer ({})",
                            self.types.describe(t)
                        ),
                        target.span,
                    ));
                }
                Ok(())
            }
        }
    }
}

/// True for expressions that denote a storage location.
pub(crate) fn is_lvalue(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Name(_) => true,
        ExprKind::Field(base, _) | ExprKind::Index(base, _) | ExprKind::Deref(base) => {
            is_lvalue(base)
        }
        _ => false,
    }
}
