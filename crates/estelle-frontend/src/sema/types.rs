//! The semantic type model.
//!
//! Syntactic [`estelle_ast::TypeExpr`]s are lowered into a [`TypeTable`] of
//! structural [`Type`]s indexed by [`TypeId`]. The table owns every type in
//! the module; the runtime uses it to build default values, check ordinal
//! ranges for `any`-clause expansion and array indexing, and size sets.

use std::fmt;

/// Index into a [`TypeTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeId(pub u32);

/// The predefined `integer` type.
pub const TY_INTEGER: TypeId = TypeId(0);
/// The predefined `boolean` type.
pub const TY_BOOLEAN: TypeId = TypeId(1);

/// A resolved (structural) type.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// Placeholder for a forward-referenced type name (Pascal allows
    /// `^cell` before `cell` is declared). Semantic analysis guarantees no
    /// `Unresolved` survives in a successfully analyzed module.
    Unresolved,
    /// Mathematical integers (represented as `i64` at runtime).
    Integer,
    Boolean,
    /// An enumeration with its literal names in declaration order.
    Enum { literals: Vec<String> },
    /// A subrange `lo..hi` of an ordinal base type.
    Subrange { base: TypeId, lo: i64, hi: i64 },
    /// `array [index] of elem`; the index type must be a finite ordinal,
    /// its bounds are cached here.
    Array {
        index: TypeId,
        lo: i64,
        hi: i64,
        elem: TypeId,
    },
    Record { fields: Vec<(String, TypeId)> },
    /// `set of base`; the base must be a finite ordinal.
    SetOf { base: TypeId, lo: i64, hi: i64 },
    Pointer { target: TypeId },
}

/// All types of one analyzed module.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    types: Vec<Type>,
}

impl TypeTable {
    /// A fresh table pre-seeded with `integer` and `boolean`.
    pub fn new() -> Self {
        let mut t = TypeTable { types: Vec::new() };
        let int = t.intern(Type::Integer);
        let boolean = t.intern(Type::Boolean);
        debug_assert_eq!(int, TY_INTEGER);
        debug_assert_eq!(boolean, TY_BOOLEAN);
        t
    }

    /// Add a type, returning its id. Structurally identical non-enum types
    /// are shared; enums are always distinct (Pascal's nominal enums).
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if !matches!(ty, Type::Enum { .. }) {
            if let Some(pos) = self.types.iter().position(|t| *t == ty) {
                return TypeId(pos as u32);
            }
        }
        self.types.push(ty);
        TypeId((self.types.len() - 1) as u32)
    }

    /// Reserve a slot for a forward-referenced type; must be completed with
    /// [`TypeTable::define`].
    pub fn reserve(&mut self) -> TypeId {
        self.types.push(Type::Unresolved);
        TypeId((self.types.len() - 1) as u32)
    }

    /// Fill in a slot created by [`TypeTable::reserve`].
    pub fn define(&mut self, id: TypeId, ty: Type) {
        debug_assert!(matches!(self.types[id.0 as usize], Type::Unresolved));
        self.types[id.0 as usize] = ty;
    }

    /// True if any reserved slot was never defined.
    pub fn has_unresolved(&self) -> bool {
        self.types.iter().any(|t| matches!(t, Type::Unresolved))
    }

    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.types.len()
    }

    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Chase subranges down to the underlying base type id.
    pub fn base_of(&self, id: TypeId) -> TypeId {
        match self.get(id) {
            Type::Subrange { base, .. } => self.base_of(*base),
            _ => id,
        }
    }

    /// The inclusive ordinal value range of a type, if it is a *finite*
    /// ordinal: boolean, enum or subrange. `integer` returns `None`.
    pub fn ordinal_range(&self, id: TypeId) -> Option<(i64, i64)> {
        match self.get(id) {
            Type::Boolean => Some((0, 1)),
            Type::Enum { literals } => Some((0, literals.len() as i64 - 1)),
            Type::Subrange { lo, hi, .. } => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// True if the type is ordinal (integer, boolean, enum or a subrange).
    pub fn is_ordinal(&self, id: TypeId) -> bool {
        matches!(
            self.get(id),
            Type::Integer | Type::Boolean | Type::Enum { .. } | Type::Subrange { .. }
        )
    }

    /// Assignment compatibility: same base type after chasing subranges.
    /// Integers and integer subranges are mutually compatible (range checks
    /// happen at runtime, as in Pascal).
    pub fn compatible(&self, a: TypeId, b: TypeId) -> bool {
        let a = self.base_of(a);
        let b = self.base_of(b);
        if a == b {
            return true;
        }
        matches!(
            (self.get(a), self.get(b)),
            (Type::Integer, Type::Integer)
        )
    }

    /// Human-readable rendering for diagnostics. Recursive types (records
    /// reachable through their own pointers) are elided after a few
    /// levels.
    pub fn describe(&self, id: TypeId) -> String {
        self.describe_depth(id, 0)
    }

    fn describe_depth(&self, id: TypeId, depth: usize) -> String {
        if depth > 4 {
            return "…".to_string();
        }
        match self.get(id) {
            Type::Unresolved => "<unresolved>".to_string(),
            Type::Integer => "integer".to_string(),
            Type::Boolean => "boolean".to_string(),
            Type::Enum { literals } => format!("({})", literals.join(", ")),
            Type::Subrange { lo, hi, .. } => format!("{}..{}", lo, hi),
            Type::Array { lo, hi, elem, .. } => {
                format!(
                    "array [{}..{}] of {}",
                    lo,
                    hi,
                    self.describe_depth(*elem, depth + 1)
                )
            }
            Type::Record { fields } => format!(
                "record {} end",
                fields
                    .iter()
                    .map(|(n, t)| format!("{} : {}", n, self.describe_depth(*t, depth + 1)))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
            Type::SetOf { base, .. } => {
                format!("set of {}", self.describe_depth(*base, depth + 1))
            }
            Type::Pointer { target } => {
                format!("^{}", self.describe_depth(*target, depth + 1))
            }
        }
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_ids_are_stable() {
        let t = TypeTable::new();
        assert_eq!(t.get(TY_INTEGER), &Type::Integer);
        assert_eq!(t.get(TY_BOOLEAN), &Type::Boolean);
    }

    #[test]
    fn interning_shares_structural_types() {
        let mut t = TypeTable::new();
        let a = t.intern(Type::Subrange {
            base: TY_INTEGER,
            lo: 0,
            hi: 7,
        });
        let b = t.intern(Type::Subrange {
            base: TY_INTEGER,
            lo: 0,
            hi: 7,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn enums_are_nominal() {
        let mut t = TypeTable::new();
        let a = t.intern(Type::Enum {
            literals: vec!["x".into()],
        });
        let b = t.intern(Type::Enum {
            literals: vec!["x".into()],
        });
        assert_ne!(a, b);
    }

    #[test]
    fn ordinal_ranges() {
        let mut t = TypeTable::new();
        assert_eq!(t.ordinal_range(TY_BOOLEAN), Some((0, 1)));
        assert_eq!(t.ordinal_range(TY_INTEGER), None);
        let e = t.intern(Type::Enum {
            literals: vec!["a".into(), "b".into(), "c".into()],
        });
        assert_eq!(t.ordinal_range(e), Some((0, 2)));
        let s = t.intern(Type::Subrange {
            base: TY_INTEGER,
            lo: 2,
            hi: 5,
        });
        assert_eq!(t.ordinal_range(s), Some((2, 5)));
    }

    #[test]
    fn subrange_compatibility_with_base() {
        let mut t = TypeTable::new();
        let s = t.intern(Type::Subrange {
            base: TY_INTEGER,
            lo: 0,
            hi: 7,
        });
        assert!(t.compatible(s, TY_INTEGER));
        assert!(t.compatible(TY_INTEGER, s));
        assert!(!t.compatible(s, TY_BOOLEAN));
    }

    #[test]
    fn enum_subrange_compatible_with_its_enum() {
        let mut t = TypeTable::new();
        let e = t.intern(Type::Enum {
            literals: vec!["a".into(), "b".into(), "c".into()],
        });
        let s = t.intern(Type::Subrange { base: e, lo: 0, hi: 1 });
        assert!(t.compatible(s, e));
        assert!(!t.compatible(s, TY_INTEGER));
    }
}
