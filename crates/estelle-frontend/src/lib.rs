//! The Estelle frontend: lexer, parser and semantic analysis.
//!
//! This crate plays the role NIST's *Pet* (Portable Estelle Translator)
//! plays in the Tango tool chain from the SIGCOMM '95 paper: it turns
//! Estelle source text into a checked static model. The `estelle-runtime`
//! crate (the *Dingo* analog) then compiles that model into an executable
//! EFSM which the `tango` crate drives for trace analysis.
//!
//! ```
//! use estelle_frontend::analyze;
//!
//! let src = r#"
//!     specification tiny;
//!     channel C(user, server); by user: ping; by server: pong; end;
//!     module M process; ip P : C(server); end;
//!     body MB for M;
//!         state Idle;
//!         initialize to Idle begin end;
//!         trans
//!         from Idle to Idle when P.ping begin output P.pong; end;
//!     end;
//!     end.
//! "#;
//! let module = analyze(src).expect("valid specification");
//! assert_eq!(module.ips.len(), 1);
//! assert_eq!(module.transitions.len(), 1);
//! ```

pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use error::{FrontendError, FrontendResult, Phase};
pub use parser::{parse_expression, parse_specification};
pub use sema::{analyze, analyze_spec, AnalyzedModule, SemaOptions};
