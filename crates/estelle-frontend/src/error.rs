//! Frontend diagnostics.
//!
//! One error type covers the lexer, the parser and semantic analysis, so
//! callers (the CLI, the trace analyzer generator) deal with a single
//! `Result`. Each error carries a span; [`FrontendError::render`] formats it
//! against the source text with a line/column and a caret line.

use estelle_ast::Span;
use std::fmt;

/// Result alias used across the frontend.
pub type FrontendResult<T> = Result<T, FrontendError>;

/// A diagnostic from any frontend phase.
#[derive(Debug, Clone)]
pub struct FrontendError {
    pub phase: Phase,
    pub message: String,
    pub span: Span,
}

/// Which phase produced the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Sema,
}

impl FrontendError {
    pub fn lex(message: String, span: Span) -> Self {
        FrontendError {
            phase: Phase::Lex,
            message,
            span,
        }
    }

    pub fn parse(message: String, span: Span) -> Self {
        FrontendError {
            phase: Phase::Parse,
            message,
            span,
        }
    }

    pub fn sema(message: String, span: Span) -> Self {
        FrontendError {
            phase: Phase::Sema,
            message,
            span,
        }
    }

    /// Render the diagnostic against its source text:
    ///
    /// ```text
    /// error (parse) at 3:12: expected `;`, found keyword `end`
    ///    |   from s1 to s2 when A.x
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        format!(
            "error ({}) at {}:{}: {}\n   | {}\n   | {}^",
            phase,
            line,
            col,
            self.message,
            line_text,
            " ".repeat(col.saturating_sub(1)),
        )
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        write!(f, "{} error: {} (at {})", phase, self.message, self.span)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_offending_line() {
        let src = "line one\nline two here\nthree";
        let err = FrontendError::parse("boom".to_string(), Span::new(14, 17));
        let rendered = err.render(src);
        assert!(rendered.contains("at 2:6"));
        assert!(rendered.contains("line two here"));
        assert!(rendered.contains("boom"));
    }

    #[test]
    fn display_includes_phase() {
        let err = FrontendError::sema("bad".into(), Span::DUMMY);
        assert!(err.to_string().contains("sema error"));
    }
}
