//! The Estelle lexer.
//!
//! Handles Pascal-style comments — both `(* ... *)` and `{ ... }` — which do
//! not nest, case-insensitive keywords, integer literals, identifiers, and
//! the punctuation of the supported subset. Produces a complete token vector
//! up front (specifications are small; the parser wants lookahead).

use crate::error::{FrontendError, FrontendResult};
use crate::token::{Keyword, Token, TokenKind};
use estelle_ast::Span;

/// Tokenize an entire source text.
pub fn tokenize(source: &str) -> FrontendResult<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> FrontendResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(&b) = self.src.get(self.pos) else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start)?,
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'^' => self.single(TokenKind::Caret),
                b'=' => self.single(TokenKind::Eq),
                b':' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.pos += 2;
                        self.push(TokenKind::Assign, start);
                    } else {
                        self.single(TokenKind::Colon);
                    }
                }
                b'.' => {
                    if self.peek_at(1) == Some(b'.') {
                        self.pos += 2;
                        self.push(TokenKind::DotDot, start);
                    } else {
                        self.single(TokenKind::Dot);
                    }
                }
                b'<' => match self.peek_at(1) {
                    Some(b'=') => {
                        self.pos += 2;
                        self.push(TokenKind::Le, start);
                    }
                    Some(b'>') => {
                        self.pos += 2;
                        self.push(TokenKind::Ne, start);
                    }
                    _ => self.single(TokenKind::Lt),
                },
                b'>' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.pos += 2;
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.single(TokenKind::Gt);
                    }
                }
                other => {
                    return Err(FrontendError::lex(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start as u32, (start + 1) as u32),
                    ));
                }
            }
        }
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start);
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    /// Skip whitespace and both comment forms.
    fn skip_trivia(&mut self) -> FrontendResult<()> {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'{') => {
                    let start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.src.get(self.pos) {
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(FrontendError::lex(
                                    "unterminated `{ ... }` comment".to_string(),
                                    Span::new(start as u32, self.pos as u32),
                                ));
                            }
                        }
                    }
                }
                Some(b'(') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.src.get(self.pos) {
                            Some(b'*') if self.peek_at(1) == Some(b')') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(FrontendError::lex(
                                    "unterminated `(* ... *)` comment".to_string(),
                                    Span::new(start as u32, self.pos as u32),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.src.get(self.pos),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string();
        let kind = match Keyword::from_str(&text.to_ascii_lowercase()) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text),
        };
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) -> FrontendResult<()> {
        while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ASCII");
        let value: i64 = text.parse().map_err(|_| {
            FrontendError::lex(
                format!("integer literal `{}` out of range", text),
                Span::new(start as u32, self.pos as u32),
            )
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        let ks = kinds("module Lapd systemprocess;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Module),
                TokenKind::Ident("Lapd".to_string()),
                TokenKind::Keyword(Keyword::SystemProcess),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("BEGIN End"),
            vec![
                TokenKind::Keyword(Keyword::Begin),
                TokenKind::Keyword(Keyword::End),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds(":= <> <= >= .."),
            vec![
                TokenKind::Assign,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::DotDot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_vs_dotdot() {
        assert_eq!(
            kinds("a.b 0..7"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn both_comment_forms_skipped() {
        assert_eq!(
            kinds("a (* one *) b { two } c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(tokenize("begin (* no end").is_err());
        assert!(tokenize("begin { no end").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("a ? b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_point_into_source() {
        let toks = tokenize("state s1;").unwrap();
        assert_eq!(toks[1].span.slice("state s1;"), "s1");
    }

    #[test]
    fn huge_integer_rejected() {
        assert!(tokenize("99999999999999999999999999").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t  "), vec![TokenKind::Eof]);
    }
}
