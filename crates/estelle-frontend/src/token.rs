//! Tokens produced by the lexer.

use estelle_ast::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Token kinds. Keywords are distinguished from identifiers by the lexer
/// (Estelle keywords, like Pascal's, are reserved and case-insensitive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (lower-cased text is in the parallel `text` slot).
    Ident(String),
    /// Unsigned integer literal.
    Int(i64),
    /// Reserved word.
    Keyword(Keyword),

    // punctuation
    Semi,      // ;
    Colon,     // :
    Comma,     // ,
    Dot,       // .
    DotDot,    // ..
    LParen,    // (
    RParen,    // )
    LBracket,  // [
    RBracket,  // ]
    Assign,    // :=
    Eq,        // =
    Ne,        // <>
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    Plus,      // +
    Minus,     // -
    Star,      // *
    Caret,     // ^

    /// End of input.
    Eof,
}

/// Reserved words of the supported Estelle subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Specification,
    Channel,
    By,
    Module,
    Process,
    SystemProcess,
    Activity,
    SystemActivity,
    Ip,
    Individual,
    Common,
    Queue,
    Body,
    For,
    End,
    Const,
    Type,
    Var,
    State,
    StateSet,
    Initialize,
    Trans,
    From,
    To,
    Same,
    When,
    Provided,
    Priority,
    Delay,
    Any,
    Do,
    Name,
    Begin,
    If,
    Then,
    Else,
    While,
    Repeat,
    Until,
    DownTo,
    Case,
    Of,
    Output,
    Procedure,
    Function,
    Primitive,
    Record,
    Array,
    Set,
    New,
    Dispose,
    Not,
    And,
    Or,
    Div,
    Mod,
    In,
    Nil,
    True,
    False,
    Default,
    Timescale,
    Exist,
    Forone,
    All,
}

impl Keyword {
    /// Look up a keyword from a (lower-cased) identifier.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "specification" => Keyword::Specification,
            "channel" => Keyword::Channel,
            "by" => Keyword::By,
            "module" => Keyword::Module,
            "process" => Keyword::Process,
            "systemprocess" => Keyword::SystemProcess,
            "activity" => Keyword::Activity,
            "systemactivity" => Keyword::SystemActivity,
            "ip" => Keyword::Ip,
            "individual" => Keyword::Individual,
            "common" => Keyword::Common,
            "queue" => Keyword::Queue,
            "body" => Keyword::Body,
            "for" => Keyword::For,
            "end" => Keyword::End,
            "const" => Keyword::Const,
            "type" => Keyword::Type,
            "var" => Keyword::Var,
            "state" => Keyword::State,
            "stateset" => Keyword::StateSet,
            "initialize" => Keyword::Initialize,
            "trans" => Keyword::Trans,
            "from" => Keyword::From,
            "to" => Keyword::To,
            "same" => Keyword::Same,
            "when" => Keyword::When,
            "provided" => Keyword::Provided,
            "priority" => Keyword::Priority,
            "delay" => Keyword::Delay,
            "any" => Keyword::Any,
            "do" => Keyword::Do,
            "name" => Keyword::Name,
            "begin" => Keyword::Begin,
            "if" => Keyword::If,
            "then" => Keyword::Then,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "repeat" => Keyword::Repeat,
            "until" => Keyword::Until,
            "downto" => Keyword::DownTo,
            "case" => Keyword::Case,
            "of" => Keyword::Of,
            "output" => Keyword::Output,
            "procedure" => Keyword::Procedure,
            "function" => Keyword::Function,
            "primitive" => Keyword::Primitive,
            "record" => Keyword::Record,
            "array" => Keyword::Array,
            "set" => Keyword::Set,
            "new" => Keyword::New,
            "dispose" => Keyword::Dispose,
            "not" => Keyword::Not,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "div" => Keyword::Div,
            "mod" => Keyword::Mod,
            "in" => Keyword::In,
            "nil" => Keyword::Nil,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "default" => Keyword::Default,
            "timescale" => Keyword::Timescale,
            "exist" => Keyword::Exist,
            "forone" => Keyword::Forone,
            "all" => Keyword::All,
            _ => return None,
        })
    }

    /// The keyword's surface syntax.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Specification => "specification",
            Keyword::Channel => "channel",
            Keyword::By => "by",
            Keyword::Module => "module",
            Keyword::Process => "process",
            Keyword::SystemProcess => "systemprocess",
            Keyword::Activity => "activity",
            Keyword::SystemActivity => "systemactivity",
            Keyword::Ip => "ip",
            Keyword::Individual => "individual",
            Keyword::Common => "common",
            Keyword::Queue => "queue",
            Keyword::Body => "body",
            Keyword::For => "for",
            Keyword::End => "end",
            Keyword::Const => "const",
            Keyword::Type => "type",
            Keyword::Var => "var",
            Keyword::State => "state",
            Keyword::StateSet => "stateset",
            Keyword::Initialize => "initialize",
            Keyword::Trans => "trans",
            Keyword::From => "from",
            Keyword::To => "to",
            Keyword::Same => "same",
            Keyword::When => "when",
            Keyword::Provided => "provided",
            Keyword::Priority => "priority",
            Keyword::Delay => "delay",
            Keyword::Any => "any",
            Keyword::Do => "do",
            Keyword::Name => "name",
            Keyword::Begin => "begin",
            Keyword::If => "if",
            Keyword::Then => "then",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Repeat => "repeat",
            Keyword::Until => "until",
            Keyword::DownTo => "downto",
            Keyword::Case => "case",
            Keyword::Of => "of",
            Keyword::Output => "output",
            Keyword::Procedure => "procedure",
            Keyword::Function => "function",
            Keyword::Primitive => "primitive",
            Keyword::Record => "record",
            Keyword::Array => "array",
            Keyword::Set => "set",
            Keyword::New => "new",
            Keyword::Dispose => "dispose",
            Keyword::Not => "not",
            Keyword::And => "and",
            Keyword::Or => "or",
            Keyword::Div => "div",
            Keyword::Mod => "mod",
            Keyword::In => "in",
            Keyword::Nil => "nil",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Default => "default",
            Keyword::Timescale => "timescale",
            Keyword::Exist => "exist",
            Keyword::Forone => "forone",
            Keyword::All => "all",
        }
    }
}

impl TokenKind {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{}`", name),
            TokenKind::Int(v) => format!("integer `{}`", v),
            TokenKind::Keyword(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Dot => "`.`".to_string(),
            TokenKind::DotDot => "`..`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Assign => "`:=`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::Ne => "`<>`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Caret => "`^`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_round_trips() {
        for kw in [
            Keyword::Specification,
            Keyword::Trans,
            Keyword::Provided,
            Keyword::DownTo,
            Keyword::StateSet,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keywords_fall_through() {
        assert_eq!(Keyword::from_str("buffer1"), None);
        assert_eq!(Keyword::from_str(""), None);
    }
}
