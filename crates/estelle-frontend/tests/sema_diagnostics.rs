//! Semantic-analysis diagnostics: every rejection path produces a precise,
//! located message rather than a panic or a silent acceptance.

use estelle_frontend::analyze;

/// Wrap a body fragment in a standard single-module skeleton.
fn body(fragment: &str) -> String {
    format!(
        r#"
        specification s;
        channel C(env, m);
            by env: put(n : integer);
            by m: got(n : integer);
        end;
        module M process; ip P : C(m); end;
        body MB for M;
            {}
        end;
        end.
        "#,
        fragment
    )
}

fn expect_err(fragment: &str, needle: &str) {
    let src = body(fragment);
    let err = analyze(&src).expect_err(&format!("expected rejection mentioning `{}`", needle));
    let msg = err.to_string();
    assert!(
        msg.contains(needle),
        "expected `{}` in diagnostic, got: {}",
        needle,
        msg
    );
    // The rendered form points into the source.
    let rendered = err.render(&src);
    assert!(rendered.contains('^'));
}

const OK_PRELUDE: &str = "state S; initialize to S begin end;";

#[test]
fn unknown_type() {
    expect_err("var x : widget; state S; initialize to S begin end;", "unknown type");
}

#[test]
fn unknown_variable() {
    expect_err(
        "state S; initialize to S begin ghost := 1 end;",
        "unknown name",
    );
}

#[test]
fn assignment_type_mismatch() {
    expect_err(
        "var b : boolean; state S; initialize to S begin b := 3 end;",
        "cannot assign",
    );
}

#[test]
fn condition_must_be_boolean() {
    expect_err(
        "var n : integer; state S; initialize to S begin n := 1; if n then n := 2 end;",
        "expected boolean",
    );
}

#[test]
fn arithmetic_needs_integers() {
    expect_err(
        "var n : integer; state S; initialize to S begin n := 1 + true end;",
        "expected integer",
    );
}

#[test]
fn enum_comparison_across_types_rejected() {
    expect_err(
        "type a = (x1, x2); type b = (y1, y2);
         var p : a; q : b; ok : boolean;
         state S; initialize to S begin p := x1; q := y1; ok := p = q end;",
        "cannot compare",
    );
}

#[test]
fn duplicate_state() {
    expect_err("state S, S; initialize to S begin end;", "duplicate state");
}

#[test]
fn duplicate_variable() {
    expect_err(
        &format!("var n, n : integer; {}", OK_PRELUDE),
        "duplicate variable",
    );
}

#[test]
fn duplicate_enum_literal_across_types() {
    expect_err(
        &format!("type a = (dup); type b = (dup); {}", OK_PRELUDE),
        "duplicate enum literal",
    );
}

#[test]
fn unknown_state_in_transition() {
    expect_err(
        "state S; initialize to S begin end;
         trans from S to Nowhere begin end;",
        "unknown state",
    );
}

#[test]
fn unknown_ip_in_when() {
    expect_err(
        "state S; initialize to S begin end;
         trans from S to S when Q.put begin end;",
        "unknown interaction point",
    );
}

#[test]
fn when_on_sending_direction_rejected() {
    // `got` is sent by the module; it can never be received.
    expect_err(
        "state S; initialize to S begin end;
         trans from S to S when P.got begin end;",
        "cannot be received",
    );
}

#[test]
fn output_on_receiving_direction_rejected() {
    expect_err(
        "state S; initialize to S begin output P.put(1) end;",
        "cannot be sent",
    );
}

#[test]
fn output_arity_checked() {
    expect_err(
        "state S; initialize to S begin output P.got end;",
        "parameter",
    );
}

#[test]
fn provided_must_be_boolean() {
    expect_err(
        "state S; initialize to S begin end;
         trans from S to S when P.put provided n begin end;",
        "expected boolean",
    );
}

#[test]
fn priority_must_be_constant() {
    expect_err(
        "var k : integer; state S; initialize to S begin k := 1 end;
         trans from S to S priority k begin end;",
        "not a constant",
    );
}

#[test]
fn case_label_type_checked() {
    expect_err(
        "type color = (red, green);
         var c : color; state S;
         initialize to S begin c := red; case c of 3 : c := green end end;",
        "case label",
    );
}

#[test]
fn for_variable_must_be_ordinal() {
    expect_err(
        "type cell = record v : integer end;
         var r : cell; state S;
         initialize to S begin for r := 1 to 3 do r.v := 1 end;",
        "ordinal",
    );
}

#[test]
fn new_requires_pointer() {
    expect_err(
        "var n : integer; state S; initialize to S begin new(n) end;",
        "non-pointer",
    );
}

#[test]
fn function_used_as_procedure_rejected() {
    expect_err(
        "function f : integer; begin f := 1 end;
         state S; initialize to S begin f end;",
        "is a function",
    );
}

#[test]
fn procedure_used_as_function_rejected() {
    expect_err(
        "var n : integer;
         procedure p; begin n := 0 end;
         state S; initialize to S begin n := p end;",
        "unknown name",
    );
}

#[test]
fn call_arity_checked() {
    expect_err(
        "var n : integer;
         function inc(v : integer) : integer; begin inc := v + 1 end;
         state S; initialize to S begin n := inc(1, 2) end;",
        "argument",
    );
}

#[test]
fn var_parameter_needs_lvalue() {
    expect_err(
        "var n : integer;
         procedure bump(var v : integer); begin v := v + 1 end;
         state S; initialize to S begin n := 0; bump(n + 1) end;",
        "variable argument",
    );
}

#[test]
fn empty_subrange_rejected() {
    expect_err(&format!("type bad = 5..2; {}", OK_PRELUDE), "empty subrange");
}

#[test]
fn set_base_must_be_small() {
    expect_err(
        &format!("type huge = set of 0..100000; {}", OK_PRELUDE),
        "too large",
    );
}

#[test]
fn array_index_must_be_finite() {
    expect_err(
        &format!("var a : array [integer] of boolean; {}", OK_PRELUDE),
        "finite ordinal",
    );
}

#[test]
fn nil_only_meets_pointers() {
    expect_err(
        "var n : integer; state S; initialize to S begin n := nil end;",
        "non-pointer",
    );
}

#[test]
fn stateset_members_must_exist() {
    expect_err(
        "state S; stateset Bad = [S, Ghost]; initialize to S begin end;",
        "unknown state",
    );
}

#[test]
fn warnings_do_not_block_analysis() {
    let src = body(
        "state S, Island; initialize to S begin end;
         trans from S to S when P.put begin end;",
    );
    let m = analyze(&src).expect("warnings are not errors");
    assert!(m.warnings.iter().any(|w| w.contains("Island")));
}
