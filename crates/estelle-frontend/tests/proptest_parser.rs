//! Property tests for the parser and pretty printer.
//!
//! Core property: `print ∘ parse` is idempotent — parsing pretty-printed
//! output reproduces the same tree (modulo spans), so printing again
//! yields byte-identical text. Checked on randomly generated expressions
//! and on every bundled specification.

use estelle_ast::expr::SetElem;
use estelle_ast::print::{print_expr, print_specification};
use estelle_ast::{BinOp, Expr, ExprKind, Ident, Span, UnOp};
use estelle_frontend::{parse_expression, parse_specification};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = Ident> {
    prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("buf1"),
        Just("Count"),
        Just("x_y"),
    ]
    .prop_map(Ident::synthetic)
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..10_000).prop_map(|v| Expr::new(ExprKind::IntLit(v), Span::DUMMY)),
        any::<bool>().prop_map(|b| Expr::new(ExprKind::BoolLit(b), Span::DUMMY)),
        Just(Expr::new(ExprKind::NilLit, Span::DUMMY)),
        ident_strategy().prop_map(Expr::name),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            // Binary operators.
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::In),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::new(
                    ExprKind::Binary(op, Box::new(l), Box::new(r)),
                    Span::DUMMY
                )),
            // Unary operators.
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Plus), Just(UnOp::Not)],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::new(
                    ExprKind::Unary(op, Box::new(e)),
                    Span::DUMMY
                )),
            // Postfix forms.
            (inner.clone(), ident_strategy()).prop_map(|(b, f)| Expr::new(
                ExprKind::Field(Box::new(b), f),
                Span::DUMMY
            )),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::new(
                ExprKind::Index(Box::new(b), Box::new(i)),
                Span::DUMMY
            )),
            inner
                .clone()
                .prop_map(|b| Expr::new(ExprKind::Deref(Box::new(b)), Span::DUMMY)),
            // Calls.
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                |(name, args)| Expr::new(ExprKind::Call(name, args), Span::DUMMY)
            ),
            // Set constructors.
            prop::collection::vec(
                prop_oneof![
                    inner.clone().prop_map(SetElem::Single),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| SetElem::Range(a, b)),
                ],
                0..3
            )
            .prop_map(|elems| Expr::new(ExprKind::SetCtor(elems), Span::DUMMY)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(parse(print(e))) == print(e) for arbitrary expression trees.
    #[test]
    fn expr_print_parse_idempotent(e in expr_strategy()) {
        let printed = print_expr(&e);
        let reparsed = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("`{}` failed to reparse: {}", printed, err));
        prop_assert_eq!(print_expr(&reparsed), printed);
    }
}

/// The postfix chain `a.b[c]^` must survive a round trip with structure
/// intact (regression guard: Dot vs DotDot, call-vs-paren ambiguities).
#[test]
fn postfix_chain_structure_preserved() {
    let printed = "alpha.beta[3]^";
    let e = parse_expression(printed).unwrap();
    assert_eq!(print_expr(&e), printed);
}

#[test]
fn bundled_specifications_round_trip() {
    for (name, src) in [
        ("tiny", TINY),
        ("rich", RICH),
    ] {
        let spec1 = parse_specification(src)
            .unwrap_or_else(|e| panic!("{}: {}", name, e.render(src)));
        let printed1 = print_specification(&spec1);
        let spec2 = parse_specification(&printed1)
            .unwrap_or_else(|e| panic!("{} (printed): {}", name, e.render(&printed1)));
        let printed2 = print_specification(&spec2);
        assert_eq!(printed1, printed2, "{} is not print-stable", name);
    }
}

const TINY: &str = r#"
specification tiny;
channel C(a, b); by a: x; end;
module M process; ip P : C(b); end;
body MB for M;
    state S;
    initialize to S begin end;
    trans from S to S when P.x begin end;
end;
end.
"#;

const RICH: &str = r#"
specification rich;
const size = 8;
type seq = 0..7;
type kind = (alpha, beta, gamma);
channel C(user, provider);
    by user: put(k : kind; n : seq);
    by provider: got(n : seq);
end;
module M systemprocess; ip P : C(provider); end;
body MB for M;
    type cell = record v : seq; next : ^cell end;
    var head, tmp : ^cell;
        total : integer;
        flags : set of seq;
    state Empty, Holding;
    stateset Any_state = [Empty, Holding];

    function depth(start : integer) : integer;
        var d : integer;
    begin
        d := start;
        while d < size do d := d + 1;
        depth := d
    end;

    procedure note(n : seq);
    begin
        if n in [0, 2, 4, 6] then total := total + 1
        else total := total - 1
    end;

    initialize to Empty begin
        head := nil; tmp := nil; total := 0; flags := [];
    end;

    trans
    from Empty to Holding when P.put provided k <> gamma name Stash:
    begin
        new(tmp);
        tmp^.v := n;
        tmp^.next := head;
        head := tmp;
        note(n);
        case k of
            alpha : flags := [n];
            beta : flags := [0..3]
        else
            total := depth(total)
        end;
    end;
    from Holding to Empty provided head <> nil name Pop:
    begin
        output P.got(head^.v);
        tmp := head;
        head := head^.next;
        dispose(tmp);
        for total := 1 downto 0 do tmp := nil;
        repeat total := total + 1 until total > 0;
    end;
    from Any_state to same when P.put provided k = gamma priority 1 name Skip:
    begin end;
end;
end.
"#;

/// The rich spec must also pass full semantic analysis and compile.
#[test]
fn rich_spec_analyzes_and_survives_normalization_roundtrip() {
    let module = estelle_frontend::analyze(RICH).expect("analyzes");
    assert_eq!(module.states.len(), 2);
    assert_eq!(module.routines.len(), 2);
    assert_eq!(module.declared_transition_count(), 3);
}
