//! Randomized-sweep tests for the parser and pretty printer.
//!
//! Core property: `print ∘ parse` is idempotent — parsing pretty-printed
//! output reproduces the same tree (modulo spans), so printing again
//! yields byte-identical text. Checked on randomly generated expressions
//! and on every bundled specification.
//!
//! Formerly `proptest`-based; now deterministic seeded sweeps (the
//! workspace builds offline with no registry dependencies).

use estelle_ast::expr::SetElem;
use estelle_ast::print::{print_expr, print_specification};
use estelle_ast::{BinOp, Expr, ExprKind, Ident, Span, UnOp};
use estelle_frontend::{parse_expression, parse_specification};

/// Minimal SplitMix64 for reproducible pseudo-random sweeps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn arb_ident(rng: &mut Rng) -> Ident {
    Ident::synthetic(["alpha", "beta", "buf1", "Count", "x_y"][rng.index(5)])
}

fn arb_leaf(rng: &mut Rng) -> Expr {
    match rng.index(4) {
        0 => Expr::new(ExprKind::IntLit(rng.index(10_000) as i64), Span::DUMMY),
        1 => Expr::new(ExprKind::BoolLit(rng.index(2) == 0), Span::DUMMY),
        2 => Expr::new(ExprKind::NilLit, Span::DUMMY),
        _ => Expr::name(arb_ident(rng)),
    }
}

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::And,
    BinOp::Or,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::In,
];

fn arb_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 {
        return arb_leaf(rng);
    }
    match rng.index(8) {
        0 => arb_leaf(rng),
        1 => {
            let op = BINOPS[rng.index(BINOPS.len())];
            let l = arb_expr(rng, depth - 1);
            let r = arb_expr(rng, depth - 1);
            Expr::new(ExprKind::Binary(op, Box::new(l), Box::new(r)), Span::DUMMY)
        }
        2 => {
            let op = [UnOp::Neg, UnOp::Plus, UnOp::Not][rng.index(3)];
            Expr::new(
                ExprKind::Unary(op, Box::new(arb_expr(rng, depth - 1))),
                Span::DUMMY,
            )
        }
        3 => Expr::new(
            ExprKind::Field(Box::new(arb_expr(rng, depth - 1)), arb_ident(rng)),
            Span::DUMMY,
        ),
        4 => Expr::new(
            ExprKind::Index(
                Box::new(arb_expr(rng, depth - 1)),
                Box::new(arb_expr(rng, depth - 1)),
            ),
            Span::DUMMY,
        ),
        5 => Expr::new(
            ExprKind::Deref(Box::new(arb_expr(rng, depth - 1))),
            Span::DUMMY,
        ),
        6 => {
            let args = (0..rng.index(3)).map(|_| arb_expr(rng, depth - 1)).collect();
            Expr::new(ExprKind::Call(arb_ident(rng), args), Span::DUMMY)
        }
        _ => {
            let elems = (0..rng.index(3))
                .map(|_| {
                    if rng.index(2) == 0 {
                        SetElem::Single(arb_expr(rng, depth - 1))
                    } else {
                        SetElem::Range(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1))
                    }
                })
                .collect();
            Expr::new(ExprKind::SetCtor(elems), Span::DUMMY)
        }
    }
}

/// print(parse(print(e))) == print(e) for arbitrary expression trees.
#[test]
fn expr_print_parse_idempotent() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed);
        let depth = 1 + rng.index(4);
        let e = arb_expr(&mut rng, depth);
        let printed = print_expr(&e);
        let reparsed = parse_expression(&printed).unwrap_or_else(|err| {
            panic!("seed {}: `{}` failed to reparse: {}", seed, printed, err)
        });
        assert_eq!(print_expr(&reparsed), printed, "seed {}", seed);
    }
}

/// The postfix chain `a.b[c]^` must survive a round trip with structure
/// intact (regression guard: Dot vs DotDot, call-vs-paren ambiguities).
#[test]
fn postfix_chain_structure_preserved() {
    let printed = "alpha.beta[3]^";
    let e = parse_expression(printed).unwrap();
    assert_eq!(print_expr(&e), printed);
}

#[test]
fn bundled_specifications_round_trip() {
    for (name, src) in [
        ("tiny", TINY),
        ("rich", RICH),
    ] {
        let spec1 = parse_specification(src)
            .unwrap_or_else(|e| panic!("{}: {}", name, e.render(src)));
        let printed1 = print_specification(&spec1);
        let spec2 = parse_specification(&printed1)
            .unwrap_or_else(|e| panic!("{} (printed): {}", name, e.render(&printed1)));
        let printed2 = print_specification(&spec2);
        assert_eq!(printed1, printed2, "{} is not print-stable", name);
    }
}

const TINY: &str = r#"
specification tiny;
channel C(a, b); by a: x; end;
module M process; ip P : C(b); end;
body MB for M;
    state S;
    initialize to S begin end;
    trans from S to S when P.x begin end;
end;
end.
"#;

const RICH: &str = r#"
specification rich;
const size = 8;
type seq = 0..7;
type kind = (alpha, beta, gamma);
channel C(user, provider);
    by user: put(k : kind; n : seq);
    by provider: got(n : seq);
end;
module M systemprocess; ip P : C(provider); end;
body MB for M;
    type cell = record v : seq; next : ^cell end;
    var head, tmp : ^cell;
        total : integer;
        flags : set of seq;
    state Empty, Holding;
    stateset Any_state = [Empty, Holding];

    function depth(start : integer) : integer;
        var d : integer;
    begin
        d := start;
        while d < size do d := d + 1;
        depth := d
    end;

    procedure note(n : seq);
    begin
        if n in [0, 2, 4, 6] then total := total + 1
        else total := total - 1
    end;

    initialize to Empty begin
        head := nil; tmp := nil; total := 0; flags := [];
    end;

    trans
    from Empty to Holding when P.put provided k <> gamma name Stash:
    begin
        new(tmp);
        tmp^.v := n;
        tmp^.next := head;
        head := tmp;
        note(n);
        case k of
            alpha : flags := [n];
            beta : flags := [0..3]
        else
            total := depth(total)
        end;
    end;
    from Holding to Empty provided head <> nil name Pop:
    begin
        output P.got(head^.v);
        tmp := head;
        head := head^.next;
        dispose(tmp);
        for total := 1 downto 0 do tmp := nil;
        repeat total := total + 1 until total > 0;
    end;
    from Any_state to same when P.put provided k = gamma priority 1 name Skip:
    begin end;
end;
end.
"#;

/// The rich spec must also pass full semantic analysis and compile.
#[test]
fn rich_spec_analyzes_and_survives_normalization_roundtrip() {
    let module = estelle_frontend::analyze(RICH).expect("analyzes");
    assert_eq!(module.states.len(), 2);
    assert_eq!(module.routines.len(), 2);
    assert_eq!(module.declared_transition_count(), 3);
}
