//! Robustness: no input may panic the frontend. Errors are fine —
//! crashes are not. This is the fuzzing contract for a tool whose input
//! is arbitrary user-written Estelle.
//!
//! Formerly `proptest`-based; now deterministic seeded sweeps (the
//! workspace builds offline with no registry dependencies).

use estelle_frontend::{analyze, parse_specification};

/// Minimal SplitMix64 for reproducible pseudo-random sweeps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn arb_text(rng: &mut Rng, max_len: usize) -> String {
    // Printable ASCII plus the token soup most likely to confuse an
    // Estelle lexer, plus some multibyte characters.
    const EXTRA: &[&str] = &[
        "specification", "end", "begin", "trans", "..", ":=", "^", "§", "λ", "\t", "\n", "{",
        "}", "(*", "*)",
    ];
    let len = rng.index(max_len + 1);
    let mut out = String::new();
    for _ in 0..len {
        if rng.index(8) == 0 {
            out.push_str(EXTRA[rng.index(EXTRA.len())]);
        } else {
            out.push((b' ' + rng.index(95) as u8) as char);
        }
    }
    out
}

/// Arbitrary printable garbage never panics the lexer/parser/sema.
#[test]
fn arbitrary_text_never_panics() {
    for seed in 0..512u64 {
        let text = arb_text(&mut Rng(seed), 400);
        let _ = analyze(&text);
    }
}

/// Arbitrary bytes interpreted as (lossy) UTF-8 never panic either.
#[test]
fn arbitrary_bytes_never_panic() {
    for seed in 0..512u64 {
        let mut rng = Rng(seed);
        let bytes: Vec<u8> = (0..rng.index(400)).map(|_| rng.next() as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = analyze(&text);
    }
}

/// Mutations of a valid specification — deletions, duplications,
/// splices — never panic; they parse, fail to parse, or fail sema.
#[test]
fn mutated_valid_specs_never_panic() {
    const BASE: &str = r#"
        specification mutant;
        const max = 7;
        type seq = 0..7;
        channel C(env, m);
            by env: put(n : seq);
            by m: got(n : seq);
        end;
        module M process; ip P : C(m); end;
        body MB for M;
            var total : integer;
            state S1, S2;
            initialize to S1 begin total := 0 end;
            trans
            from S1 to S2 when P.put provided n < max name T1:
            begin
                total := total + n;
                output P.got(n);
            end;
            from S2 to S1 name T2: begin output P.got(0) end;
        end;
        end.
    "#;
    for seed in 0..512u64 {
        let mut rng = Rng(seed);
        let cut_start = rng.index(600);
        let cut_len = rng.index(120);
        let splice = arb_text(&mut rng, 30);
        let mut text = BASE.to_string();
        let start = cut_start.min(text.len());
        let end = (start + cut_len).min(text.len());
        // Keep the cut on char boundaries.
        let start = (0..=start).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        let end = (end..=text.len()).find(|&i| text.is_char_boundary(i)).unwrap();
        text.replace_range(start..end, &splice);
        let _ = analyze(&text);
    }
}

/// Deeply nested expressions must not blow the parser stack.
#[test]
fn deep_nesting_is_rejected_or_parsed_without_crash() {
    for depth in (0usize..600).step_by(23) {
        let expr = format!("{}{}{}", "(".repeat(depth), "1", ")".repeat(depth));
        let src = format!(
            "specification d; module M process; end; body B for M; \
             var x : integer; state S; initialize to S begin x := {} end; end; end.",
            expr
        );
        let _ = parse_specification(&src);
    }
}
