//! Robustness: no input may panic the frontend. Errors are fine —
//! crashes are not. This is the fuzzing contract for a tool whose input
//! is arbitrary user-written Estelle.

use estelle_frontend::{analyze, parse_specification};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary printable garbage never panics the lexer/parser/sema.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,400}") {
        let _ = analyze(&text);
    }

    /// Arbitrary bytes interpreted as (lossy) UTF-8 never panic either.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = analyze(&text);
    }

    /// Mutations of a valid specification — deletions, duplications,
    /// splices — never panic; they parse, fail to parse, or fail sema.
    #[test]
    fn mutated_valid_specs_never_panic(
        cut_start in 0usize..600,
        cut_len in 0usize..120,
        splice in "\\PC{0,30}",
    ) {
        const BASE: &str = r#"
            specification mutant;
            const max = 7;
            type seq = 0..7;
            channel C(env, m);
                by env: put(n : seq);
                by m: got(n : seq);
            end;
            module M process; ip P : C(m); end;
            body MB for M;
                var total : integer;
                state S1, S2;
                initialize to S1 begin total := 0 end;
                trans
                from S1 to S2 when P.put provided n < max name T1:
                begin
                    total := total + n;
                    output P.got(n);
                end;
                from S2 to S1 name T2: begin output P.got(0) end;
            end;
            end.
        "#;
        let mut text = BASE.to_string();
        let start = cut_start.min(text.len());
        let end = (start + cut_len).min(text.len());
        // Keep the cut on char boundaries.
        let start = (0..=start).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        let end = (end..=text.len()).find(|&i| text.is_char_boundary(i)).unwrap();
        text.replace_range(start..end, &splice);
        let _ = analyze(&text);
    }

    /// Deeply nested expressions must not blow the parser stack.
    #[test]
    fn deep_nesting_is_rejected_or_parsed_without_crash(depth in 0usize..600) {
        let expr = format!("{}{}{}", "(".repeat(depth), "1", ")".repeat(depth));
        let src = format!(
            "specification d; module M process; end; body B for M; \
             var x : integer; state S; initialize to S begin x := {} end; end; end.",
            expr
        );
        let _ = parse_specification(&src);
    }
}
