//! Quickstart: generate a trace analyzer from an Estelle specification
//! and check a couple of traces against it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tango::{AnalysisOptions, ChoicePolicy, ScriptedInput, Tango};
use tango_repro::runtime::Value;

/// A tiny stop-and-wait style responder: every `req(n)` is answered with
/// `rsp(n+1)`, and a `reset` returns the counter check to zero.
const SPEC: &str = r#"
specification quickstart;

channel C(env, m);
    by env: req(n : integer); reset;
    by m: rsp(n : integer);
end;

module M process;
    ip P : C(m);
end;

body MB for M;
    var last : integer;
    state Ready;

    initialize to Ready begin last := 0 end;

    trans
    from Ready to Ready when P.req provided n >= last name Answer:
    begin
        last := n;
        output P.rsp(n + 1);
    end;
    from Ready to Ready when P.reset name Reset:
    begin
        last := 0;
    end;
end;
end.
"#;

fn main() {
    // 1. Run the generator: parse, semantic-check, compile.
    let analyzer = Tango::generate(SPEC).expect("specification is valid");
    println!(
        "generated a TAM for `{}`: {} states, {} compiled transitions",
        analyzer.module().module_name,
        analyzer.module().states.len(),
        analyzer.machine.module.transition_count(),
    );

    // 2. A trace that the specification explains.
    let valid = "\
in  P.req(3)
out P.rsp(4)
in  P.req(7)
out P.rsp(8)
in  P.reset
in  P.req(1)
out P.rsp(2)
";
    let report = analyzer
        .analyze_text(valid, &AnalysisOptions::default())
        .expect("trace parses");
    println!("\nvalid trace    -> {}", report);
    println!("   witness: {}", report.witness.unwrap().join(" -> "));

    // 3. The same trace with one wrong response parameter.
    let invalid = valid.replace("rsp(8)", "rsp(9)");
    let report = analyzer
        .analyze_text(&invalid, &AnalysisOptions::default())
        .expect("trace parses");
    println!("tampered trace -> {}", report);

    // 4. Implementation-generation mode: let the specification produce a
    //    trace itself, then re-check it (valid by construction).
    let script = vec![
        ScriptedInput::new("P", "req", vec![Value::Int(10)]),
        ScriptedInput::new("P", "req", vec![Value::Int(11)]),
        ScriptedInput::new("P", "reset", vec![]),
    ];
    let generated = analyzer
        .generate_trace(&script, ChoicePolicy::First, 1000)
        .expect("workload runs");
    let report = analyzer
        .analyze(&generated, &AnalysisOptions::default())
        .expect("analysis runs");
    println!(
        "self-generated trace of {} events -> {}",
        generated.len(),
        report.verdict
    );
}
