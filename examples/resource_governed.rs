//! Resource-governed analysis: deadlines, memory budgets and
//! checkpoint/resume.
//!
//! A batch analyzer cannot let one pathological trace monopolize the
//! machine (§4.2's exponential blowups). This example runs an invalid TP0
//! trace under a deliberately tiny wall-clock deadline, gets an
//! `Inconclusive(TimeLimit)` verdict with a resumable checkpoint, and
//! continues the same search with the limit lifted. The resumed run
//! reaches the conclusive verdict with exactly the TE/GE/RE/SA totals an
//! uninterrupted run would have reported, so budgeted batch figures stay
//! comparable with the paper's tables.
//!
//! ```sh
//! cargo run --example resource_governed
//! ```

use std::time::Duration;
use tango::{AnalysisOptions, Verdict};
use tango_repro::protocols::tp0;

fn main() {
    let analyzer = tp0::analyzer();
    let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(4, 4, 1))
        .expect("the complete trace has a data output to corrupt");

    // Reference: the same analysis with no limits at all.
    let options = AnalysisOptions::default();
    let straight = analyzer.analyze(&bad, &options).expect("trace analyzable");
    println!("uninterrupted: {}", straight);

    // Now with a 1µs deadline: the search stops almost immediately.
    let mut tight = options.clone();
    tight.limits.max_wall_time = Some(Duration::from_micros(1));
    let stopped = analyzer.analyze(&bad, &tight).expect("trace analyzable");
    println!("under deadline: {}", stopped);
    let checkpoint = *stopped
        .checkpoint
        .expect("a limit-stopped static analysis is resumable");
    println!(
        "checkpoint: depth {}, {} pending frame(s), {} so far",
        checkpoint.depth(),
        checkpoint.pending_frames(),
        checkpoint.stats()
    );

    // Resume with the deadline lifted; counters continue, not restart.
    let resumed = analyzer
        .analyze_resume(checkpoint, &options)
        .expect("trace analyzable");
    println!("after resume:  {}", resumed);

    assert_eq!(straight.verdict, Verdict::Invalid);
    assert_eq!(resumed.verdict, straight.verdict);
    assert_eq!(
        (
            resumed.stats.transitions_executed,
            resumed.stats.generates,
            resumed.stats.restores,
            resumed.stats.saves,
        ),
        (
            straight.stats.transitions_executed,
            straight.stats.generates,
            straight.stats.restores,
            straight.stats.saves,
        ),
        "stop + resume must match the uninterrupted run exactly"
    );
    println!("stop/resume totals match the uninterrupted run");
}
