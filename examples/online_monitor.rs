//! On-line trace analysis (paper §3): a live monitor attached to a
//! running implementation.
//!
//! A feeder thread plays the implementation under test, pushing the
//! paper's §3.1 `ack` scenario event by event. The analyzer runs MDFS in
//! dynamic mode: when the greedy path dead-ends on a temporarily empty
//! queue it parks PG-nodes instead of deadlocking, revives them as data
//! arrives, and reports interim verdicts until the trace is closed.
//!
//! ```sh
//! cargo run --example online_monitor
//! ```

use std::thread;
use std::time::Duration;
use tango::{AnalysisOptions, ChannelSource, Event, Feed, OrderOptions, Verdict};
use tango_repro::protocols::ack;

fn main() {
    let analyzer = ack::analyzer();
    let (tx, mut source) = ChannelSource::pair();

    // The IUT produces the paper's scenario: x x at A, y at B, the ack,
    // then one more x, then closes the connection.
    let feeder = thread::spawn(move || {
        let script = [
            Event::input("A", "x", vec![]),
            Event::input("A", "x", vec![]),
            Event::input("B", "y", vec![]),
            Event::output("A", "ack", vec![]),
            Event::input("A", "x", vec![]),
        ];
        for e in script {
            println!("  IUT: {} {}.{}", e.dir, e.ip, e.interaction);
            tx.send(Feed::Event(e)).unwrap();
            thread::sleep(Duration::from_millis(20));
        }
        println!("  IUT: closing the trace");
        tx.send(Feed::Eof).unwrap();
    });

    let options = AnalysisOptions::with_order(OrderOptions::none());
    let report = analyzer
        .analyze_online(&mut source, &options, &mut |status| {
            println!("monitor: interim verdict = {}", status);
            true
        })
        .expect("online analysis runs");
    feeder.join().unwrap();

    println!("\nfinal verdict: {}", report.verdict);
    println!("fired path: {}", report.witness.unwrap().join(" -> "));
    println!(
        "search effort: {} (PG-nodes parked: {})",
        report.stats, report.stats.pg_nodes
    );
    assert_eq!(report.verdict, Verdict::Valid);
}
