//! Partial-trace analysis (paper §5).
//!
//! §4.1 motivates it: "often, it is desired to analyze only the packets
//! transmitted at the lower interface of the LAPD module … because the
//! interactions passing between the user module and the LAPD module are
//! not necessarily observable."
//!
//! This example records a full LAPD session, throws away everything seen
//! at the upper interface `U`, and re-analyzes the lower-interface-only
//! trace with `U` declared *unobserved*: `when U.*` clauses fire with
//! fabricated interactions whose parameters are undefined (§5.2), and
//! undefined values propagate and match anything (§5.1).
//!
//! ```sh
//! cargo run --example partial_trace --release
//! ```

use tango::{AnalysisOptions, Dir, OrderOptions, Trace, Verdict};
use tango_repro::protocols::lapd;
use tango_repro::runtime::Value;

fn main() {
    let analyzer = lapd::analyzer();

    // A complete observation of a session: both interfaces visible.
    let full = lapd::valid_trace(5, 0, 77);
    println!("full trace: {} events", full.len());

    // The monitor on the line only sees IP `L`.
    let lower_only = Trace::new(
        full.events
            .iter()
            .filter(|e| e.ip.eq_ignore_ascii_case("L"))
            .cloned()
            .collect(),
    );
    println!(
        "lower-interface trace: {} events (the {} U events are unobservable)",
        lower_only.len(),
        full.len() - lower_only.len()
    );

    // Partial analysis: U unobserved, undefined values propagate.
    let options = AnalysisOptions::with_order(OrderOptions::none()).unobserved_ip("U");
    let report = analyzer
        .analyze(&lower_only, &options)
        .expect("analysis runs");
    println!("partial analysis verdict: {}", report.verdict);
    assert_eq!(report.verdict, Verdict::Valid);
    println!(
        "fabricated-input path: {}",
        report.witness.as_ref().unwrap().join(" -> ")
    );

    // Sensitivity check: corrupt a sequence number on the line. The
    // partial analyzer must still catch protocol violations that do not
    // depend on the unobserved parameters. Refuting a partial trace means
    // exhausting every fabrication the unobserved IP allows — §5.4 warns
    // this "will make partial trace analysis of some specifications very
    // difficult, if not impossible" — so we bound the fabrication chains
    // tightly (the LAPD spec never needs more than two barren steps
    // between observable events) and cap the search.
    let mut bad = lower_only.clone();
    let idx = bad
        .events
        .iter()
        .position(|e| e.dir == Dir::Out && e.interaction == "iframe")
        .expect("trace has an I-frame");
    if let Value::Int(ns) = bad.events[idx].params[0] {
        bad.events[idx].params[0] = Value::Int((ns + 5) % 8);
    }
    let mut strict = options.clone();
    strict.limits.max_barren_steps = 4;
    strict.limits.max_transitions = 10_000_000;
    let report = analyzer.analyze(&bad, &strict).expect("analysis runs");
    println!(
        "corrupted N(S) on the line -> {}  ({} fabrication chains cut)",
        report.verdict, report.stats.barren_prunes
    );
    assert!(
        !report.verdict.is_valid(),
        "a corrupted sequence number must not verify"
    );
}
