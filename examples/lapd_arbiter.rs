//! LAPD interoperability arbiter (the paper's second motivating use
//! case): "take two human-generated implementations … and test the
//! interoperability between them, in which case a trace analyzer could
//! act as an 'arbiter' and provide diagnostic information about the
//! behaviour of each implementation."
//!
//! Two "vendor implementations" are played by the generated LAPD
//! implementation under different nondeterministic schedules (seeds).
//! Both produce different-looking traces; the arbiter accepts both. A
//! third, buggy implementation acknowledges with the wrong sequence
//! number — the arbiter pinpoints it.
//!
//! ```sh
//! cargo run --example lapd_arbiter --release
//! ```

use tango::{AnalysisOptions, Dir, OrderOptions, Verdict};
use tango_repro::protocols::lapd;
use tango_repro::runtime::Value;

fn main() {
    let arbiter = lapd::analyzer();
    let options = AnalysisOptions::with_order(OrderOptions::full());

    println!("arbiter: LAPD TAM with {} compiled transitions\n",
        arbiter.machine.module.transition_count());

    // Vendor A and vendor B: same workload, different internal schedules.
    for (vendor, seed) in [("vendor A", 11u64), ("vendor B", 23u64)] {
        let trace = lapd::valid_trace(6, 4, seed);
        let rr_count = trace
            .events
            .iter()
            .filter(|e| e.dir == Dir::Out && e.interaction == "rr")
            .count();
        let report = arbiter.analyze(&trace, &options).expect("analysis runs");
        println!(
            "{}: {} events, {} explicit RR acks -> {}",
            vendor,
            trace.len(),
            rr_count,
            report.verdict
        );
        assert_eq!(report.verdict, Verdict::Valid);
    }

    // Vendor C "implements" LAPD with an off-by-one receive counter: its
    // REJ carries the wrong N(R).
    let mut trace = lapd::valid_trace(6, 4, 31);
    let mut tampered = false;
    for e in trace.events.iter_mut() {
        if e.dir == Dir::Out && e.interaction == "iframe" {
            // Corrupt the piggybacked N(R) of the last I-frame.
            if let Value::Int(nr) = e.params[1] {
                e.params[1] = Value::Int((nr + 3) % 8);
                tampered = true;
            }
        }
    }
    assert!(tampered, "workload produced no I-frame to corrupt");
    let report = arbiter.analyze(&trace, &options).expect("analysis runs");
    println!("vendor C: corrupted N(R) in an I-frame -> {}", report.verdict);
    assert_eq!(report.verdict, Verdict::Invalid);
    println!(
        "\nThe arbiter needed {} transitions to exonerate the protocol and\n\
         convict the implementation.",
        report.stats.transitions_executed
    );
}
