//! TP0 conformance checking (§4.2 of the paper).
//!
//! Generates valid traces of the Class 0 Transport Protocol, analyzes
//! them under all four relative-order-checking presets, then mutates the
//! last data interaction — the paper's invalid-trace construction — and
//! shows how order checking collapses the search.
//!
//! ```sh
//! cargo run --example tp0_conformance --release
//! ```

use tango::{AnalysisOptions, OrderOptions};
use tango_repro::protocols::tp0;

fn main() {
    let analyzer = tp0::analyzer();
    println!(
        "TP0: {} transition declarations (paper's spec had 19)",
        analyzer.module().declared_transition_count()
    );

    let trace = tp0::complete_valid_trace(4, 4, 42);
    println!("\nvalid trace with 4+4 data interactions, {} events:", trace.len());
    for (order, label) in [
        (OrderOptions::none(), "NR  "),
        (OrderOptions::io(), "IO  "),
        (OrderOptions::ip(), "IP  "),
        (OrderOptions::full(), "FULL"),
    ] {
        let r = analyzer
            .analyze(&trace, &AnalysisOptions::with_order(order))
            .expect("analysis runs");
        println!("  {}  {}", label, r);
    }

    let bad = tp0::invalidate_last_data(&trace).expect("trace has data");
    println!("\nsame trace with the last data parameter mutated:");
    for (order, label) in [
        (OrderOptions::none(), "NR  "),
        (OrderOptions::io(), "IO  "),
        (OrderOptions::ip(), "IP  "),
        (OrderOptions::full(), "FULL"),
    ] {
        let mut options = AnalysisOptions::with_order(order);
        options.limits.max_transitions = 5_000_000;
        let r = analyzer.analyze(&bad, &options).expect("analysis runs");
        println!("  {}  {}", label, r);
    }

    println!(
        "\nNote the TE gap between NR and FULL on the invalid trace: that is\n\
         the paper's Figure 4 — order checking removes the permutations of\n\
         t13..t16 interleavings the search would otherwise have to refute."
    );
}
