//! Umbrella crate for the Tango reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs.

pub use estelle_ast as ast;
pub use estelle_frontend as frontend;
pub use estelle_runtime as runtime;
pub use protocols;
pub use tango;
