#!/bin/sh
# Repository CI: tier-1 verification plus lints. Fails on the first error.
#
#   ./ci.sh
#
# Tier-1 (the gate every change must keep green, see ROADMAP.md):
#   cargo build --release && cargo test -q
# plus the full workspace test suite and clippy with warnings denied.
set -eu
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== snapshot_bench smoke (quick mode) =="
# A/B the COW and deep-clone snapshot paths on reduced workloads; the
# binary itself asserts both modes produce identical verdicts and
# TE/GE/RE/SA counters, then overwrites BENCH_snapshots.json. Keep the
# committed full-size record; validate the quick one, then restore.
cp BENCH_snapshots.json BENCH_snapshots.json.orig
cargo run -q --release -p bench --bin snapshot_bench -- --quick
cargo run -q --release -p bench --bin snapshot_bench -- --check BENCH_snapshots.json
mv BENCH_snapshots.json.orig BENCH_snapshots.json
cargo run -q --release -p bench --bin snapshot_bench -- --check BENCH_snapshots.json

echo "CI OK"
