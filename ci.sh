#!/bin/sh
# Repository CI: tier-1 verification plus lints. Fails on the first error.
#
#   ./ci.sh
#
# Tier-1 (the gate every change must keep green, see ROADMAP.md):
#   cargo build --release && cargo test -q
# plus the full workspace test suite and clippy with warnings denied.
set -eu
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== crash recovery (SIGKILL + resume) =="
# Kill -9 the CLI mid-analysis, resume from the atomic autosave, and
# require the exact verdict and TE/GE/RE/SA totals of an uninterrupted
# run; plus the library-level disk-resume and corruption-matrix suites.
cargo test -q -p tango-cli --test crash_recovery
cargo test -q --test crash_recovery --test checkpoint_codec

echo "== checkpoint-info round-trip smoke =="
# Stop a real analysis on a transition limit, autosave the checkpoint,
# verify the file with checkpoint-info, and resume it to the same verdict
# an unlimited run produces.
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
printf 'in U.tconreq\nin L.cc_ind\nin U.tdatreq(0)\nin U.tdatreq(1)\nin U.tdatreq(2)\nin U.tdisreq\n' \
    > "$CKPT_DIR/script.txt"
cargo run -q --release -p tango-cli -- generate specs/tp0.est "$CKPT_DIR/script.txt" \
    > "$CKPT_DIR/trace.txt"
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --max-transitions 5 --checkpoint-file "$CKPT_DIR/run.ckpt" \
    && { echo "expected an inconclusive (exit 2) stop"; exit 1; } || [ "$?" -eq 2 ]
cargo run -q --release -p tango-cli -- checkpoint-info "$CKPT_DIR/run.ckpt"
cargo run -q --release -p tango-cli -- analyze specs/tp0.est --resume "$CKPT_DIR/run.ckpt"

echo "== telemetry smoke (trace/metrics/progress) =="
# Run a short analysis with the full telemetry surface on: the JSONL
# event stream and the metrics document must both validate with the
# dependency-free checker, and the live reporter must print at least the
# forced final heartbeat on stderr.
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --trace-out "$CKPT_DIR/events.jsonl" --metrics-out "$CKPT_DIR/metrics.json" \
    --progress 1 2> "$CKPT_DIR/progress.txt"
cargo run -q --release -p bench --bin json_check -- --jsonl "$CKPT_DIR/events.jsonl"
cargo run -q --release -p bench --bin json_check -- "$CKPT_DIR/metrics.json"
grep -q "progress: TE=" "$CKPT_DIR/progress.txt"
grep -q '"ev":"verdict"' "$CKPT_DIR/events.jsonl"
grep -q '"schema": "tango-metrics"' "$CKPT_DIR/metrics.json"

echo "== spill tiering smoke =="
# All-RAM vs spilled-to-disk run of the same analysis: the tier changes
# where bytes live, never what the search decides, so the verdict and
# the TE/GE/RE/SA counters must come out identical. The library-level
# equivalence and segment corruption-matrix suites run first.
cargo test -q --test spill_equivalence --test spill_codec
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    > "$CKPT_DIR/all-ram.txt"
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --max-mem 256 --spill on --spill-dir "$CKPT_DIR/spill" > "$CKPT_DIR/spilled.txt"
verdict_and_counters() {
    sed -n 's/.*verdict: \([a-z]*\).*\(TE=[0-9]* GE=[0-9]* RE=[0-9]* SA=[0-9]*\).*/\1 \2/p' "$1"
}
[ -n "$(verdict_and_counters "$CKPT_DIR/all-ram.txt")" ]
[ "$(verdict_and_counters "$CKPT_DIR/all-ram.txt")" = "$(verdict_and_counters "$CKPT_DIR/spilled.txt")" ]
ls "$CKPT_DIR/spill"/spill-*.seg > /dev/null
# An unusable spill directory (here: a regular file) must degrade to a
# typed inconclusive with the fault on stderr — exit 2, never a panic.
: > "$CKPT_DIR/not-a-dir"
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --max-mem 256 --spill on --spill-dir "$CKPT_DIR/not-a-dir" \
    > "$CKPT_DIR/degraded.txt" 2> "$CKPT_DIR/degraded.err" \
    && { echo "expected a SpillFailure (exit 2) stop"; exit 1; } || [ "$?" -eq 2 ]
grep -q "SpillFailure" "$CKPT_DIR/degraded.txt"
grep -q "spill fault:" "$CKPT_DIR/degraded.err"

echo "== chaos smoke (seeded fault plans) =="
# The seeded chaos matrix (108 composed plans over 12 random specs, all
# three fault sites) and the combined-sites pin run with the workspace
# suite above; here the CLI surface gets its fixed-seed reproduction
# check: the same --chaos-seed replays the identical verdict and
# TE/GE/RE/SA, and the run echoes its full plan for log-line replay.
chaos_run() {
    cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
        --chaos-seed 5 > "$1" 2> "$2" || [ "$?" -le 2 ]
}
chaos_run "$CKPT_DIR/chaos-a.txt" "$CKPT_DIR/chaos-a.err"
chaos_run "$CKPT_DIR/chaos-b.txt" "$CKPT_DIR/chaos-b.err"
grep -q "chaos: plan=" "$CKPT_DIR/chaos-a.err"
[ -n "$(verdict_and_counters "$CKPT_DIR/chaos-a.txt")" ]
[ "$(verdict_and_counters "$CKPT_DIR/chaos-a.txt")" = "$(verdict_and_counters "$CKPT_DIR/chaos-b.txt")" ]

echo "== zero-cost-when-off gate =="
# Unarmed fault hooks must be invisible: an explicitly empty
# --fault-plan takes the exact same code path as a plain run and must
# produce the identical verdict and counters, and export no fault.*
# metrics series (clean runs keep their byte-identical telemetry
# shape). The throughput half of the gate is the tps_by_spec_size
# section below: the quick bench re-measures the hot path with the
# unarmed hooks compiled in, and --check fails if the auto column ever
# drops below the tree walker — within-noise against BENCH_tps.json.
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --fault-plan "" --metrics-out "$CKPT_DIR/unarmed-metrics.json" > "$CKPT_DIR/unarmed.txt" \
    2> "$CKPT_DIR/unarmed.err"
[ "$(verdict_and_counters "$CKPT_DIR/all-ram.txt")" = "$(verdict_and_counters "$CKPT_DIR/unarmed.txt")" ]
if grep -q '"fault\.' "$CKPT_DIR/unarmed-metrics.json"; then
    echo "unarmed run exported fault.* metrics"; exit 1
fi
grep -q "chaos: plan=unarmed" "$CKPT_DIR/unarmed.err"

echo "== black box smoke (flight recorder / dump / dump-info) =="
# Any non-completed outcome writes a versioned post-mortem dump. The
# dump must verify and render both ways, with the JSONL form validating
# under the dependency-free checker; the library/CLI suites run first.
cargo test -q -p tango --test flight_recorder
cargo test -q -p tango-cli --test black_box
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --max-transitions 5 --dump-file "$CKPT_DIR/pm.tangodump" 2> "$CKPT_DIR/dump.err" \
    && { echo "expected an inconclusive (exit 2) stop"; exit 1; } || [ "$?" -eq 2 ]
grep -q "post-mortem dump written" "$CKPT_DIR/dump.err"
cargo run -q --release -p tango-cli -- dump-info "$CKPT_DIR/pm.tangodump" \
    > "$CKPT_DIR/dump.txt"
grep -q "flight recorder:" "$CKPT_DIR/dump.txt"
cargo run -q --release -p tango-cli -- dump-info --jsonl "$CKPT_DIR/pm.tangodump" \
    > "$CKPT_DIR/dump.jsonl"
cargo run -q --release -p bench --bin json_check -- --jsonl "$CKPT_DIR/dump.jsonl"
grep -q '"schema":"tango-dump"' "$CKPT_DIR/dump.jsonl"

echo "== black box zero-cost gate (--flight-recorder off) =="
# Turning the recorder off must change nothing but the dump: identical
# verdict and TE/GE/RE/SA to the plain all-RAM run, and no dump file
# ever appears.
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --flight-recorder=off --dump-file "$CKPT_DIR/off.tangodump" > "$CKPT_DIR/rec-off.txt"
[ "$(verdict_and_counters "$CKPT_DIR/all-ram.txt")" = "$(verdict_and_counters "$CKPT_DIR/rec-off.txt")" ]
[ ! -f "$CKPT_DIR/off.tangodump" ]

echo "== live introspection smoke (--listen + http-get) =="
# Follow a trace that never reaches its eof marker with a wall-clock
# limit and a live endpoint: fetch /status and /metrics mid-run with the
# shipped curl substitute and validate both documents; the TimeLimit
# stop must leave a verifiable post-mortem dump behind.
head -n 3 "$CKPT_DIR/trace.txt" > "$CKPT_DIR/partial.txt"
cargo run -q --release -p tango-cli -- online specs/tp0.est "$CKPT_DIR/partial.txt" \
    --max-seconds 10 --listen 127.0.0.1:0 --dump-file "$CKPT_DIR/online.tangodump" \
    > "$CKPT_DIR/online.txt" 2> "$CKPT_DIR/online.err" &
LISTEN_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's#^introspect: listening on http://\(.*\)/$#\1#p' "$CKPT_DIR/online.err")
    if [ -n "$ADDR" ]; then break; fi
    sleep 0.2
done
[ -n "$ADDR" ]
cargo run -q --release -p tango-cli -- http-get "$ADDR/status" > "$CKPT_DIR/status.json"
cargo run -q --release -p bench --bin json_check -- "$CKPT_DIR/status.json"
grep -q '"schema":"tango-status"' "$CKPT_DIR/status.json"
cargo run -q --release -p tango-cli -- http-get "$ADDR/metrics" > "$CKPT_DIR/live-metrics.json"
cargo run -q --release -p bench --bin json_check -- "$CKPT_DIR/live-metrics.json"
grep -q '"schema":"tango-metrics"' "$CKPT_DIR/live-metrics.json"
wait "$LISTEN_PID" && { echo "expected a TimeLimit (exit 2) stop"; exit 1; } || [ "$?" -eq 2 ]
grep -q "post-mortem dump written" "$CKPT_DIR/online.err"
cargo run -q --release -p tango-cli -- dump-info "$CKPT_DIR/online.tangodump" > /dev/null

echo "== multi-core MDFS smoke (work-stealing online search) =="
# The same on-line analysis at 1 and 4 workers must print the identical
# verdict/counter line on the heavyweight LAPD spec — the work-stealing
# schedule may never leak into the verdict or TE/GE/RE/SA. Then a
# 4-worker run stopped on a transition limit after eof must checkpoint a
# worker-split front that checkpoint-info can describe and that resumes
# at a different worker count to the uninterrupted totals; the library
# suite runs the full worker matrix first.
cargo test -q --test mdfs_parallel
printf 'in U.dl_est_req\nin L.ua\nin U.dl_data_req(0)\nin U.dl_data_req(1)\nin U.dl_data_req(2)\n' \
    > "$CKPT_DIR/lapd-script.txt"
cargo run -q --release -p tango-cli -- generate specs/lapd.est "$CKPT_DIR/lapd-script.txt" \
    > "$CKPT_DIR/lapd-trace.txt"
cargo run -q --release -p tango-cli -- online specs/lapd.est "$CKPT_DIR/lapd-trace.txt" \
    --workers 1 > "$CKPT_DIR/online-w1.txt"
cargo run -q --release -p tango-cli -- online specs/lapd.est "$CKPT_DIR/lapd-trace.txt" \
    --workers 4 > "$CKPT_DIR/online-w4.txt"
[ -n "$(verdict_and_counters "$CKPT_DIR/online-w1.txt")" ]
[ "$(verdict_and_counters "$CKPT_DIR/online-w1.txt")" = "$(verdict_and_counters "$CKPT_DIR/online-w4.txt")" ]
cargo run -q --release -p tango-cli -- online specs/lapd.est "$CKPT_DIR/lapd-trace.txt" \
    --workers 4 --max-transitions 5 --checkpoint-file "$CKPT_DIR/online.ckpt" \
    && { echo "expected an inconclusive (exit 2) stop"; exit 1; } || [ "$?" -eq 2 ]
cargo run -q --release -p tango-cli -- checkpoint-info "$CKPT_DIR/online.ckpt" \
    > "$CKPT_DIR/online-info.txt"
grep -q "mode: mdfs" "$CKPT_DIR/online-info.txt"
grep -q "workers at save: 4" "$CKPT_DIR/online-info.txt"
grep -q "worker 0: deque=" "$CKPT_DIR/online-info.txt"
cargo run -q --release -p tango-cli -- online specs/lapd.est --resume "$CKPT_DIR/online.ckpt" \
    --workers 2 > "$CKPT_DIR/online-resumed.txt"
[ "$(verdict_and_counters "$CKPT_DIR/online-w1.txt")" = "$(verdict_and_counters "$CKPT_DIR/online-resumed.txt")" ]

echo "== exec A/B differential smoke =="
# Compiled VM vs. tree-walking interpreter must agree everywhere; the
# dedicated suite checks fireable sets, verdicts, counters, telemetry
# streams and profiler attribution across both executors, and the CLI
# must accept the flag end to end.
cargo test -q --test compiled_exec
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" --exec=interp
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" --exec=compiled
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" --exec=auto

echo "== random-spec differential suite =="
# Seeded random specifications: interp vs compiled vs auto vs
# profile-guided programs must agree on fireable sets, verdicts and
# counters for every seed (ROADMAP item 4c seed).
cargo test -q --test differential_exec

echo "== PGO round-trip smoke =="
# Profile a run with --pgo-out, feed the file back with --pgo-in: the
# reordered program must reach the identical verdict line, and a profile
# from a different spec must be refused with a typed error.
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --exec=compiled --pgo-out "$CKPT_DIR/tp0.pgo" > "$CKPT_DIR/pgo-first.txt"
grep -q "^tangopgo 1$" "$CKPT_DIR/tp0.pgo"
cargo run -q --release -p tango-cli -- analyze specs/tp0.est "$CKPT_DIR/trace.txt" \
    --exec=compiled --pgo-in "$CKPT_DIR/tp0.pgo" > "$CKPT_DIR/pgo-second.txt"
verdict_line() { grep "verdict:" "$1"; }
[ -n "$(verdict_line "$CKPT_DIR/pgo-first.txt")" ]
[ "$(verdict_line "$CKPT_DIR/pgo-first.txt")" = "$(verdict_line "$CKPT_DIR/pgo-second.txt")" ]
cargo run -q --release -p tango-cli -- analyze specs/lapd.est "$CKPT_DIR/trace.txt" \
    --pgo-in "$CKPT_DIR/tp0.pgo" 2> "$CKPT_DIR/pgo-refused.err" \
    && { echo "expected a spec-mismatch refusal"; exit 1; } || true
grep -q "recorded for spec" "$CKPT_DIR/pgo-refused.err"

echo "== generate_exec smoke (quick mode) =="
# A/B the bytecode VM against the reference interpreter on reduced
# workloads; the binary asserts identical verdicts and TE/GE/RE/SA per
# row, then overwrites BENCH_generate.json. Keep the committed
# full-size record; validate the quick one, then restore.
cp BENCH_generate.json BENCH_generate.json.orig
cargo run -q --release -p bench --bin generate_exec -- --quick
cargo run -q --release -p bench --bin generate_exec -- --check BENCH_generate.json
mv BENCH_generate.json.orig BENCH_generate.json
cargo run -q --release -p bench --bin generate_exec -- --check BENCH_generate.json

echo "== tps_by_spec_size smoke (quick mode) =="
# --check also gates auto selection: no recorded row may have
# speedup_auto_trans_per_sec < 1.0 — the default exec mode must never be
# slower than the tree walker.
cp BENCH_tps.json BENCH_tps.json.orig
cargo run -q --release -p bench --bin tps_by_spec_size -- --quick
cargo run -q --release -p bench --bin tps_by_spec_size -- --check BENCH_tps.json
mv BENCH_tps.json.orig BENCH_tps.json
cargo run -q --release -p bench --bin tps_by_spec_size -- --check BENCH_tps.json

echo "== snapshot_bench smoke (quick mode) =="
# A/B the COW and deep-clone snapshot paths on reduced workloads; the
# binary itself asserts both modes produce identical verdicts and
# TE/GE/RE/SA counters, then overwrites BENCH_snapshots.json. Keep the
# committed full-size record; validate the quick one, then restore.
cp BENCH_snapshots.json BENCH_snapshots.json.orig
cargo run -q --release -p bench --bin snapshot_bench -- --quick
cargo run -q --release -p bench --bin snapshot_bench -- --check BENCH_snapshots.json
mv BENCH_snapshots.json.orig BENCH_snapshots.json
cargo run -q --release -p bench --bin snapshot_bench -- --check BENCH_snapshots.json

echo "== spill bench smoke (quick mode) =="
# Run the memory-tiering ladder on a reduced workload; the binary itself
# asserts every spilled row reproduces the all-RAM verdict and
# TE/GE/RE/SA and that the tightest budget without the tier still dies
# Inconclusive(MemoryLimit). Keep the committed full-size record;
# validate the quick one, then restore.
cp BENCH_spill.json BENCH_spill.json.orig
cargo run -q --release -p bench --bin spill -- --quick
cargo run -q --release -p bench --bin spill -- --check BENCH_spill.json
mv BENCH_spill.json.orig BENCH_spill.json
cargo run -q --release -p bench --bin spill -- --check BENCH_spill.json

echo "CI OK"
