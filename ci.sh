#!/bin/sh
# Repository CI: tier-1 verification plus lints. Fails on the first error.
#
#   ./ci.sh
#
# Tier-1 (the gate every change must keep green, see ROADMAP.md):
#   cargo build --release && cargo test -q
# plus the full workspace test suite and clippy with warnings denied.
set -eu
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
